//! [`lsa_engine::TxnEngine`] implementations for the baseline engines.
//!
//! With these impls, TL2 and the validation STM plug into every
//! engine-generic workload and experiment exactly like LSA-RT — the
//! cross-engine matrix the paper's §1.2 survey motivates. The impls are thin
//! delegations to the engines' native APIs.

use crate::norec::{NorecAbort, NorecStm, NorecThread, NorecTxn, NorecVar};
use crate::stats::BaselineStats;
use crate::tl2::{Tl2Abort, Tl2Result, Tl2Stm, Tl2Thread, Tl2Txn, Tl2Var};
use crate::validation::{ValAbort, ValThread, ValTxn, ValVar, ValidationMode, ValidationStm};
use lsa_engine::{EngineHandle, EngineResult, EngineStats, TxnEngine, TxnOps};
use lsa_time::TimeBase;
use std::sync::Arc;

fn to_engine_stats(s: &BaselineStats) -> EngineStats {
    EngineStats {
        commits: s.commits,
        ro_commits: s.ro_commits,
        aborts: s.aborts,
        // The engines record every abort with its taxonomy class at the
        // abort site, so the breakdown passes through unchanged.
        abort_reasons: s.reasons,
        retries: s.retries,
        reads: s.reads,
        writes: s.writes,
        validations: s.validations,
        revalidation_failures: s.revalidation_failures,
        validated_entries: s.validated_entries,
        shared_commit_ts: s.shared_cts,
        // The baseline engines keep one global object table: no sharding.
        cross_shard_commits: 0,
        // Single-version engines: no managed version store to report on.
        memory: Default::default(),
    }
}

// --- TL2 ---

impl<B: TimeBase<Ts = u64>> TxnEngine for Tl2Stm<B> {
    type Abort = Tl2Abort;
    type Var<T: Send + Sync + 'static> = Tl2Var<T>;
    type Handle = Tl2Thread<B>;

    fn new_var<T: Send + Sync + 'static>(&self, value: T) -> Tl2Var<T> {
        Tl2Stm::new_var(self, value)
    }

    fn register(&self) -> Tl2Thread<B> {
        Tl2Stm::register(self)
    }

    fn engine_name(&self) -> String {
        format!("tl2({})", self.time_base().name())
    }

    fn peek<T: Send + Sync + 'static>(var: &Tl2Var<T>) -> Arc<T> {
        var.snapshot_latest()
    }
}

impl<B: TimeBase<Ts = u64>> EngineHandle for Tl2Thread<B> {
    type Engine = Tl2Stm<B>;
    type Txn<'t>
        = Tl2Txn<'t, B>
    where
        Self: 't;

    fn atomically<R, F>(&mut self, body: F) -> R
    where
        F: for<'t> FnMut(&mut Tl2Txn<'t, B>) -> EngineResult<R, Tl2Stm<B>>,
    {
        Tl2Thread::atomically(self, body)
    }

    fn engine_stats(&self) -> EngineStats {
        to_engine_stats(self.stats())
    }

    fn take_engine_stats(&mut self) -> EngineStats {
        to_engine_stats(&self.take_stats())
    }
}

impl<B: TimeBase<Ts = u64>> TxnOps for Tl2Txn<'_, B> {
    type Engine = Tl2Stm<B>;

    fn read<T: Send + Sync + 'static>(&mut self, var: &Tl2Var<T>) -> Tl2Result<Arc<T>> {
        Tl2Txn::read(self, var)
    }

    fn write<T: Send + Sync + 'static>(&mut self, var: &Tl2Var<T>, value: T) -> Tl2Result<()> {
        Tl2Txn::write(self, var, value)
    }

    fn modify<T: Send + Sync + 'static>(
        &mut self,
        var: &Tl2Var<T>,
        f: impl FnOnce(&T) -> T,
    ) -> Tl2Result<()> {
        Tl2Txn::modify(self, var, f)
    }
}

// --- Validation STM ---

impl TxnEngine for ValidationStm {
    type Abort = ValAbort;
    type Var<T: Send + Sync + 'static> = ValVar<T>;
    type Handle = ValThread;

    fn new_var<T: Send + Sync + 'static>(&self, value: T) -> ValVar<T> {
        ValidationStm::new_var(self, value)
    }

    fn register(&self) -> ValThread {
        ValidationStm::register(self)
    }

    fn engine_name(&self) -> String {
        match self.mode() {
            ValidationMode::Always => "validation(always)".into(),
            ValidationMode::CommitCounter => "validation(commit-counter)".into(),
        }
    }

    fn peek<T: Send + Sync + 'static>(var: &ValVar<T>) -> Arc<T> {
        var.snapshot_latest()
    }
}

impl EngineHandle for ValThread {
    type Engine = ValidationStm;
    type Txn<'t>
        = ValTxn<'t>
    where
        Self: 't;

    fn atomically<R, F>(&mut self, body: F) -> R
    where
        F: for<'t> FnMut(&mut ValTxn<'t>) -> EngineResult<R, ValidationStm>,
    {
        ValThread::atomically(self, body)
    }

    fn engine_stats(&self) -> EngineStats {
        to_engine_stats(self.stats())
    }

    fn take_engine_stats(&mut self) -> EngineStats {
        to_engine_stats(&self.take_stats())
    }
}

impl TxnOps for ValTxn<'_> {
    type Engine = ValidationStm;

    fn read<T: Send + Sync + 'static>(&mut self, var: &ValVar<T>) -> Result<Arc<T>, ValAbort> {
        ValTxn::read(self, var)
    }

    fn write<T: Send + Sync + 'static>(
        &mut self,
        var: &ValVar<T>,
        value: T,
    ) -> Result<(), ValAbort> {
        ValTxn::write(self, var, value)
    }

    fn modify<T: Send + Sync + 'static>(
        &mut self,
        var: &ValVar<T>,
        f: impl FnOnce(&T) -> T,
    ) -> Result<(), ValAbort> {
        ValTxn::modify(self, var, f)
    }
}

// --- NOrec ---

impl TxnEngine for NorecStm {
    type Abort = NorecAbort;
    type Var<T: Send + Sync + 'static> = NorecVar<T>;
    type Handle = NorecThread;

    fn new_var<T: Send + Sync + 'static>(&self, value: T) -> NorecVar<T> {
        NorecStm::new_var(self, value)
    }

    fn register(&self) -> NorecThread {
        NorecStm::register(self)
    }

    fn engine_name(&self) -> String {
        "norec(seqlock)".into()
    }

    fn peek<T: Send + Sync + 'static>(var: &NorecVar<T>) -> Arc<T> {
        var.snapshot_latest()
    }
}

impl EngineHandle for NorecThread {
    type Engine = NorecStm;
    type Txn<'t>
        = NorecTxn<'t>
    where
        Self: 't;

    fn atomically<R, F>(&mut self, body: F) -> R
    where
        F: for<'t> FnMut(&mut NorecTxn<'t>) -> EngineResult<R, NorecStm>,
    {
        NorecThread::atomically(self, body)
    }

    fn engine_stats(&self) -> EngineStats {
        to_engine_stats(self.stats())
    }

    fn take_engine_stats(&mut self) -> EngineStats {
        to_engine_stats(&self.take_stats())
    }
}

impl TxnOps for NorecTxn<'_> {
    type Engine = NorecStm;

    fn read<T: Send + Sync + 'static>(&mut self, var: &NorecVar<T>) -> Result<Arc<T>, NorecAbort> {
        NorecTxn::read(self, var)
    }

    fn write<T: Send + Sync + 'static>(
        &mut self,
        var: &NorecVar<T>,
        value: T,
    ) -> Result<(), NorecAbort> {
        NorecTxn::write(self, var, value)
    }

    fn modify<T: Send + Sync + 'static>(
        &mut self,
        var: &NorecVar<T>,
        f: impl FnOnce(&T) -> T,
    ) -> Result<(), NorecAbort> {
        NorecTxn::modify(self, var, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One generic body exercised through the trait surface only.
    fn generic_transfer<E: TxnEngine>(engine: &E) -> (i64, i64) {
        let a = engine.new_var(100i64);
        let b = engine.new_var(0i64);
        let mut h = engine.register();
        h.atomically(|tx| {
            let va = *tx.read(&a)?;
            tx.write(&a, va - 30)?;
            tx.modify(&b, |x| x + 30)?;
            Ok(())
        });
        (*E::peek(&a), *E::peek(&b))
    }

    #[test]
    fn tl2_is_a_txn_engine() {
        use lsa_time::counter::SharedCounter;
        use lsa_time::hardware::HardwareClock;
        let stm = Tl2Stm::new(SharedCounter::new());
        assert_eq!(generic_transfer(&stm), (70, 30));
        assert_eq!(stm.engine_name(), "tl2(shared-counter)");
        let stm = Tl2Stm::new(HardwareClock::mmtimer_free());
        assert_eq!(generic_transfer(&stm), (70, 30));
    }

    #[test]
    fn norec_is_a_txn_engine() {
        let stm = NorecStm::new();
        assert_eq!(generic_transfer(&stm), (70, 30));
        assert_eq!(stm.engine_name(), "norec(seqlock)");
        // Value-validation cost is visible on the shared stats surface: a
        // fresh read after the writer's commit revalidates `v` and fails.
        let v = stm.new_var(0u64);
        let v2 = stm.new_var(0u64);
        let mut h = TxnEngine::register(&stm);
        let mut w = TxnEngine::register(&stm);
        let mut first = true;
        h.atomically(|tx| {
            tx.read(&v)?;
            if first {
                first = false;
                w.atomically(|tx2| tx2.modify(&v, |x| x + 1));
            }
            tx.read(&v2)
        });
        let s = h.engine_stats();
        assert!(s.validations >= 1, "clock movement must trigger validation");
        assert!(
            s.revalidation_failures >= 1,
            "overwritten read must fail it"
        );
    }

    #[test]
    fn validation_is_a_txn_engine() {
        for mode in [ValidationMode::Always, ValidationMode::CommitCounter] {
            let stm = ValidationStm::new(mode);
            assert_eq!(generic_transfer(&stm), (70, 30));
        }
        assert_eq!(
            ValidationStm::new(ValidationMode::Always).engine_name(),
            "validation(always)"
        );
    }

    #[test]
    fn cloned_runtimes_share_the_var_id_sequence() {
        let a = Tl2Stm::new(lsa_time::counter::SharedCounter::new());
        let b = a.clone();
        let v1 = a.new_var(0u8);
        let v2 = b.new_var(0u8);
        assert_ne!(v1.id(), v2.id(), "clones must not hand out colliding ids");

        let a = ValidationStm::new(ValidationMode::Always);
        let b = a.clone();
        assert_ne!(a.new_var(0u8).id(), b.new_var(0u8).id());
    }

    #[test]
    fn baseline_engine_stats_surface() {
        let stm = Tl2Stm::new(lsa_time::counter::SharedCounter::new());
        let v = stm.new_var(0u64);
        let mut h = TxnEngine::register(&stm);
        for _ in 0..3 {
            h.atomically(|tx| tx.modify(&v, |x| x + 1));
        }
        let s = h.engine_stats();
        assert_eq!(s.commits, 3);
        assert_eq!(s.aborts, 0);
        assert_eq!(h.take_engine_stats(), s);
        assert_eq!(h.engine_stats(), EngineStats::default());
    }
}
