//! # lsa-baseline — comparator STMs from the paper's related work (§1.2)
//!
//! Three from-scratch baseline engines used by the evaluation harness:
//!
//! * [`tl2`] — a TL2-style single-version word/object STM with versioned
//!   write-locks and a global version clock. Generic over the time base, so
//!   the benchmarks can run *TL2-on-counter* against *TL2-on-MMTimer* (the
//!   TL2 paper itself suggested hardware clocks as a counter replacement).
//! * [`validation`] — an RSTM-style invisible-read STM that guarantees
//!   consistency by (re)validating the read set, either on every access
//!   (`O(n)` per access — the costly baseline the paper's introduction
//!   motivates against) or gated by a global commit-counter heuristic.
//! * [`norec`] — a NOrec-style STM: one global sequence lock, a redo log,
//!   and full **value-based** revalidation of the read set whenever the
//!   clock moves — no per-object metadata at all.
//!
//! Together with `lsa-stm` these engines span the design space the paper
//! surveys: validation-based (per-object versions or values) vs time-based,
//! single- vs multi-version, counter vs real-time clock.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod engine;
pub mod norec;
pub mod stats;
pub mod tl2;
pub mod validation;

pub use norec::{NorecStm, NorecThread, NorecTxn, NorecVar};
pub use stats::BaselineStats;
pub use tl2::{Tl2Stm, Tl2Thread, Tl2Txn, Tl2Var};
pub use validation::{ValThread, ValTxn, ValVar, ValidationMode, ValidationStm};
