//! A NOrec-style STM (Dalessandro, Spear, Scott — PPoPP'10): the
//! value-validation point of the paper's §1.2 design space.
//!
//! Where LSA-RT and TL2 derive consistency from *timestamps* (per-object
//! version metadata ordered by a time base) and the RSTM-style engine from
//! *per-object versions*, NOrec keeps **no per-location metadata at all**.
//! Its entire shared state is one global sequence lock:
//!
//! * **begin**: wait until the sequence lock is even and take it as the
//!   snapshot.
//! * **read**: read the location; if the global clock moved since the
//!   snapshot, revalidate the whole read set *by value* and adopt the new
//!   clock — so every read returns a value consistent with all earlier ones.
//! * **write**: append to a redo log (buffered, invisible to others).
//! * **commit** (writers): acquire the sequence lock with
//!   `CAS(snapshot, snapshot + 1)`, revalidating (and re-snapshotting) on
//!   every failure; write back the redo log; release with `snapshot + 2`.
//!   Read-only transactions commit without touching shared state.
//!
//! The trade-off this engine adds to the matrix: zero per-object metadata
//! and invisible reads, bought with a global commit serialization point and
//! `O(read set)` revalidation whenever *any* writer commits — exactly the
//! validation cost the paper's time-based engines avoid, now measurable via
//! [`EngineStats::validations`](lsa_engine::EngineStats) in the harness.
//!
//! Values are compared by `Arc` identity: every committed write installs a
//! fresh `Arc`, so pointer equality means "this location still holds the
//! snapshot I read". This is NOrec's value comparison in an object-granular
//! STM — conservative only in that a bytewise-equal re-allocation would
//! abort where byte comparison would not (a benign extra abort, never an
//! unsound commit).

use crate::stats::BaselineStats;
use crossbeam_utils::CachePadded;
use lsa_engine::AbortClass;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Abort error of the NOrec engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NorecAbort {
    /// Value-based revalidation observed a concurrently overwritten read.
    Invalidated,
}

/// Result alias for NOrec operations.
pub type NorecResult<T> = Result<T, NorecAbort>;

/// A transactional variable of the NOrec engine: payload only, **no**
/// per-object version or lock metadata — the defining property of NOrec.
struct VarInner<T> {
    data: RwLock<Arc<T>>,
}

/// A NOrec transactional variable.
pub struct NorecVar<T> {
    id: u64,
    inner: Arc<VarInner<T>>,
}

impl<T> Clone for NorecVar<T> {
    fn clone(&self) -> Self {
        NorecVar {
            id: self.id,
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send + Sync + 'static> NorecVar<T> {
    /// Latest committed value (non-transactional; seeding/audits).
    pub fn snapshot_latest(&self) -> Arc<T> {
        Arc::clone(&self.inner.data.read())
    }

    /// Stable id of this variable.
    pub fn id(&self) -> u64 {
        self.id
    }
}

struct NorecInner {
    /// The single global sequence lock: even = quiescent, odd = a committer
    /// is writing back. Deliberately the ONLY shared metadata word.
    seqlock: CachePadded<AtomicU64>,
    /// Shared id source so runtime clones never hand out colliding var ids.
    next_var: AtomicU64,
}

/// The NOrec runtime. Cheap to clone; clones share the sequence lock and the
/// variable-id sequence.
#[derive(Clone)]
pub struct NorecStm {
    inner: Arc<NorecInner>,
}

impl Default for NorecStm {
    fn default() -> Self {
        Self::new()
    }
}

impl NorecStm {
    /// Create a runtime.
    pub fn new() -> Self {
        NorecStm {
            inner: Arc::new(NorecInner {
                seqlock: CachePadded::new(AtomicU64::new(0)),
                next_var: AtomicU64::new(1),
            }),
        }
    }

    /// Current value of the global sequence lock (tests/experiments).
    pub fn sequence(&self) -> u64 {
        self.inner.seqlock.load(Ordering::Acquire)
    }

    /// Create a transactional variable.
    pub fn new_var<T: Send + Sync + 'static>(&self, value: T) -> NorecVar<T> {
        NorecVar {
            id: self.inner.next_var.fetch_add(1, Ordering::Relaxed),
            inner: Arc::new(VarInner {
                data: RwLock::new(Arc::new(value)),
            }),
        }
    }

    /// Register the calling thread.
    pub fn register(&self) -> NorecThread {
        NorecThread {
            inner: Arc::clone(&self.inner),
            stats: BaselineStats::default(),
        }
    }
}

/// Type-erased read-set entry: re-reads the location and compares it against
/// the value observed at read time (NOrec's value-based validation).
trait ReadCheck: Send {
    fn still_same(&self) -> bool;
}

struct TypedCheck<T> {
    inner: Arc<VarInner<T>>,
    seen: Arc<T>,
}

impl<T: Send + Sync + 'static> ReadCheck for TypedCheck<T> {
    fn still_same(&self) -> bool {
        Arc::ptr_eq(&self.inner.data.read(), &self.seen)
    }
}

/// Type-erased redo-log entry.
trait RedoEntry: Send {
    fn write_back(&self);
}

struct TypedRedo<T> {
    inner: Arc<VarInner<T>>,
    pending: Arc<T>,
}

impl<T: Send + Sync + 'static> RedoEntry for TypedRedo<T> {
    fn write_back(&self) {
        *self.inner.data.write() = Arc::clone(&self.pending);
    }
}

/// An executing NOrec transaction.
pub struct NorecTxn<'h> {
    seqlock: &'h CachePadded<AtomicU64>,
    stats: &'h mut BaselineStats,
    /// Even sequence-lock value this transaction is currently consistent
    /// with.
    snapshot: u64,
    reads: Vec<Box<dyn ReadCheck>>,
    redo: Vec<Box<dyn RedoEntry>>,
    write_ids: HashMap<u64, usize>,
    read_cache: HashMap<u64, Arc<dyn std::any::Any + Send + Sync>>,
}

/// Spin until the sequence lock is even (no write-back in progress) and
/// return its value.
fn wait_even(seqlock: &AtomicU64) -> u64 {
    let mut spins = 0u32;
    loop {
        let t = seqlock.load(Ordering::Acquire);
        if t & 1 == 0 {
            return t;
        }
        spins += 1;
        if spins > 64 {
            std::thread::yield_now();
            spins = 0;
        } else {
            std::hint::spin_loop();
        }
    }
}

impl NorecTxn<'_> {
    /// The sequence-lock value this transaction is consistent with.
    pub fn snapshot(&self) -> u64 {
        self.snapshot
    }

    /// NOrec's `Validate()`: wait for a quiescent clock, compare every read
    /// against current memory by value, and return the (even) clock value
    /// the read set is now known consistent with.
    fn validate(&mut self) -> NorecResult<u64> {
        loop {
            let t = wait_even(self.seqlock);
            self.stats.validations += 1;
            self.stats.validated_entries += self.reads.len() as u64;
            if !self.reads.iter().all(|r| r.still_same()) {
                self.stats.revalidation_failures += 1;
                return Err(NorecAbort::Invalidated);
            }
            // A committer may have slipped in mid-validation; only a stable
            // clock certifies the comparison.
            if self.seqlock.load(Ordering::Acquire) == t {
                return Ok(t);
            }
        }
    }

    /// Transactional read: value from the redo log if written, else from
    /// memory, revalidating the read set whenever the global clock moved.
    pub fn read<T: Send + Sync + 'static>(&mut self, var: &NorecVar<T>) -> NorecResult<Arc<T>> {
        self.stats.reads += 1;
        if self.write_ids.contains_key(&var.id) {
            if let Some(pending) = self.read_cache.get(&(var.id | (1 << 63))) {
                return Ok(Arc::clone(pending).downcast::<T>().expect("stable type"));
            }
            unreachable!("pending write always cached");
        }
        if let Some(cached) = self.read_cache.get(&var.id) {
            return Ok(Arc::clone(cached).downcast::<T>().expect("stable type"));
        }
        let value = loop {
            let value = Arc::clone(&var.inner.data.read());
            if self.seqlock.load(Ordering::Acquire) == self.snapshot {
                break value; // no commit since the snapshot — consistent
            }
            // The clock moved: revalidate everything read so far by value,
            // adopt the new clock, and re-read this location.
            self.snapshot = self.validate()?;
        };
        self.reads.push(Box::new(TypedCheck {
            inner: Arc::clone(&var.inner),
            seen: Arc::clone(&value),
        }));
        self.read_cache.insert(
            var.id,
            Arc::clone(&value) as Arc<dyn std::any::Any + Send + Sync>,
        );
        Ok(value)
    }

    /// Transactional buffered write (redo log).
    pub fn write<T: Send + Sync + 'static>(
        &mut self,
        var: &NorecVar<T>,
        value: T,
    ) -> NorecResult<()> {
        self.stats.writes += 1;
        let pending = Arc::new(value);
        self.read_cache.insert(
            var.id | (1 << 63),
            Arc::clone(&pending) as Arc<dyn std::any::Any + Send + Sync>,
        );
        let entry = TypedRedo {
            inner: Arc::clone(&var.inner),
            pending,
        };
        match self.write_ids.get(&var.id) {
            Some(&idx) => self.redo[idx] = Box::new(entry),
            None => {
                self.write_ids.insert(var.id, self.redo.len());
                self.redo.push(Box::new(entry));
            }
        }
        Ok(())
    }

    /// Read-modify-write convenience.
    pub fn modify<T: Send + Sync + 'static>(
        &mut self,
        var: &NorecVar<T>,
        f: impl FnOnce(&T) -> T,
    ) -> NorecResult<()> {
        let cur = self.read(var)?;
        self.write(var, f(&cur))
    }

    fn commit(mut self) -> NorecResult<()> {
        if self.redo.is_empty() {
            // Read-only: every read was validated against the snapshot at
            // read time, so the read set is a consistent snapshot already —
            // commit without touching shared state (NOrec's headline
            // read-only path).
            self.stats.ro_commits += 1;
            return Ok(());
        }
        // Acquire the global sequence lock at our snapshot. Every CAS
        // failure means some writer committed since we were last consistent:
        // revalidate by value and adopt the new clock, then try again.
        while self
            .seqlock
            .compare_exchange(
                self.snapshot,
                self.snapshot + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            match self.validate() {
                Ok(t) => self.snapshot = t,
                Err(e) => {
                    self.stats.record_abort(AbortClass::Validation);
                    return Err(e);
                }
            }
        }
        // Sequence lock held (odd): write back the redo log, then release,
        // publishing a new even clock.
        for w in &self.redo {
            w.write_back();
        }
        self.seqlock.store(self.snapshot + 2, Ordering::Release);
        self.stats.commits += 1;
        Ok(())
    }
}

/// A registered thread of the NOrec engine.
pub struct NorecThread {
    inner: Arc<NorecInner>,
    stats: BaselineStats,
}

impl NorecThread {
    /// Statistics accumulated by this thread.
    pub fn stats(&self) -> &BaselineStats {
        &self.stats
    }

    /// Take (and reset) the statistics.
    pub fn take_stats(&mut self) -> BaselineStats {
        std::mem::take(&mut self.stats)
    }

    /// Run `body` with retry-on-abort until it commits.
    pub fn atomically<R>(
        &mut self,
        mut body: impl FnMut(&mut NorecTxn<'_>) -> NorecResult<R>,
    ) -> R {
        let mut backoff = 0u32;
        loop {
            let snapshot = wait_even(&self.inner.seqlock);
            let mut txn = NorecTxn {
                seqlock: &self.inner.seqlock,
                stats: &mut self.stats,
                snapshot,
                reads: Vec::new(),
                redo: Vec::new(),
                write_ids: HashMap::new(),
                read_cache: HashMap::new(),
            };
            match body(&mut txn) {
                Ok(value) => {
                    if txn.commit().is_ok() {
                        return value;
                    }
                }
                Err(NorecAbort::Invalidated) => self.stats.record_abort(AbortClass::Validation),
            }
            self.stats.retries += 1;
            for _ in 0..(1u64 << backoff.min(10)) {
                std::hint::spin_loop();
            }
            backoff += 1;
            if backoff > 10 {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_roundtrip() {
        let stm = NorecStm::new();
        let x = stm.new_var(5i64);
        let mut h = stm.register();
        let v = h.atomically(|tx| {
            let v = *tx.read(&x)?;
            tx.write(&x, v + 1)?;
            tx.read(&x).map(|v| *v)
        });
        assert_eq!(v, 6, "read-own-write");
        assert_eq!(*x.snapshot_latest(), 6);
        assert_eq!(stm.sequence(), 2, "one writer commit bumps the clock by 2");
    }

    #[test]
    fn read_only_commits_touch_no_shared_state() {
        let stm = NorecStm::new();
        let x = stm.new_var(1u8);
        let mut h = stm.register();
        for _ in 0..10 {
            let v = h.atomically(|tx| tx.read(&x).map(|v| *v));
            assert_eq!(v, 1);
        }
        assert_eq!(h.stats().ro_commits, 10);
        assert_eq!(
            stm.sequence(),
            0,
            "read-only commits must not move the clock"
        );
    }

    #[test]
    fn doomed_reader_revalidates_and_retries() {
        let stm = NorecStm::new();
        let a = stm.new_var(0u64);
        let b = stm.new_var(0u64);
        let mut h = stm.register();
        let mut w = stm.register();
        let mut sabotaged = false;
        let (va, vb) = h.atomically(|tx| {
            let va = *tx.read(&a)?;
            if !sabotaged {
                sabotaged = true;
                // A concurrent writer updates BOTH variables: the clock
                // moves, the next read revalidates by value, sees `a`
                // overwritten, and the attempt aborts.
                w.atomically(|tx2| {
                    tx2.modify(&a, |v| v + 1)?;
                    tx2.modify(&b, |v| v + 1)
                });
            }
            let vb = *tx.read(&b)?;
            Ok((va, vb))
        });
        assert_eq!((va, vb), (1, 1), "retry observed the writer's state");
        assert!(
            h.stats().revalidation_failures >= 1,
            "value check must fire"
        );
        assert!(h.stats().retries >= 1);
    }

    #[test]
    fn disjoint_writer_forces_validation_but_not_abort() {
        let stm = NorecStm::new();
        let mine = stm.new_var(0u64);
        let mine2 = stm.new_var(0u64);
        let other = stm.new_var(0u64);
        let mut h = stm.register();
        let mut w = stm.register();
        let mut first = true;
        h.atomically(|tx| {
            tx.read(&mine)?;
            if first {
                first = false;
                // A DISJOINT commit moves the single global clock...
                w.atomically(|tx2| tx2.modify(&other, |v| v + 1));
            }
            // ...forcing this unaffected transaction to revalidate on its
            // next fresh read (the cost NOrec pays for having no
            // per-location metadata), but the value comparison passes and
            // the transaction commits first try.
            tx.read(&mine2)
        });
        assert!(h.stats().validations >= 1);
        assert_eq!(h.stats().revalidation_failures, 0);
        assert_eq!(h.stats().aborts, 0);
    }

    /// Satellite regression test: the torn-snapshot window. A committer
    /// holds the sequence lock (odd) for the whole redo-log write-back; a
    /// reader sampling values in that window must never pair one account's
    /// NEW value with the other's OLD value. Mirrors the validation-engine
    /// race test from the PR-1 suite.
    #[test]
    fn concurrent_audits_never_see_mixed_snapshots() {
        let stm = NorecStm::new();
        let a = stm.new_var(500i64);
        let b = stm.new_var(500i64);
        std::thread::scope(|s| {
            for seed in 0..2u64 {
                let stm = stm.clone();
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    let mut h = stm.register();
                    for i in 0..4_000i64 {
                        let amt = (i * (seed as i64 + 1)) % 7 - 3;
                        h.atomically(|tx| {
                            let va = *tx.read(&a)?;
                            let vb = *tx.read(&b)?;
                            tx.write(&a, va - amt)?;
                            tx.write(&b, vb + amt)?;
                            Ok(())
                        });
                    }
                });
            }
            for _ in 0..2 {
                let stm = stm.clone();
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    let mut h = stm.register();
                    for _ in 0..4_000 {
                        let total = h.atomically(|tx| Ok(*tx.read(&a)? + *tx.read(&b)?));
                        assert_eq!(total, 1_000, "audit saw a torn snapshot");
                    }
                });
            }
        });
        assert_eq!(*a.snapshot_latest() + *b.snapshot_latest(), 1_000);
    }

    #[test]
    fn write_write_increments_all_land() {
        let stm = NorecStm::new();
        let x = stm.new_var(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stm = stm.clone();
                let x = x.clone();
                s.spawn(move || {
                    let mut h = stm.register();
                    for _ in 0..1_000 {
                        h.atomically(|tx| tx.modify(&x, |v| v + 1));
                    }
                });
            }
        });
        assert_eq!(*x.snapshot_latest(), 4_000);
        assert_eq!(stm.sequence(), 8_000, "4000 writer commits, +2 each");
    }

    #[test]
    fn cloned_runtimes_share_clock_and_id_sequence() {
        let a = NorecStm::new();
        let b = a.clone();
        assert_ne!(a.new_var(0u8).id(), b.new_var(0u8).id());
        let v = a.new_var(0u64);
        let mut h = b.register();
        h.atomically(|tx| tx.modify(&v, |x| x + 1));
        assert_eq!(a.sequence(), b.sequence());
        assert_eq!(*v.snapshot_latest(), 1);
    }
}
