//! Statistics shared by the baseline engines.

use lsa_engine::{AbortClass, AbortReasons};

/// Per-thread counters of a baseline STM engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BaselineStats {
    /// Committed update transactions.
    pub commits: u64,
    /// Committed read-only transactions.
    pub ro_commits: u64,
    /// Aborted transaction attempts.
    pub aborts: u64,
    /// Aborts broken down by the cross-engine [`AbortClass`] taxonomy
    /// (always `reasons.total() == aborts` for these engines).
    pub reasons: AbortReasons,
    /// Object reads.
    pub reads: u64,
    /// Object writes.
    pub writes: u64,
    /// Body re-executions.
    pub retries: u64,
    /// Full read-set validations performed (validation engine only).
    pub validations: u64,
    /// Total read-set entries examined across all validations — the paper's
    /// "validation overhead grows linearly with the number of objects a
    /// transaction has read so far" made measurable.
    pub validated_entries: u64,
    /// Validations that failed and doomed the attempt.
    pub revalidation_failures: u64,
    /// Shared-class commit timestamps from the time base's arbitration
    /// (TL2 engine on GV4/GV5 bases; every commit on those bases is
    /// shared-class, winners included).
    pub shared_cts: u64,
    /// Commits that skipped read-set validation because the arbitration
    /// proved exclusivity (TL2's `wv == rv + 1` fast path).
    pub fastpath_commits: u64,
}

impl BaselineStats {
    /// Record an aborted attempt with its taxonomy class.
    pub fn record_abort(&mut self, class: AbortClass) {
        self.aborts += 1;
        self.reasons.record(class);
    }

    /// Total commits.
    pub fn total_commits(&self) -> u64 {
        self.commits + self.ro_commits
    }

    /// Merge another thread's counters.
    pub fn merge(&mut self, other: &BaselineStats) {
        self.commits += other.commits;
        self.ro_commits += other.ro_commits;
        self.aborts += other.aborts;
        self.reasons.merge(&other.reasons);
        self.reads += other.reads;
        self.writes += other.writes;
        self.retries += other.retries;
        self.validations += other.validations;
        self.validated_entries += other.validated_entries;
        self.revalidation_failures += other.revalidation_failures;
        self.shared_cts += other.shared_cts;
        self.fastpath_commits += other.fastpath_commits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = BaselineStats {
            commits: 1,
            reads: 2,
            ..Default::default()
        };
        let b = BaselineStats {
            commits: 3,
            validations: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.commits, 4);
        assert_eq!(a.reads, 2);
        assert_eq!(a.validations, 4);
        assert_eq!(a.total_commits(), 4);
    }

    #[test]
    fn aborts_stay_classified() {
        let mut s = BaselineStats::default();
        s.record_abort(AbortClass::Validation);
        s.record_abort(AbortClass::Contention);
        s.record_abort(AbortClass::Validation);
        assert_eq!(s.aborts, 3);
        assert_eq!(s.reasons.validation, 2);
        assert_eq!(s.reasons.contention, 1);
        assert_eq!(s.reasons.total(), s.aborts);
        let mut t = BaselineStats::default();
        t.record_abort(AbortClass::Validation);
        t.merge(&s);
        assert_eq!(t.reasons.validation, 3);
        assert_eq!(t.reasons.total(), t.aborts);
    }
}
