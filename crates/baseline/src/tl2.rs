//! A TL2-style single-version STM (Dice, Shalev, Shavit — DISC'06), §1.2 of
//! the paper.
//!
//! TL2 is the leanest of the time-based STMs the paper discusses: one version
//! per object, no validity-range extensions — "an object can only be read if
//! the most recent update to the object is before the start time of the
//! current transaction". A shared integer counter is the usual time base;
//! the TL2 paper itself already "suggested to use hardware clocks instead of
//! the shared counter to avoid its overhead", which is exactly the direction
//! the LSA-RT paper develops. This implementation is therefore *generic over
//! the time base* too (any [`TimeBase`] with `u64` timestamps), so the
//! benchmarks can run TL2-on-counter against TL2-on-MMTimer.
//!
//! Protocol (speculative read version):
//!
//! * **start**: `rv ← getTime()`.
//! * **read**: sample the object's versioned lock, read the payload, resample
//!   — retry on a concurrent writer, abort if the version is newer than `rv`.
//! * **commit** (writers): lock the write set (bounded spinning, abort on
//!   timeout — deadlock avoidance), `wv ← acquireCommitTS(rv)` through the
//!   time base's commit-arbitration protocol, validate the read set, publish
//!   payloads, release locks stamping version `wv`.
//!
//! The commit timestamp goes through [`ThreadClock::acquire_commit_ts`]
//! rather than bare `get_new_ts`, which surfaces the base's arbitration
//! outcome: on GV4/GV5 bases a [`CommitTs::Shared`] value may be shared
//! with a concurrent committer (safe here because `wv` is acquired *after*
//! all write locks are held — any reader whose `rv` admits our versions
//! started after the locks, so it either sees all our writes or aborts), and
//! an exclusively owned `wv == rv + 1` proves no other transaction committed
//! since `rv`, so read-set validation can be skipped entirely — TL2's
//! classic fast path. Exclusivity is a contract, not a hint: a base whose
//! losers can adopt a winner's value (GV4) reports *every* commit `Shared`
//! — an "exclusive" winner could otherwise skip validation while an
//! adopter holding locks commits at the very same timestamp, which is why
//! classic TL2 forbids the `rv + 1` shortcut under GV4. The fast path
//! therefore only ever fires on bases with genuinely unique commit times
//! (shared counter, batched blocks), where it is sound.

use crate::stats::BaselineStats;
use lsa_engine::AbortClass;
use lsa_time::{CommitTs, ThreadClock, TimeBase};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Abort error of the TL2 engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tl2Abort {
    /// A read observed a version newer than the snapshot (`rv`).
    ReadTooNew,
    /// Could not acquire a write lock (likely conflict / deadlock avoidance).
    LockBusy,
    /// Commit-time read-set validation failed.
    Validation,
}

/// Result alias for TL2 operations.
pub type Tl2Result<T> = Result<T, Tl2Abort>;

/// Map a TL2 abort onto the cross-engine taxonomy: stale snapshots and
/// failed commit validation are consistency failures, a busy write lock is
/// lost contention.
fn abort_class(e: Tl2Abort) -> AbortClass {
    match e {
        Tl2Abort::ReadTooNew | Tl2Abort::Validation => AbortClass::Validation,
        Tl2Abort::LockBusy => AbortClass::Contention,
    }
}

/// Versioned-lock word: `version << 1 | locked`.
#[derive(Debug, Default)]
struct VLock(AtomicU64);

impl VLock {
    #[inline]
    fn sample(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    #[inline]
    fn is_locked(word: u64) -> bool {
        word & 1 == 1
    }

    #[inline]
    fn version(word: u64) -> u64 {
        word >> 1
    }

    /// Try to acquire the lock given an unlocked sample.
    #[inline]
    fn try_lock(&self, unlocked_word: u64) -> bool {
        !Self::is_locked(unlocked_word)
            && self
                .0
                .compare_exchange(
                    unlocked_word,
                    unlocked_word | 1,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
    }

    /// Release, stamping a new version.
    #[inline]
    fn unlock_with(&self, version: u64) {
        self.0.store(version << 1, Ordering::Release);
    }

    /// Release without changing the version (commit failed).
    #[inline]
    fn unlock_revert(&self, old_word: u64) {
        self.0.store(old_word, Ordering::Release);
    }
}

struct VarInner<T> {
    vlock: VLock,
    data: RwLock<Arc<T>>,
}

/// A TL2 transactional variable.
pub struct Tl2Var<T> {
    id: u64,
    inner: Arc<VarInner<T>>,
}

impl<T> Clone for Tl2Var<T> {
    fn clone(&self) -> Self {
        Tl2Var {
            id: self.id,
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send + Sync + 'static> Tl2Var<T> {
    /// Latest committed value (non-transactional; seeding/debug).
    pub fn snapshot_latest(&self) -> Arc<T> {
        Arc::clone(&self.inner.data.read())
    }

    /// Stable id of this variable.
    pub fn id(&self) -> u64 {
        self.id
    }
}

struct Tl2Inner<B> {
    tb: B,
    /// Shared id source: clones of the runtime hand out ids from the same
    /// sequence, so per-transaction maps keyed by id never collide.
    next_var: AtomicU64,
}

/// The TL2 runtime. Cheap to clone; clones share the time base and the
/// variable-id sequence.
pub struct Tl2Stm<B: TimeBase<Ts = u64>> {
    inner: Arc<Tl2Inner<B>>,
}

impl<B: TimeBase<Ts = u64>> Clone for Tl2Stm<B> {
    fn clone(&self) -> Self {
        Tl2Stm {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<B: TimeBase<Ts = u64>> Tl2Stm<B> {
    /// Create a runtime on the given time base. TL2 requires totally ordered
    /// `u64` timestamps (it has no mechanism for masking clock uncertainty —
    /// a limitation the LSA-RT paper's Algorithm 5 removes).
    pub fn new(tb: B) -> Self {
        Tl2Stm {
            inner: Arc::new(Tl2Inner {
                tb,
                next_var: AtomicU64::new(1),
            }),
        }
    }

    /// The underlying time base.
    pub fn time_base(&self) -> &B {
        &self.inner.tb
    }

    /// Create a transactional variable.
    pub fn new_var<T: Send + Sync + 'static>(&self, value: T) -> Tl2Var<T> {
        Tl2Var {
            id: self.inner.next_var.fetch_add(1, Ordering::Relaxed),
            inner: Arc::new(VarInner {
                vlock: VLock::default(),
                data: RwLock::new(Arc::new(value)),
            }),
        }
    }

    /// Register the calling thread.
    pub fn register(&self) -> Tl2Thread<B> {
        Tl2Thread {
            clock: self.inner.tb.register_thread(),
            stats: BaselineStats::default(),
        }
    }
}

/// Type-erased write-set entry operations.
trait WriteEntry: Send {
    fn lock(&self) -> Option<u64>;
    fn publish_and_unlock(&self, wv: u64);
    fn revert(&self, old_word: u64);
    fn var_id(&self) -> u64;
}

struct TypedWrite<T> {
    inner: Arc<VarInner<T>>,
    id: u64,
    pending: Arc<T>,
}

impl<T: Send + Sync + 'static> WriteEntry for TypedWrite<T> {
    fn lock(&self) -> Option<u64> {
        for _ in 0..64 {
            let w = self.inner.vlock.sample();
            if !VLock::is_locked(w) {
                if self.inner.vlock.try_lock(w) {
                    return Some(w);
                }
            } else {
                std::hint::spin_loop();
            }
        }
        None
    }

    fn publish_and_unlock(&self, wv: u64) {
        *self.inner.data.write() = Arc::clone(&self.pending);
        self.inner.vlock.unlock_with(wv);
    }

    fn revert(&self, old_word: u64) {
        self.inner.vlock.unlock_revert(old_word);
    }

    fn var_id(&self) -> u64 {
        self.id
    }
}

/// A read-set entry: the lock word sampled when the read was taken.
struct ReadEntry {
    var_id: u64,
    /// Closure-free revalidation: sample the lock word again.
    sample: Box<dyn Fn() -> u64 + Send>,
}

/// An executing TL2 transaction.
pub struct Tl2Txn<'h, B: TimeBase<Ts = u64>> {
    clock: &'h mut B::Clock,
    stats: &'h mut BaselineStats,
    rv: u64,
    reads: Vec<ReadEntry>,
    writes: Vec<Box<dyn WriteEntry>>,
    write_ids: HashMap<u64, usize>,
    read_cache: HashMap<u64, Arc<dyn std::any::Any + Send + Sync>>,
}

impl<B: TimeBase<Ts = u64>> Tl2Txn<'_, B> {
    /// Snapshot (read-version) timestamp of this transaction.
    pub fn rv(&self) -> u64 {
        self.rv
    }

    /// Transactional read.
    pub fn read<T: Send + Sync + 'static>(&mut self, var: &Tl2Var<T>) -> Tl2Result<Arc<T>> {
        self.stats.reads += 1;
        // Read-own-write.
        if let Some(&idx) = self.write_ids.get(&var.id) {
            let any = &self.writes[idx];
            debug_assert_eq!(any.var_id(), var.id);
            if let Some(cached) = self.read_cache.get(&(var.id | (1 << 63))) {
                return Ok(Arc::clone(cached).downcast::<T>().expect("stable type"));
            }
            unreachable!("pending write always cached");
        }
        if let Some(cached) = self.read_cache.get(&var.id) {
            return Ok(Arc::clone(cached).downcast::<T>().expect("stable type"));
        }
        loop {
            let w1 = var.inner.vlock.sample();
            if VLock::is_locked(w1) {
                std::hint::spin_loop();
                continue;
            }
            let value = Arc::clone(&var.inner.data.read());
            let w2 = var.inner.vlock.sample();
            if w1 != w2 {
                continue; // concurrent writer slipped in — resample
            }
            if VLock::version(w1) > self.rv {
                // §1.2: "an object can only be read if the most recent update
                // to the object is before the start time". Feed the too-new
                // stamp back to the clock: lazy bases (GV5) fold it into
                // their freshness state so ONE abort catches the retry up,
                // however far the versions ran ahead of the counter.
                self.clock.observe_ts(VLock::version(w1));
                return Err(Tl2Abort::ReadTooNew);
            }
            let inner = Arc::clone(&var.inner);
            self.reads.push(ReadEntry {
                var_id: var.id,
                sample: Box::new(move || inner.vlock.sample()),
            });
            self.read_cache.insert(
                var.id,
                Arc::clone(&value) as Arc<dyn std::any::Any + Send + Sync>,
            );
            return Ok(value);
        }
    }

    /// Transactional (buffered) write.
    pub fn write<T: Send + Sync + 'static>(&mut self, var: &Tl2Var<T>, value: T) -> Tl2Result<()> {
        self.stats.writes += 1;
        let pending = Arc::new(value);
        self.read_cache.insert(
            var.id | (1 << 63),
            Arc::clone(&pending) as Arc<dyn std::any::Any + Send + Sync>,
        );
        match self.write_ids.get(&var.id) {
            Some(&idx) => {
                self.writes[idx] = Box::new(TypedWrite {
                    inner: Arc::clone(&var.inner),
                    id: var.id,
                    pending,
                });
            }
            None => {
                self.write_ids.insert(var.id, self.writes.len());
                self.writes.push(Box::new(TypedWrite {
                    inner: Arc::clone(&var.inner),
                    id: var.id,
                    pending,
                }));
            }
        }
        Ok(())
    }

    /// Read-modify-write convenience.
    pub fn modify<T: Send + Sync + 'static>(
        &mut self,
        var: &Tl2Var<T>,
        f: impl FnOnce(&T) -> T,
    ) -> Tl2Result<()> {
        let cur = self.read(var)?;
        self.write(var, f(&cur))
    }

    fn commit(mut self) -> Tl2Result<()> {
        if self.writes.is_empty() {
            // Read-only transactions need no commit-time work at all.
            self.stats.ro_commits += 1;
            return Ok(());
        }
        // Deterministic lock order (by id) for deadlock avoidance.
        self.writes.sort_by_key(|w| w.var_id());
        let mut locked: Vec<(usize, u64)> = Vec::with_capacity(self.writes.len());
        for (i, w) in self.writes.iter().enumerate() {
            match w.lock() {
                Some(old) => locked.push((i, old)),
                None => {
                    for &(j, old) in &locked {
                        self.writes[j].revert(old);
                    }
                    self.stats.record_abort(AbortClass::Contention);
                    return Err(Tl2Abort::LockBusy);
                }
            }
        }
        // Acquire the write version *after* locking (TL2 ordering) through
        // the commit-arbitration protocol, anchored at our read version.
        let arbitrated = self.clock.acquire_commit_ts(self.rv);
        if arbitrated.is_shared() {
            self.stats.shared_cts += 1;
        }
        let wv = arbitrated.ts();
        // TL2's fast path: an *exclusively owned* `wv == rv + 1` proves no
        // transaction committed between our start and our locks, so the
        // read set cannot have changed — skip validation. Only Exclusive
        // can prove that: adoption-capable bases (GV4) report every commit
        // Shared, because a winner's value may simultaneously be handed to
        // a concurrent loser — one that can hold locks our validation
        // would have caught (see CommitTs::Exclusive and the conformance
        // suite's exclusivity-collision check).
        if matches!(arbitrated, CommitTs::Exclusive(v) if v == self.rv + 1) {
            self.stats.fastpath_commits += 1;
        } else {
            // General path: validate the read set — still unlocked-by-others
            // and not newer than rv.
            self.stats.validations += 1;
            self.stats.validated_entries += self.reads.len() as u64;
            for r in &self.reads {
                let w = (r.sample)();
                // The version check applies to every read entry — including
                // objects we also wrote (we hold their lock, but a concurrent
                // committer may have updated them between our read and our lock
                // acquisition, which would make our pending write a lost update).
                // The lock-freedom check applies only to locks we do not own.
                let owned = self.write_ids.contains_key(&r.var_id);
                if VLock::version(w) > self.rv || (!owned && VLock::is_locked(w)) {
                    if VLock::version(w) > self.rv {
                        self.clock.observe_ts(VLock::version(w));
                    }
                    for &(j, old) in &locked {
                        self.writes[j].revert(old);
                    }
                    self.stats.revalidation_failures += 1;
                    self.stats.record_abort(AbortClass::Validation);
                    return Err(Tl2Abort::Validation);
                }
            }
        }
        for w in &self.writes {
            w.publish_and_unlock(wv);
        }
        self.stats.commits += 1;
        Ok(())
    }
}

/// A registered TL2 thread.
pub struct Tl2Thread<B: TimeBase<Ts = u64>> {
    clock: B::Clock,
    stats: BaselineStats,
}

impl<B: TimeBase<Ts = u64>> Tl2Thread<B> {
    /// Statistics accumulated by this thread.
    pub fn stats(&self) -> &BaselineStats {
        &self.stats
    }

    /// Take (and reset) the statistics.
    pub fn take_stats(&mut self) -> BaselineStats {
        std::mem::take(&mut self.stats)
    }

    /// Run `body` with retry-on-abort until it commits.
    pub fn atomically<R>(&mut self, mut body: impl FnMut(&mut Tl2Txn<'_, B>) -> Tl2Result<R>) -> R {
        let mut backoff = 0u32;
        loop {
            let rv = self.clock.get_time();
            let mut txn = Tl2Txn::<B> {
                clock: &mut self.clock,
                stats: &mut self.stats,
                rv,
                reads: Vec::new(),
                writes: Vec::new(),
                write_ids: HashMap::new(),
                read_cache: HashMap::new(),
            };
            match body(&mut txn) {
                Ok(value) => {
                    if txn.commit().is_ok() {
                        return value;
                    }
                }
                Err(e) => {
                    self.stats.record_abort(abort_class(e));
                }
            }
            // Abort feedback: GV5-style bases advance the clock on aborts so
            // the retry's rv can reach the versions that caused the abort.
            self.clock.note_abort();
            self.stats.retries += 1;
            for _ in 0..(1u64 << backoff.min(10)) {
                std::hint::spin_loop();
            }
            backoff += 1;
            if backoff > 10 {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_time::counter::SharedCounter;
    use lsa_time::hardware::HardwareClock;

    #[test]
    fn single_thread_roundtrip() {
        let stm = Tl2Stm::new(SharedCounter::new());
        let x = stm.new_var(5i64);
        let mut h = stm.register();
        let v = h.atomically(|tx| {
            let v = *tx.read(&x)?;
            tx.write(&x, v + 1)?;
            tx.read(&x).map(|v| *v)
        });
        assert_eq!(v, 6, "read-own-write");
        assert_eq!(*x.snapshot_latest(), 6);
    }

    #[test]
    fn read_only_commits_freely() {
        let stm = Tl2Stm::new(SharedCounter::new());
        let x = stm.new_var(1u8);
        let mut h = stm.register();
        let v = h.atomically(|tx| tx.read(&x).map(|v| *v));
        assert_eq!(v, 1);
        assert_eq!(h.stats().ro_commits, 1);
    }

    #[test]
    fn concurrent_transfers_preserve_total_counter() {
        concurrent_transfers_preserve_total(Tl2Stm::new(SharedCounter::new()));
    }

    #[test]
    fn concurrent_transfers_preserve_total_mmtimer() {
        concurrent_transfers_preserve_total(Tl2Stm::new(HardwareClock::mmtimer_free()));
    }

    #[test]
    fn concurrent_transfers_preserve_total_gv4() {
        use lsa_time::counter::Gv4Counter;
        concurrent_transfers_preserve_total(Tl2Stm::new(Gv4Counter::new()));
    }

    #[test]
    fn concurrent_transfers_preserve_total_gv5() {
        use lsa_time::counter::Gv5Counter;
        concurrent_transfers_preserve_total(Tl2Stm::new(Gv5Counter::new()));
    }

    #[test]
    fn concurrent_transfers_preserve_total_block() {
        use lsa_time::counter::BlockCounter;
        concurrent_transfers_preserve_total(Tl2Stm::new(BlockCounter::new(16)));
    }

    #[test]
    fn uncontended_counter_commits_take_the_fast_path() {
        // Single thread on an exclusive-arbitration base: every commit gets
        // wv == rv + 1 Exclusive, so read-set validation is skipped.
        let stm = Tl2Stm::new(SharedCounter::new());
        let x = stm.new_var(0u64);
        let mut h = stm.register();
        for _ in 0..100 {
            h.atomically(|tx| tx.modify(&x, |v| v + 1));
        }
        assert_eq!(*x.snapshot_latest(), 100);
        assert_eq!(h.stats().fastpath_commits, 100);
        assert_eq!(h.stats().validations, 0);
        assert_eq!(h.stats().shared_cts, 0);
    }

    #[test]
    fn gv4_commits_never_take_the_fast_path() {
        use lsa_time::counter::Gv4Counter;
        // A GV4 winner's value may be adopted by a concurrent loser, so no
        // GV4 commit is Exclusive and the rv + 1 validation skip must never
        // fire — the classic TL2 rule that GV4 forfeits the shortcut.
        let stm = Tl2Stm::new(Gv4Counter::new());
        let x = stm.new_var(0u64);
        let mut h = stm.register();
        for _ in 0..50 {
            h.atomically(|tx| tx.modify(&x, |v| v + 1));
        }
        assert_eq!(*x.snapshot_latest(), 50);
        let s = h.stats();
        assert_eq!(
            s.fastpath_commits, 0,
            "shared wv must never skip validation"
        );
        assert_eq!(s.shared_cts, s.commits, "every GV4 wv is shared-class");
        assert_eq!(s.validations, s.commits);
    }

    #[test]
    fn uncontended_block_commits_take_the_fast_path() {
        use lsa_time::counter::BlockCounter;
        // Block commit times are exclusive and globally unique (losers
        // re-arbitrate instead of adopting), so the rv + 1 fast path is
        // sound and fires on the uncontended path just like on the plain
        // shared counter.
        let stm = Tl2Stm::new(BlockCounter::new(16));
        let x = stm.new_var(0u64);
        let mut h = stm.register();
        for _ in 0..100 {
            h.atomically(|tx| tx.modify(&x, |v| v + 1));
        }
        assert_eq!(*x.snapshot_latest(), 100);
        assert_eq!(h.stats().fastpath_commits, 100);
        assert_eq!(h.stats().shared_cts, 0);
    }

    #[test]
    fn gv5_commits_stay_visible_through_abort_bumps() {
        use lsa_time::counter::Gv5Counter;
        let tb = Gv5Counter::new();
        let stm = Tl2Stm::new(tb.clone());
        let x = stm.new_var(0u64);
        let mut w = stm.register();
        for _ in 0..5 {
            w.atomically(|tx| tx.modify(&x, |v| v + 1));
        }
        // GV5 never advances the counter on commit; the writer's own
        // retries (and this reader's) advance it via note_abort instead.
        let mut r = stm.register();
        let v = r.atomically(|tx| tx.read(&x).map(|v| *v));
        assert_eq!(v, 5);
        assert!(
            tb.abort_bumps() >= 1,
            "catch-up must have gone through abort feedback"
        );
        let ws = w.stats();
        assert_eq!(
            ws.shared_cts, ws.commits,
            "every GV5 commit timestamp is shared-class"
        );
        assert_eq!(
            ws.fastpath_commits, 0,
            "shared wv must never skip validation"
        );
    }

    fn concurrent_transfers_preserve_total<B: TimeBase<Ts = u64>>(stm: Tl2Stm<B>) {
        const N: usize = 8;
        let accounts: Vec<Tl2Var<i64>> = (0..N).map(|_| stm.new_var(100)).collect();
        std::thread::scope(|s| {
            for t in 0..4 {
                let stm = stm.clone();
                let accounts = accounts.clone();
                s.spawn(move || {
                    let mut h = stm.register();
                    let mut x = t as u64 + 99;
                    for _ in 0..1_500 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let a = accounts[(x as usize) % N].clone();
                        let b = accounts[((x >> 20) as usize) % N].clone();
                        if a.id() == b.id() {
                            continue;
                        }
                        h.atomically(|tx| {
                            let va = *tx.read(&a)?;
                            let vb = *tx.read(&b)?;
                            tx.write(&a, va - 1)?;
                            tx.write(&b, vb + 1)?;
                            Ok(())
                        });
                    }
                });
            }
            // Read-only auditors must never see a broken invariant.
            for _ in 0..2 {
                let stm = stm.clone();
                let accounts = accounts.clone();
                s.spawn(move || {
                    let mut h = stm.register();
                    for _ in 0..300 {
                        let sum = h.atomically(|tx| {
                            let mut s = 0i64;
                            for a in &accounts {
                                s += *tx.read(a)?;
                            }
                            Ok(s)
                        });
                        assert_eq!(sum, (N as i64) * 100);
                    }
                });
            }
        });
        let total: i64 = accounts.iter().map(|a| *a.snapshot_latest()).sum();
        assert_eq!(total, (N as i64) * 100);
    }

    #[test]
    fn stale_snapshot_read_aborts_and_retries() {
        let stm = Tl2Stm::new(SharedCounter::new());
        let x = stm.new_var(0u64);
        let mut writer = stm.register();
        let mut reader = stm.register();
        // Reader starts and snapshots rv, writer commits, then reader reads:
        // within ONE attempt this aborts (ReadTooNew); atomically() retries
        // with a fresh rv and succeeds.
        let mut first_attempt = true;
        let v = reader.atomically(|tx| {
            if first_attempt {
                first_attempt = false;
                writer.atomically(|wtx| wtx.modify(&x, |v| v + 1));
            }
            tx.read(&x).map(|v| *v)
        });
        assert_eq!(v, 1);
        assert!(
            reader.stats().retries >= 1,
            "first attempt must have aborted"
        );
    }

    #[test]
    fn write_write_increments_all_land() {
        let stm = Tl2Stm::new(SharedCounter::new());
        let x = stm.new_var(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stm = stm.clone();
                let x = x.clone();
                s.spawn(move || {
                    let mut h = stm.register();
                    for _ in 0..1_000 {
                        h.atomically(|tx| tx.modify(&x, |v| v + 1));
                    }
                });
            }
        });
        assert_eq!(*x.snapshot_latest(), 4_000);
    }
}
