//! A validation-based STM with invisible reads (RSTM-style), §1.2 of the
//! paper.
//!
//! The intro's motivating trade-off: an STM that re-validates its entire read
//! set on **every** object access is always consistent but pays `O(n)` per
//! access (`O(n²)` per transaction of `n` reads) — this is the cost
//! time-based STMs eliminate. RSTM reduces (but does not remove) that cost
//! with a heuristic: a global *commit counter* counts attempted update
//! commits, and the read set is revalidated only when the counter changed
//! since the last validation. "Even disjoint updates will lead to cache
//! misses, slowing down transactions that are never affected by these
//! updates" — the commit counter is itself a contended shared line.
//!
//! [`ValidationStm`] implements both modes ([`ValidationMode::Always`] /
//! [`ValidationMode::CommitCounter`]) over single-version objects with
//! per-object write locks and buffered writes. The `validation_cost`
//! experiment (EXP-VAL in DESIGN.md) sweeps read-set sizes across this
//! engine and LSA-RT.

use crate::stats::BaselineStats;
use crossbeam_utils::CachePadded;
use lsa_engine::AbortClass;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Abort error of the validation engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValAbort {
    /// Read-set validation observed a concurrently updated object.
    Invalidated,
    /// Commit could not lock its write set.
    LockBusy,
}

/// Result alias for validation-STM operations.
pub type ValResult<T> = Result<T, ValAbort>;

/// When to revalidate the read set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValidationMode {
    /// Validate the whole read set on every access — the `O(n)`-per-access
    /// baseline of the paper's introduction.
    Always,
    /// RSTM heuristic: validate only when the global commit counter moved.
    CommitCounter,
}

struct VarInner<T> {
    /// Monotonic per-object version (bumped on every committed write).
    version: AtomicU64,
    data: RwLock<Arc<T>>,
    /// Write mutex is folded into `data`'s write lock; a separate flag marks
    /// a committer holding it for lock-busy detection.
    locked: AtomicU64,
}

/// A transactional variable of the validation engine.
pub struct ValVar<T> {
    id: u64,
    inner: Arc<VarInner<T>>,
}

impl<T> Clone for ValVar<T> {
    fn clone(&self) -> Self {
        ValVar {
            id: self.id,
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send + Sync + 'static> ValVar<T> {
    /// Latest committed value (non-transactional).
    pub fn snapshot_latest(&self) -> Arc<T> {
        Arc::clone(&self.inner.data.read())
    }

    /// Stable id.
    pub fn id(&self) -> u64 {
        self.id
    }
}

struct ValInner {
    mode: ValidationMode,
    /// RSTM's global commit counter: incremented by every attempted update
    /// commit. Deliberately a single shared cache line — the point the paper
    /// makes about this design.
    commit_counter: Arc<CachePadded<AtomicU64>>,
    /// Shared id source so runtime clones never hand out colliding var ids.
    next_var: AtomicU64,
}

/// The validation-based STM runtime. Cheap to clone; clones share the commit
/// counter and the variable-id sequence.
#[derive(Clone)]
pub struct ValidationStm {
    inner: Arc<ValInner>,
}

impl ValidationStm {
    /// Runtime in the given validation mode.
    pub fn new(mode: ValidationMode) -> Self {
        ValidationStm {
            inner: Arc::new(ValInner {
                mode,
                commit_counter: Arc::new(CachePadded::new(AtomicU64::new(0))),
                next_var: AtomicU64::new(1),
            }),
        }
    }

    /// The validation mode.
    pub fn mode(&self) -> ValidationMode {
        self.inner.mode
    }

    /// Current value of the global commit counter.
    pub fn commit_counter(&self) -> u64 {
        self.inner.commit_counter.load(Ordering::Acquire)
    }

    /// Create a transactional variable.
    pub fn new_var<T: Send + Sync + 'static>(&self, value: T) -> ValVar<T> {
        ValVar {
            id: self.inner.next_var.fetch_add(1, Ordering::Relaxed),
            inner: Arc::new(VarInner {
                version: AtomicU64::new(0),
                data: RwLock::new(Arc::new(value)),
                locked: AtomicU64::new(0),
            }),
        }
    }

    /// Register the calling thread.
    pub fn register(&self) -> ValThread {
        ValThread {
            mode: self.inner.mode,
            commit_counter: Arc::clone(&self.inner.commit_counter),
            stats: BaselineStats::default(),
        }
    }
}

trait ReadCheck: Send {
    fn still_valid(&self) -> bool;
}

struct TypedCheck<T> {
    inner: Arc<VarInner<T>>,
    seen_version: u64,
}

impl<T: Send + Sync + 'static> ReadCheck for TypedCheck<T> {
    fn still_valid(&self) -> bool {
        self.inner.version.load(Ordering::Acquire) == self.seen_version
    }
}

trait WriteApply: Send {
    fn try_lock(&self) -> bool;
    fn unlock(&self);
    fn apply_and_bump(&self);
    fn var_id(&self) -> u64;
}

struct TypedApply<T> {
    inner: Arc<VarInner<T>>,
    id: u64,
    pending: Arc<T>,
}

impl<T: Send + Sync + 'static> WriteApply for TypedApply<T> {
    fn try_lock(&self) -> bool {
        self.inner
            .locked
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    fn unlock(&self) {
        self.inner.locked.store(0, Ordering::Release);
    }

    fn apply_and_bump(&self) {
        *self.inner.data.write() = Arc::clone(&self.pending);
        self.inner.version.fetch_add(1, Ordering::AcqRel);
    }

    fn var_id(&self) -> u64 {
        self.id
    }
}

/// An executing transaction of the validation engine.
pub struct ValTxn<'h> {
    mode: ValidationMode,
    commit_counter: &'h CachePadded<AtomicU64>,
    stats: &'h mut BaselineStats,
    /// Commit-counter value at the last successful validation.
    seen_cc: u64,
    reads: Vec<Box<dyn ReadCheck>>,
    writes: Vec<Box<dyn WriteApply>>,
    write_ids: HashMap<u64, usize>,
    read_cache: HashMap<u64, Arc<dyn std::any::Any + Send + Sync>>,
    /// Number of full read-set validations performed (the experiment metric).
    validations: u64,
}

impl ValTxn<'_> {
    /// Number of full read-set validations this transaction has performed.
    pub fn validations(&self) -> u64 {
        self.validations
    }

    fn validate_read_set(&mut self) -> bool {
        self.validations += 1;
        self.stats.validations += 1;
        self.stats.validated_entries += self.reads.len() as u64;
        let ok = self.reads.iter().all(|r| r.still_valid());
        if !ok {
            self.stats.revalidation_failures += 1;
        }
        ok
    }

    /// Validate if the mode calls for it (on every access, or when the commit
    /// counter indicates progress).
    fn maybe_validate(&mut self) -> ValResult<()> {
        match self.mode {
            ValidationMode::Always => {
                if !self.validate_read_set() {
                    return Err(ValAbort::Invalidated);
                }
            }
            ValidationMode::CommitCounter => {
                // The heuristic read: this load is the per-access shared
                // cache-line touch the paper calls out.
                let cc = self.commit_counter.load(Ordering::Acquire);
                if cc != self.seen_cc {
                    if !self.validate_read_set() {
                        return Err(ValAbort::Invalidated);
                    }
                    self.seen_cc = cc;
                }
            }
        }
        Ok(())
    }

    /// Transactional read: read the current committed value, then make the
    /// whole read set consistent again (validation-on-access).
    pub fn read<T: Send + Sync + 'static>(&mut self, var: &ValVar<T>) -> ValResult<Arc<T>> {
        self.stats.reads += 1;
        if let Some(&idx) = self.write_ids.get(&var.id) {
            let _ = idx;
            if let Some(p) = self.read_cache.get(&(var.id | (1 << 63))) {
                return Ok(Arc::clone(p).downcast::<T>().expect("stable type"));
            }
        }
        if let Some(cached) = self.read_cache.get(&var.id) {
            return Ok(Arc::clone(cached).downcast::<T>().expect("stable type"));
        }
        let mut spins = 0u32;
        let (value, seen_version) = loop {
            // A committer holds `locked` for the whole apply (data write +
            // version bump). Readers must never sample while it is held:
            // the data store and the version bump are separate writes, so a
            // read in that window could pair a NEW value with the OLD
            // version number — and later validations, which compare version
            // numbers only, would wrongly certify the mixed snapshot.
            // Bounded spinning: on oversubscribed hosts the committer may be
            // descheduled while holding `locked`, so yield past 64 tries.
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
                spins = 0;
            }
            if var.inner.locked.load(Ordering::Acquire) != 0 {
                std::hint::spin_loop();
                continue;
            }
            let v1 = var.inner.version.load(Ordering::Acquire);
            let value = Arc::clone(&var.inner.data.read());
            if var.inner.locked.load(Ordering::Acquire) != 0 {
                continue; // a committer started mid-read — resample
            }
            let v2 = var.inner.version.load(Ordering::Acquire);
            if v1 == v2 {
                break (value, v1);
            }
        };
        self.reads.push(Box::new(TypedCheck {
            inner: Arc::clone(&var.inner),
            seen_version,
        }));
        self.maybe_validate()?;
        self.read_cache.insert(
            var.id,
            Arc::clone(&value) as Arc<dyn std::any::Any + Send + Sync>,
        );
        Ok(value)
    }

    /// Transactional buffered write.
    pub fn write<T: Send + Sync + 'static>(&mut self, var: &ValVar<T>, value: T) -> ValResult<()> {
        self.stats.writes += 1;
        let pending = Arc::new(value);
        self.read_cache.insert(
            var.id | (1 << 63),
            Arc::clone(&pending) as Arc<dyn std::any::Any + Send + Sync>,
        );
        let entry = TypedApply {
            inner: Arc::clone(&var.inner),
            id: var.id,
            pending,
        };
        match self.write_ids.get(&var.id) {
            Some(&idx) => self.writes[idx] = Box::new(entry),
            None => {
                self.write_ids.insert(var.id, self.writes.len());
                self.writes.push(Box::new(entry));
            }
        }
        Ok(())
    }

    /// Read-modify-write convenience.
    pub fn modify<T: Send + Sync + 'static>(
        &mut self,
        var: &ValVar<T>,
        f: impl FnOnce(&T) -> T,
    ) -> ValResult<()> {
        let cur = self.read(var)?;
        self.write(var, f(&cur))
    }

    fn commit(mut self) -> ValResult<()> {
        if self.writes.is_empty() {
            // Read-only: the read set was kept valid throughout; one final
            // validation closes the linearization window.
            if !self.validate_read_set() {
                self.stats.record_abort(AbortClass::Validation);
                return Err(ValAbort::Invalidated);
            }
            self.stats.ro_commits += 1;
            return Ok(());
        }
        // RSTM heuristic: announce progress so concurrent readers revalidate.
        self.commit_counter.fetch_add(1, Ordering::AcqRel);
        self.writes.sort_by_key(|w| w.var_id());
        let mut locked = 0usize;
        for (i, w) in self.writes.iter().enumerate() {
            let mut ok = false;
            for _ in 0..64 {
                if w.try_lock() {
                    ok = true;
                    break;
                }
                std::hint::spin_loop();
            }
            if !ok {
                for w in &self.writes[..i] {
                    w.unlock();
                }
                self.stats.record_abort(AbortClass::Contention);
                return Err(ValAbort::LockBusy);
            }
            locked = i + 1;
        }
        // Final validation under locks.
        if !self.validate_read_set() {
            for w in &self.writes[..locked] {
                w.unlock();
            }
            self.stats.record_abort(AbortClass::Validation);
            return Err(ValAbort::Invalidated);
        }
        for w in &self.writes {
            w.apply_and_bump();
        }
        for w in &self.writes {
            w.unlock();
        }
        self.stats.commits += 1;
        Ok(())
    }
}

/// A registered thread of the validation engine.
pub struct ValThread {
    mode: ValidationMode,
    commit_counter: Arc<CachePadded<AtomicU64>>,
    stats: BaselineStats,
}

impl ValThread {
    /// Statistics accumulated by this thread.
    pub fn stats(&self) -> &BaselineStats {
        &self.stats
    }

    /// Take (and reset) the statistics.
    pub fn take_stats(&mut self) -> BaselineStats {
        std::mem::take(&mut self.stats)
    }

    /// Run `body` with retry-on-abort until it commits.
    pub fn atomically<R>(&mut self, mut body: impl FnMut(&mut ValTxn<'_>) -> ValResult<R>) -> R {
        let mut backoff = 0u32;
        loop {
            let seen_cc = self.commit_counter.load(Ordering::Acquire);
            let mut txn = ValTxn {
                mode: self.mode,
                commit_counter: &self.commit_counter,
                stats: &mut self.stats,
                seen_cc,
                reads: Vec::new(),
                writes: Vec::new(),
                write_ids: HashMap::new(),
                read_cache: HashMap::new(),
                validations: 0,
            };
            match body(&mut txn) {
                Ok(value) => {
                    if txn.commit().is_ok() {
                        return value;
                    }
                }
                Err(e) => self.stats.record_abort(match e {
                    ValAbort::Invalidated => AbortClass::Validation,
                    ValAbort::LockBusy => AbortClass::Contention,
                }),
            }
            self.stats.retries += 1;
            for _ in 0..(1u64 << backoff.min(10)) {
                std::hint::spin_loop();
            }
            backoff += 1;
            if backoff > 10 {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_both_modes() {
        for mode in [ValidationMode::Always, ValidationMode::CommitCounter] {
            let stm = ValidationStm::new(mode);
            let x = stm.new_var(1i32);
            let mut h = stm.register();
            let v = h.atomically(|tx| {
                let v = *tx.read(&x)?;
                tx.write(&x, v + 1)?;
                tx.read(&x).map(|v| *v)
            });
            assert_eq!(v, 2);
            assert_eq!(*x.snapshot_latest(), 2);
        }
    }

    #[test]
    fn always_mode_validates_on_each_access() {
        let stm = ValidationStm::new(ValidationMode::Always);
        let vars: Vec<ValVar<u8>> = (0..10).map(|i| stm.new_var(i as u8)).collect();
        let mut h = stm.register();
        h.atomically(|tx| {
            for v in &vars {
                tx.read(v)?;
            }
            Ok(())
        });
        // n reads, each triggering a validation of the current read set:
        // 1 + 2 + ... + n entries validated, plus the commit validation.
        let n = 10u64;
        assert_eq!(h.stats().validations, n + 1);
        assert_eq!(h.stats().validated_entries, n * (n + 1) / 2 + n);
    }

    #[test]
    fn commit_counter_mode_skips_validation_when_quiescent() {
        let stm = ValidationStm::new(ValidationMode::CommitCounter);
        let vars: Vec<ValVar<u8>> = (0..10).map(|_| stm.new_var(0)).collect();
        let mut h = stm.register();
        h.atomically(|tx| {
            for v in &vars {
                tx.read(v)?;
            }
            Ok(())
        });
        // No concurrent committers: only the final commit validation runs.
        assert_eq!(h.stats().validations, 1);
    }

    #[test]
    fn commit_counter_mode_revalidates_on_progress() {
        let stm = ValidationStm::new(ValidationMode::CommitCounter);
        let a = stm.new_var(0u64);
        let b = stm.new_var(0u64);
        let unrelated = stm.new_var(0u64);
        let mut h = stm.register();
        let mut w = stm.register();
        let mut first = true;
        h.atomically(|tx| {
            tx.read(&a)?;
            if first {
                first = false;
                // A disjoint commit elsewhere moves the global counter...
                w.atomically(|tx2| tx2.modify(&unrelated, |v| v + 1));
            }
            // ...forcing this (unaffected!) transaction to revalidate.
            tx.read(&b)
        });
        assert!(
            h.stats().validations >= 2,
            "disjoint progress must trigger revalidation (the paper's point)"
        );
    }

    #[test]
    fn doomed_transaction_aborts_mid_flight() {
        let stm = ValidationStm::new(ValidationMode::Always);
        let a = stm.new_var(0u64);
        let b = stm.new_var(0u64);
        let mut h = stm.register();
        let mut w = stm.register();
        let mut sabotaged = false;
        let (va, vb) = h.atomically(|tx| {
            let va = *tx.read(&a)?;
            if !sabotaged {
                sabotaged = true;
                w.atomically(|tx2| tx2.modify(&a, |v| v + 1));
            }
            // In Always mode this read detects the invalidation immediately.
            let vb = *tx.read(&b)?;
            Ok((va, vb))
        });
        assert_eq!((va, vb), (1, 0), "retry observed the new value of a");
        assert!(h.stats().aborts >= 1);
    }

    #[test]
    fn concurrent_audits_never_see_mixed_snapshots() {
        // Regression test: the read path must not sample an object while a
        // committer holds its write lock — the data store and the version
        // bump are separate writes, and a read in between pairs a new value
        // with an old version number, certifying a torn snapshot. Writers
        // keep transferring between two accounts; auditors must always see
        // the invariant total.
        for mode in [ValidationMode::Always, ValidationMode::CommitCounter] {
            let stm = ValidationStm::new(mode);
            let a = stm.new_var(500i64);
            let b = stm.new_var(500i64);
            std::thread::scope(|s| {
                for seed in 0..2u64 {
                    let stm = stm.clone();
                    let (a, b) = (a.clone(), b.clone());
                    s.spawn(move || {
                        let mut h = stm.register();
                        for i in 0..4_000i64 {
                            let amt = (i * (seed as i64 + 1)) % 7 - 3;
                            h.atomically(|tx| {
                                let va = *tx.read(&a)?;
                                let vb = *tx.read(&b)?;
                                tx.write(&a, va - amt)?;
                                tx.write(&b, vb + amt)?;
                                Ok(())
                            });
                        }
                    });
                }
                for _ in 0..2 {
                    let stm = stm.clone();
                    let (a, b) = (a.clone(), b.clone());
                    s.spawn(move || {
                        let mut h = stm.register();
                        for _ in 0..4_000 {
                            let total = h.atomically(|tx| Ok(*tx.read(&a)? + *tx.read(&b)?));
                            assert_eq!(total, 1_000, "audit saw a torn snapshot");
                        }
                    });
                }
            });
            assert_eq!(*a.snapshot_latest() + *b.snapshot_latest(), 1_000);
        }
    }

    #[test]
    fn concurrent_invariant_preserved() {
        for mode in [ValidationMode::Always, ValidationMode::CommitCounter] {
            let stm = Arc::new(ValidationStm::new(mode));
            let accounts: Vec<ValVar<i64>> = (0..8).map(|_| stm.new_var(100)).collect();
            std::thread::scope(|s| {
                for t in 0..4 {
                    let stm = Arc::clone(&stm);
                    let accounts = accounts.clone();
                    s.spawn(move || {
                        let mut h = stm.register();
                        let mut x = t as u64 + 7;
                        for _ in 0..1_000 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let a = accounts[(x as usize) % 8].clone();
                            let b = accounts[((x >> 20) as usize) % 8].clone();
                            if a.id() == b.id() {
                                continue;
                            }
                            h.atomically(|tx| {
                                let va = *tx.read(&a)?;
                                let vb = *tx.read(&b)?;
                                tx.write(&a, va - 1)?;
                                tx.write(&b, vb + 1)?;
                                Ok(())
                            });
                        }
                    });
                }
            });
            let total: i64 = accounts.iter().map(|a| *a.snapshot_latest()).sum();
            assert_eq!(total, 800, "mode={mode:?}");
        }
    }
}
