//! EXP-ERR as a Criterion bench: single transaction cost on externally
//! synchronized clocks at different deviation bounds (§4.3), multi- vs
//! single-version. The full sweep with abort breakdowns is the `err_sweep`
//! harness binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsa_stm::{Stm, StmConfig};
use lsa_time::external::{ExternalClock, OffsetPolicy};

fn transfer_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("err-sweep/transfer");
    for &dev in &[0u64, 10_000, 1_000_000] {
        for (mode, versions) in [("mv8", 8usize), ("sv1", 1usize)] {
            let tb = ExternalClock::with_policy(dev, OffsetPolicy::Alternating);
            let stm = Stm::with_config(tb, StmConfig::multi_version(versions));
            let a = stm.new_tvar(1_000i64);
            let b2 = stm.new_tvar(1_000i64);
            let mut h = stm.register();
            g.bench_with_input(
                BenchmarkId::new(mode, format!("dev{}us", dev / 1_000)),
                &dev,
                |b, _| {
                    b.iter(|| {
                        h.atomically(|tx| {
                            let va = *tx.read(&a)?;
                            let vb = *tx.read(&b2)?;
                            tx.write(&a, va - 1)?;
                            tx.write(&b2, vb + 1)?;
                            Ok(())
                        })
                    })
                },
            );
        }
    }
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = transfer_cost
}
criterion_main!(benches);
