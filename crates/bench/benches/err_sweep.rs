//! EXP-ERR as a Criterion bench: single transaction cost on externally
//! synchronized clocks at different deviation bounds (§4.3), multi- vs
//! single-version. The full sweep with throughput and abort columns is the
//! `err_sweep` harness binary.
//!
//! Every series is a parameterized registry entry
//! ([`lsa_harness::registry::lsa_external_entry`]); each iteration is one
//! two-account transfer from the bank workload — the same engine-generic
//! worker code the harness sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsa_harness::registry::{lsa_external_entry, Workload};
use lsa_workloads::BankConfig;

fn transfer_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("err-sweep/transfer");
    for &dev in &[0u64, 10_000, 1_000_000] {
        for (mode, versions) in [("mv8", 8usize), ("sv1", 1usize)] {
            let entry = lsa_external_entry(dev, versions);
            let wl = Workload::Bank(BankConfig {
                accounts: 2,
                initial: 1_000,
                audit_percent: 0,
            });
            let rig = entry.bench_rig(&wl, 1);
            let mut w = rig(0);
            g.bench_with_input(
                BenchmarkId::new(mode, format!("dev{}us", dev / 1_000)),
                &dev,
                |b, _| b.iter(|| w.step()),
            );
        }
    }
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = transfer_cost
}
criterion_main!(benches);
