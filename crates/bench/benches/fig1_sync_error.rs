//! Figure 1 as a Criterion bench: the cost of one synchronization-error
//! measurement round (Cristian exchange through shared memory) and of the
//! software clock-sync simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use lsa_time::hardware::HardwareClock;
use lsa_time::sync_measure::{measure, SyncMeasureConfig};
use lsa_time::sync_sim::{simulate, SyncSimConfig};
use std::time::Duration;

fn measurement_round(c: &mut Criterion) {
    let cfg = SyncMeasureConfig {
        probes: 2,
        rounds: 3,
        round_interval: Duration::from_micros(50),
    };
    c.bench_function("fig1/measure-3rounds-2probes", |b| {
        let tb = HardwareClock::mmtimer_free();
        b.iter(|| measure(&tb, &cfg))
    });
}

fn sync_simulation(c: &mut Criterion) {
    let cfg = SyncSimConfig {
        rounds: 100,
        nodes: 15,
        ..Default::default()
    };
    c.bench_function("fig1/sync-sim-100rounds-15nodes", |b| {
        b.iter(|| simulate(&cfg))
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = measurement_round, sync_simulation
}
criterion_main!(benches);
