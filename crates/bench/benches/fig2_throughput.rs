//! Figure 2 as a Criterion bench: per-transaction latency of the disjoint
//! update workload (the reciprocal of the figure's throughput axis), for the
//! shared counter vs the MMTimer, at the paper's three transaction sizes —
//! plus the discrete-event model evaluating a full 16-CPU curve point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsa_harness::altix_sim::{simulate, AltixParams};
use lsa_stm::Stm;
use lsa_time::counter::SharedCounter;
use lsa_time::hardware::HardwareClock;
use lsa_workloads::{DisjointConfig, DisjointWorkload};

fn real_single_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/real-1thread");
    for &k in &[10usize, 50, 100] {
        let cfg = DisjointConfig {
            objects_per_thread: (4 * k).max(64),
            accesses_per_tx: k,
        };
        let wl = DisjointWorkload::new(Stm::new(SharedCounter::new()), 1, cfg);
        let mut w = wl.worker(0);
        g.bench_with_input(BenchmarkId::new("shared-counter", k), &k, |b, _| {
            b.iter(|| w.step())
        });
        let wl = DisjointWorkload::new(Stm::new(HardwareClock::mmtimer_free()), 1, cfg);
        let mut w = wl.worker(0);
        g.bench_with_input(BenchmarkId::new("mmtimer-free", k), &k, |b, _| {
            b.iter(|| w.step())
        });
    }
    g.finish();
}

fn modeled_16cpu_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/modeled-altix-16cpu");
    let params = AltixParams {
        duration_ns: 2_000_000.0,
        ..AltixParams::paper_calibrated()
    };
    g.bench_function("counter-10acc", |b| {
        b.iter(|| simulate(16, 10, AltixParams::paper_counter(), params))
    });
    g.bench_function("mmtimer-10acc", |b| {
        b.iter(|| simulate(16, 10, AltixParams::paper_mmtimer(), params))
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = real_single_thread, modeled_16cpu_point
}
criterion_main!(benches);
