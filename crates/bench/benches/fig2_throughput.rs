//! Figure 2 as a Criterion bench: per-transaction latency of the disjoint
//! update workload (the reciprocal of the figure's throughput axis) at the
//! paper's three transaction sizes — plus the discrete-event model
//! evaluating a full 16-CPU curve point.
//!
//! The real-thread series are **driven from the engine registry**
//! ([`lsa_harness::registry`]): each cell is looked up by its
//! `engine(time_base)` coordinates and iterated through the type-erased
//! `EngineEntry::bench_rig` worker — no hand-wired engine setup. Adding a
//! series is one coordinate pair below.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsa_harness::altix_sim::{simulate, AltixParams};
use lsa_harness::registry::{default_registry, find_entry, Workload};
use lsa_workloads::DisjointConfig;

/// The registry cells Figure 2 compares: the contended shared counter
/// against the scalable MMTimer, plus the batched-block arbitration base.
const SERIES: [(&str, &str); 3] = [
    ("lsa-rt", "shared-counter"),
    ("lsa-rt", "mmtimer-free"),
    ("lsa-rt", "block64"),
];

fn real_single_thread(c: &mut Criterion) {
    let registry = default_registry();
    let mut g = c.benchmark_group("fig2/real-1thread");
    for &k in &[10usize, 50, 100] {
        let wl = Workload::Disjoint(DisjointConfig {
            objects_per_thread: (4 * k).max(64),
            accesses_per_tx: k,
        });
        for (engine, tb) in SERIES {
            let entry = find_entry(&registry, engine, tb)
                .unwrap_or_else(|| panic!("registry lost the {engine}({tb}) cell"));
            let rig = entry.bench_rig(&wl, 1);
            let mut w = rig(0);
            g.bench_with_input(BenchmarkId::new(tb, k), &k, |b, _| b.iter(|| w.step()));
        }
    }
    g.finish();
}

fn modeled_16cpu_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/modeled-altix-16cpu");
    let params = AltixParams {
        duration_ns: 2_000_000.0,
        ..AltixParams::paper_calibrated()
    };
    g.bench_function("counter-10acc", |b| {
        b.iter(|| simulate(16, 10, AltixParams::paper_counter(), params))
    });
    g.bench_function("mmtimer-10acc", |b| {
        b.iter(|| simulate(16, 10, AltixParams::paper_mmtimer(), params))
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = real_single_thread, modeled_16cpu_point
}
criterion_main!(benches);
