//! **obs_bench** — microbenchmarks for the `lsa-obs` instrumentation the
//! serving path now carries by default: the sharded counter vs the naive
//! alternatives it replaces, flight-recorder event cost at each sampling
//! mode, sharded histogram recording, and the scrape-side snapshot.
//!
//! ```sh
//! cargo bench -p lsa-bench --bench obs_bench
//! LSA_BENCH_MS=100 LSA_BENCH_JSON=BENCH_obs.json cargo bench -p lsa-bench --bench obs_bench
//! ```
//!
//! Each line is the median ns per operation over repeated samples
//! (`LSA_BENCH_MS` bounds the per-benchmark measurement budget, default
//! 200 ms). `LSA_BENCH_JSON=PATH` writes the results via the shared
//! `lsa_harness::Json` emitter for the CI artifact. The contended rows are
//! the ones the sharded design exists for: four threads hammering one
//! *plain* atomic bounce a cache line per increment, four threads on one
//! *sharded* counter each own their line. The `trace/*` rows price a fully
//! instrumented transaction lifecycle (begin + 3 events) at each sampling
//! mode — `one-in-64` is the default the serving path runs with, so its
//! row is the per-transaction overhead budget the CI smoke guards.

use criterion::black_box;
use lsa_obs::registry::MetricsRegistry;
use lsa_obs::trace::{self, EventKind, Sampling};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-benchmark measurement budget.
fn budget() -> Duration {
    let ms = std::env::var("LSA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms.max(10))
}

/// Run `sample` repeatedly until the budget elapses (at least 3, at most 64
/// samples) and return the median ns/op. `sample` returns (ops, elapsed).
fn median_ns_per_op(budget: Duration, mut sample: impl FnMut() -> (u64, Duration)) -> f64 {
    let deadline = Instant::now() + budget;
    let mut ns: Vec<f64> = Vec::new();
    loop {
        let (ops, took) = sample();
        ns.push(took.as_nanos() as f64 / ops.max(1) as f64);
        if (Instant::now() >= deadline && ns.len() >= 3) || ns.len() >= 64 {
            break;
        }
    }
    ns.sort_by(|a, b| a.partial_cmp(b).expect("ns are finite"));
    ns[ns.len() / 2]
}

/// One thread incrementing: the uncontended fast path all three counter
/// designs handle well — this row isolates per-call overhead.
fn bench_counter_single(inc: impl Fn()) -> f64 {
    const OPS: u64 = 65_536;
    median_ns_per_op(budget(), || {
        let start = Instant::now();
        for _ in 0..OPS {
            inc();
        }
        (OPS, start.elapsed())
    })
}

/// Four threads incrementing the same instrument: the row where a plain
/// atomic pays a cache-line bounce per increment and the sharded counter
/// does not.
fn bench_counter_4t(inc: impl Fn() + Send + Sync) -> f64 {
    const THREADS: u64 = 4;
    const PER: u64 = 16_384;
    let inc = &inc;
    median_ns_per_op(budget(), || {
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(move || {
                    for _ in 0..PER {
                        inc();
                    }
                });
            }
        });
        (THREADS * PER, start.elapsed())
    })
}

/// One fully instrumented transaction lifecycle — the event pattern the
/// stm layer emits per attempt: a begin decision plus validate, cts, and
/// commit events (the latter three cost one TLS flag read when the
/// attempt was not sampled).
fn bench_trace_lifecycle(s: Sampling) -> f64 {
    const TXNS: u64 = 16_384;
    trace::set_sampling(s);
    let ns = median_ns_per_op(budget(), || {
        let start = Instant::now();
        for i in 0..TXNS {
            trace::txn_begin(black_box(i));
            trace::txn_event(EventKind::Validate, 0, i);
            trace::txn_event(EventKind::CtsShared, 0, i);
            trace::txn_event(EventKind::Commit, 0, i);
        }
        (TXNS, start.elapsed())
    });
    trace::set_sampling(Sampling::Off);
    trace::clear();
    ns
}

/// Sharded histogram record — the per-request latency write on the
/// service's completion path.
fn bench_hist_record() -> f64 {
    const OPS: u64 = 65_536;
    let reg = MetricsRegistry::new();
    let h = reg.histogram("bench.lat");
    median_ns_per_op(budget(), || {
        let start = Instant::now();
        for i in 0..OPS {
            h.record_ns(black_box(i * 37 + 100));
        }
        (OPS, start.elapsed())
    })
}

/// Full registry snapshot → JSON with a serving-path-sized instrument
/// population: the cost a live Stats scrape pays, amortized over nothing —
/// it must simply be cheap enough at scrape rate (Hz, not MHz).
fn bench_snapshot_json() -> f64 {
    const SCRAPES: u64 = 64;
    let reg = MetricsRegistry::new();
    for name in [
        "service.submitted",
        "service.shed",
        "engine.commits",
        "engine.ro_commits",
        "engine.retries",
        "engine.reads",
        "engine.writes",
        "engine.validations",
        "engine.aborts.validation",
        "engine.aborts.no_version",
        "engine.aborts.contention",
        "time.commit_ts.shared",
        "time.commit_ts.exclusive",
        "wire.accepted",
        "wire.frames_in",
        "wire.frames_out",
        "wire.protocol_errors",
        "wire.op.ping",
        "wire.op.bank_transfer",
        "wire.op.stats",
    ] {
        reg.counter(name).add(12_345);
    }
    reg.gauge("service.queue_depth").set(7);
    reg.gauge_fn("wire.window_in_flight", || 42);
    let h = reg.histogram("service.latency_ns");
    for i in 0..10_000u64 {
        h.record_ns(i * 97 + 500);
    }
    median_ns_per_op(budget(), || {
        let start = Instant::now();
        for _ in 0..SCRAPES {
            black_box(reg.snapshot_json());
        }
        (SCRAPES, start.elapsed())
    })
}

fn main() {
    // Counter designs under comparison: the registry's sharded counter,
    // the single atomic it replaced, and the mutex-guarded u64 nobody
    // should write but every codebase has.
    let reg = MetricsRegistry::new();
    let sharded = reg.counter("bench.ops");
    let plain = AtomicU64::new(0);
    let mutexed = Mutex::new(0u64);

    let benches: Vec<(&str, f64)> = vec![
        (
            "counter/single-thread/sharded",
            bench_counter_single(|| sharded.inc()),
        ),
        (
            "counter/single-thread/plain-atomic",
            bench_counter_single(|| {
                plain.fetch_add(1, Ordering::Relaxed);
            }),
        ),
        (
            "counter/single-thread/mutex",
            bench_counter_single(|| {
                *mutexed.lock().expect("bench mutex poisoned") += 1;
            }),
        ),
        (
            "counter/4-threads/sharded",
            bench_counter_4t(|| sharded.inc()),
        ),
        (
            "counter/4-threads/plain-atomic",
            bench_counter_4t(|| {
                plain.fetch_add(1, Ordering::Relaxed);
            }),
        ),
        (
            "counter/4-threads/mutex",
            bench_counter_4t(|| {
                *mutexed.lock().expect("bench mutex poisoned") += 1;
            }),
        ),
        ("trace/lifecycle/off", bench_trace_lifecycle(Sampling::Off)),
        (
            "trace/lifecycle/one-in-64",
            bench_trace_lifecycle(Sampling::OneIn(trace::DEFAULT_ONE_IN)),
        ),
        ("trace/lifecycle/all", bench_trace_lifecycle(Sampling::All)),
        ("hist/record", bench_hist_record()),
        ("snapshot/json", bench_snapshot_json()),
    ];
    for (label, ns) in &benches {
        println!("{label:<40} {ns:>12.1} ns/op");
    }
    if let Ok(path) = std::env::var("LSA_BENCH_JSON") {
        use lsa_harness::Json;
        let doc = Json::obj([(
            "benches",
            Json::arr(benches.iter().map(|(label, ns)| {
                Json::obj([
                    ("name", Json::str(*label)),
                    ("ns_per_op", Json::Fixed(*ns, 1)),
                ])
            })),
        )]);
        doc.write_file(&path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
    println!(
        "sanity: sharded counter summed to {} across all rows above",
        sharded.value()
    );
}
