//! **queue_bench** — microbenchmarks for the serving path's hot-loop
//! primitives: the lock-free submission ring vs the retained mutex queue
//! baseline, pooled vs fresh oneshot channels, and reply-frame encoding
//! with vs without buffer reuse.
//!
//! ```sh
//! cargo bench -p lsa-bench --bench queue_bench
//! LSA_BENCH_MS=100 LSA_BENCH_JSON=BENCH_queue.json cargo bench -p lsa-bench --bench queue_bench
//! ```
//!
//! Each line is the median ns per operation over repeated samples
//! (`LSA_BENCH_MS` bounds the per-benchmark measurement budget, default
//! 200 ms). `LSA_BENCH_JSON=PATH` additionally writes the results as JSON
//! for the CI artifact. The queue benchmarks run the same contract through
//! both implementations — `ring` is [`lsa_service::BoundedQueue`] (the one
//! the service uses), `mutex` is [`lsa_service::MutexQueue`] (the previous
//! implementation, retained precisely for this comparison).

use criterion::black_box;
use lsa_service::oneshot::{self, OneshotPool};
use lsa_service::{BoundedQueue, MutexQueue, PushError};
use lsa_wire::{encode_frame, shard_hint, Request};
use std::time::{Duration, Instant};

/// Per-benchmark measurement budget.
fn budget() -> Duration {
    let ms = std::env::var("LSA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms.max(10))
}

/// Run `sample` repeatedly until the budget elapses (at least 3, at most 64
/// samples) and return the median ns/op. `sample` returns (ops, elapsed).
fn median_ns_per_op(budget: Duration, mut sample: impl FnMut() -> (u64, Duration)) -> f64 {
    let deadline = Instant::now() + budget;
    let mut ns: Vec<f64> = Vec::new();
    loop {
        let (ops, took) = sample();
        ns.push(took.as_nanos() as f64 / ops.max(1) as f64);
        if (Instant::now() >= deadline && ns.len() >= 3) || ns.len() >= 64 {
            break;
        }
    }
    ns.sort_by(|a, b| a.partial_cmp(b).expect("ns are finite"));
    ns[ns.len() / 2]
}

/// The queue contract under test, abstracted over the two implementations.
trait Queue<T>: Clone + Send + Sync + 'static {
    fn make(capacity: usize) -> Self;
    fn try_push(&self, item: T) -> Result<(), PushError<T>>;
    fn pop(&self) -> Option<T>;
    fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize;
}

impl<T: Send + 'static> Queue<T> for BoundedQueue<T> {
    fn make(capacity: usize) -> Self {
        BoundedQueue::new(capacity)
    }
    fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        BoundedQueue::try_push(self, item)
    }
    fn pop(&self) -> Option<T> {
        BoundedQueue::pop(self)
    }
    fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        BoundedQueue::pop_batch(self, out, max)
    }
}

impl<T: Send + 'static> Queue<T> for MutexQueue<T> {
    fn make(capacity: usize) -> Self {
        MutexQueue::new(capacity)
    }
    fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        MutexQueue::try_push(self, item)
    }
    fn pop(&self) -> Option<T> {
        MutexQueue::pop(self)
    }
    fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        MutexQueue::pop_batch(self, out, max)
    }
}

/// Single-thread push+pop pairs: the uncontended fast path.
fn bench_uncontended<Q: Queue<u64>>() -> f64 {
    const PAIRS: u64 = 8_192;
    let q = Q::make(256);
    median_ns_per_op(budget(), || {
        let start = Instant::now();
        for i in 0..PAIRS {
            q.try_push(black_box(i)).expect("queue has room");
            black_box(q.pop());
        }
        (PAIRS * 2, start.elapsed())
    })
}

/// One producer thread streams items through the queue to the consumer:
/// the steady-state hand-off cost including wakeups.
fn bench_ping_pong<Q: Queue<u64>>() -> f64 {
    const ITEMS: u64 = 8_192;
    median_ns_per_op(budget(), || {
        let q = Q::make(256);
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || {
                for i in 0..ITEMS {
                    loop {
                        match q.try_push(i) {
                            Ok(()) => break,
                            Err(PushError::Overloaded(_)) => std::thread::yield_now(),
                            Err(PushError::Closed(_)) => panic!("closed mid-bench"),
                        }
                    }
                }
            })
        };
        let start = Instant::now();
        for _ in 0..ITEMS {
            black_box(q.pop().expect("producer still pushing"));
        }
        let took = start.elapsed();
        producer.join().unwrap();
        (ITEMS, took)
    })
}

/// Four producers race into one queue; the consumer drains in batches —
/// the contended admission path plus the batched drain the workers use.
fn bench_burst_4p<Q: Queue<u64>>() -> f64 {
    const PRODUCERS: u64 = 4;
    const PER: u64 = 2_048;
    median_ns_per_op(budget(), || {
        let q = Q::make(256);
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|t| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..PER {
                        loop {
                            match q.try_push(t * PER + i) {
                                Ok(()) => break,
                                Err(PushError::Overloaded(_)) => std::thread::yield_now(),
                                Err(PushError::Closed(_)) => panic!("closed mid-bench"),
                            }
                        }
                    }
                })
            })
            .collect();
        let start = Instant::now();
        let mut got = 0u64;
        let mut batch = Vec::with_capacity(64);
        while got < PRODUCERS * PER {
            batch.clear();
            got += q.pop_batch(&mut batch, 64) as u64;
            black_box(&batch);
        }
        let took = start.elapsed();
        for h in handles {
            h.join().unwrap();
        }
        (PRODUCERS * PER, took)
    })
}

/// Fresh oneshot per request: the allocation the pool exists to avoid.
fn bench_oneshot_fresh() -> f64 {
    const OPS: u64 = 8_192;
    median_ns_per_op(budget(), || {
        let start = Instant::now();
        for i in 0..OPS {
            let (tx, rx) = oneshot::channel::<u64>();
            tx.send(black_box(i));
            black_box(rx.wait().expect("value sent"));
        }
        (OPS, start.elapsed())
    })
}

/// Pooled oneshot: at steady state every channel reuses a recycled
/// allocation.
fn bench_oneshot_pooled() -> f64 {
    const OPS: u64 = 8_192;
    let pool = OneshotPool::<u64>::new(64);
    median_ns_per_op(budget(), || {
        let start = Instant::now();
        for i in 0..OPS {
            let (tx, rx) = pool.channel();
            tx.send(black_box(i));
            black_box(rx.wait().expect("value sent"));
        }
        (OPS, start.elapsed())
    })
}

/// Encode one reply-sized frame into a fresh `Vec` per request.
fn bench_encode_fresh() -> f64 {
    const OPS: u64 = 8_192;
    let req = Request::BankTransfer {
        from: 7,
        to: 3,
        amount: 42,
    };
    median_ns_per_op(budget(), || {
        let start = Instant::now();
        for i in 0..OPS {
            let mut buf = Vec::new();
            encode_frame(&mut buf, req.opcode(), i, shard_hint(&req), |b| {
                req.encode_payload(b)
            });
            black_box(&buf);
        }
        (OPS, start.elapsed())
    })
}

/// Encode into one reused buffer — the per-lane/per-connection reuse the
/// client and server practice.
fn bench_encode_reused() -> f64 {
    const OPS: u64 = 8_192;
    let req = Request::BankTransfer {
        from: 7,
        to: 3,
        amount: 42,
    };
    let mut buf = Vec::with_capacity(256);
    median_ns_per_op(budget(), || {
        let start = Instant::now();
        for i in 0..OPS {
            buf.clear();
            encode_frame(&mut buf, req.opcode(), i, shard_hint(&req), |b| {
                req.encode_payload(b)
            });
            black_box(&buf);
        }
        (OPS, start.elapsed())
    })
}

fn main() {
    let benches: Vec<(&str, f64)> = vec![
        (
            "queue/uncontended-push-pop/ring",
            bench_uncontended::<BoundedQueue<u64>>(),
        ),
        (
            "queue/uncontended-push-pop/mutex",
            bench_uncontended::<MutexQueue<u64>>(),
        ),
        (
            "queue/spsc-ping-pong/ring",
            bench_ping_pong::<BoundedQueue<u64>>(),
        ),
        (
            "queue/spsc-ping-pong/mutex",
            bench_ping_pong::<MutexQueue<u64>>(),
        ),
        ("queue/burst-4p/ring", bench_burst_4p::<BoundedQueue<u64>>()),
        ("queue/burst-4p/mutex", bench_burst_4p::<MutexQueue<u64>>()),
        ("oneshot/fresh", bench_oneshot_fresh()),
        ("oneshot/pooled", bench_oneshot_pooled()),
        ("encode/fresh-buffer", bench_encode_fresh()),
        ("encode/reused-buffer", bench_encode_reused()),
    ];
    for (label, ns) in &benches {
        println!("{label:<40} {ns:>12.1} ns/op");
    }
    if let Ok(path) = std::env::var("LSA_BENCH_JSON") {
        use lsa_harness::Json;
        let doc = Json::obj([(
            "benches",
            Json::arr(benches.iter().map(|(label, ns)| {
                Json::obj([
                    ("name", Json::str(*label)),
                    ("ns_per_op", Json::Fixed(*ns, 1)),
                ])
            })),
        )]);
        doc.write_file(&path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
}
