//! STM primitive-cost comparison across ALL engines, plus LSA-RT-specific
//! ablations (extension and version-depth) — the design-choice ablations
//! DESIGN.md calls out.
//!
//! The cross-engine groups use ONE generic criterion body per transaction
//! shape, driven through the [`TxnEngine`] surface: adding an engine to the
//! lists below (or a new shape) is one line, exactly like the harness
//! registry — the first ROADMAP bench item ("engine-generic benches") done.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsa_baseline::{NorecStm, Tl2Stm, ValidationMode, ValidationStm};
use lsa_engine::{EngineHandle, EngineVar, TxnEngine, TxnOps};
use lsa_stm::{Stm, StmConfig};
use lsa_time::counter::SharedCounter;
use lsa_time::hardware::HardwareClock;

/// Benchmark a read-only transaction over `n` variables on any engine.
fn bench_read_only<E: TxnEngine>(
    g: &mut criterion::BenchmarkGroup<'_>,
    label: &str,
    engine: &E,
    n: usize,
) {
    let vars: Vec<EngineVar<E, u64>> = (0..n).map(|_| engine.new_var(0u64)).collect();
    let mut h = engine.register();
    g.bench_function(label, |b| {
        b.iter(|| {
            h.atomically(|tx| {
                let mut s = 0u64;
                for v in &vars {
                    s += *tx.read(v)?;
                }
                Ok(s)
            })
        })
    });
}

/// Benchmark an update transaction incrementing `n` variables on any engine.
fn bench_update<E: TxnEngine>(
    g: &mut criterion::BenchmarkGroup<'_>,
    label: &str,
    engine: &E,
    n: usize,
) {
    let vars: Vec<EngineVar<E, u64>> = (0..n).map(|_| engine.new_var(0u64)).collect();
    let mut h = engine.register();
    g.bench_function(label, |b| {
        b.iter(|| {
            h.atomically(|tx| {
                for v in &vars {
                    tx.modify(v, |x| x + 1)?;
                }
                Ok(())
            })
        })
    });
}

fn read_only_txn(c: &mut Criterion) {
    let mut g = c.benchmark_group("stm-ops/read-only-10");
    bench_read_only(
        &mut g,
        "lsa-rt/counter",
        &Stm::new(SharedCounter::new()),
        10,
    );
    bench_read_only(
        &mut g,
        "lsa-rt/mmtimer-free",
        &Stm::new(HardwareClock::mmtimer_free()),
        10,
    );
    bench_read_only(
        &mut g,
        "tl2/counter",
        &Tl2Stm::new(SharedCounter::new()),
        10,
    );
    bench_read_only(
        &mut g,
        "validation/always",
        &ValidationStm::new(ValidationMode::Always),
        10,
    );
    bench_read_only(
        &mut g,
        "validation/commit-counter",
        &ValidationStm::new(ValidationMode::CommitCounter),
        10,
    );
    bench_read_only(&mut g, "norec/seqlock", &NorecStm::new(), 10);
    g.finish();
}

fn update_txn(c: &mut Criterion) {
    let mut g = c.benchmark_group("stm-ops/update-4");
    bench_update(&mut g, "lsa-rt/counter", &Stm::new(SharedCounter::new()), 4);
    bench_update(
        &mut g,
        "lsa-rt/mmtimer-free",
        &Stm::new(HardwareClock::mmtimer_free()),
        4,
    );
    bench_update(&mut g, "tl2/counter", &Tl2Stm::new(SharedCounter::new()), 4);
    bench_update(
        &mut g,
        "validation/commit-counter",
        &ValidationStm::new(ValidationMode::CommitCounter),
        4,
    );
    bench_update(&mut g, "norec/seqlock", &NorecStm::new(), 4);
    g.finish();
}

fn extension_ablation(c: &mut Criterion) {
    // Extension cost grows with read-set size: measure an update transaction
    // that first reads n objects, forcing one extension at open-for-write.
    // (LSA-RT-specific: extension is a native configuration knob.)
    let mut g = c.benchmark_group("stm-ops/extend");
    for &n in &[4usize, 32] {
        for (label, extend) in [("extend-on", true), ("extend-off", false)] {
            let cfg = StmConfig {
                extend_on_read: extend,
                ..StmConfig::default()
            };
            let stm = Stm::with_config(SharedCounter::new(), cfg);
            let vars: Vec<_> = (0..n).map(|_| stm.new_tvar(0u64)).collect();
            let target = stm.new_tvar(0u64);
            let mut h = stm.register();
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    h.atomically(|tx| {
                        for v in &vars {
                            tx.read(v)?;
                        }
                        tx.modify(&target, |x| x + 1)
                    })
                })
            });
        }
    }
    g.finish();
}

fn version_depth_ablation(c: &mut Criterion) {
    // Multi-version chains cost memory and fold work; measure update cost at
    // different retained-version depths. (LSA-RT-specific.)
    let mut g = c.benchmark_group("stm-ops/version-depth");
    for &depth in &[1usize, 8, 32] {
        let stm = Stm::with_config(SharedCounter::new(), StmConfig::multi_version(depth));
        let v = stm.new_tvar(0u64);
        let mut h = stm.register();
        g.bench_with_input(BenchmarkId::new("update", depth), &depth, |b, _| {
            b.iter(|| h.atomically(|tx| tx.modify(&v, |x| x + 1)))
        });
    }
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = read_only_txn, update_txn, extension_ablation, version_depth_ablation
}
criterion_main!(benches);
