//! LSA-RT primitive-cost ablations: read-only vs update commits, extension
//! cost, TL2 comparison, and the contention-manager hot path — the
//! design-choice ablations DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsa_baseline::Tl2Stm;
use lsa_bench::stm_with_vars;
use lsa_stm::{Stm, StmConfig};
use lsa_time::counter::SharedCounter;
use lsa_time::hardware::HardwareClock;

fn read_only_txn(c: &mut Criterion) {
    let mut g = c.benchmark_group("stm-ops/read-only-10");
    let (stm, vars) = stm_with_vars(SharedCounter::new(), 10);
    let mut h = stm.register();
    g.bench_function("lsa-rt/counter", |b| {
        b.iter(|| {
            h.atomically(|tx| {
                let mut s = 0u64;
                for v in &vars {
                    s += *tx.read(v)?;
                }
                Ok(s)
            })
        })
    });
    let (stm, vars) = stm_with_vars(HardwareClock::mmtimer_free(), 10);
    let mut h = stm.register();
    g.bench_function("lsa-rt/mmtimer-free", |b| {
        b.iter(|| {
            h.atomically(|tx| {
                let mut s = 0u64;
                for v in &vars {
                    s += *tx.read(v)?;
                }
                Ok(s)
            })
        })
    });
    let tl2 = Tl2Stm::new(SharedCounter::new());
    let tvars: Vec<_> = (0..10).map(|_| tl2.new_var(0u64)).collect();
    let mut th = tl2.register();
    g.bench_function("tl2/counter", |b| {
        b.iter(|| {
            th.atomically(|tx| {
                let mut s = 0u64;
                for v in &tvars {
                    s += *tx.read(v)?;
                }
                Ok(s)
            })
        })
    });
    g.finish();
}

fn update_txn(c: &mut Criterion) {
    let mut g = c.benchmark_group("stm-ops/update-4");
    let (stm, vars) = stm_with_vars(SharedCounter::new(), 4);
    let mut h = stm.register();
    g.bench_function("lsa-rt/counter", |b| {
        b.iter(|| {
            h.atomically(|tx| {
                for v in &vars {
                    tx.modify(v, |x| x + 1)?;
                }
                Ok(())
            })
        })
    });
    let tl2 = Tl2Stm::new(SharedCounter::new());
    let tvars: Vec<_> = (0..4).map(|_| tl2.new_var(0u64)).collect();
    let mut th = tl2.register();
    g.bench_function("tl2/counter", |b| {
        b.iter(|| {
            th.atomically(|tx| {
                for v in &tvars {
                    tx.modify(v, |x| x + 1)?;
                }
                Ok(())
            })
        })
    });
    g.finish();
}

fn extension_ablation(c: &mut Criterion) {
    // Extension cost grows with read-set size: measure an update transaction
    // that first reads n objects, forcing one extension at open-for-write.
    let mut g = c.benchmark_group("stm-ops/extend");
    for &n in &[4usize, 32] {
        for (label, extend) in [("extend-on", true), ("extend-off", false)] {
            let cfg = StmConfig {
                extend_on_read: extend,
                ..StmConfig::default()
            };
            let stm = Stm::with_config(SharedCounter::new(), cfg);
            let vars: Vec<_> = (0..n).map(|_| stm.new_tvar(0u64)).collect();
            let target = stm.new_tvar(0u64);
            let mut h = stm.register();
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    h.atomically(|tx| {
                        for v in &vars {
                            tx.read(v)?;
                        }
                        tx.modify(&target, |x| x + 1)
                    })
                })
            });
        }
    }
    g.finish();
}

fn version_depth_ablation(c: &mut Criterion) {
    // Multi-version chains cost memory and fold work; measure update cost at
    // different retained-version depths.
    let mut g = c.benchmark_group("stm-ops/version-depth");
    for &depth in &[1usize, 8, 32] {
        let stm = Stm::with_config(SharedCounter::new(), StmConfig::multi_version(depth));
        let v = stm.new_tvar(0u64);
        let mut h = stm.register();
        g.bench_with_input(BenchmarkId::new("update", depth), &depth, |b, _| {
            b.iter(|| h.atomically(|tx| tx.modify(&v, |x| x + 1)))
        });
    }
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = read_only_txn, update_txn, extension_ablation, version_depth_ablation
}
criterion_main!(benches);
