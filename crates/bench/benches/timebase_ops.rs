//! EXP-TB as a Criterion bench: raw `getTime` / `getNewTS` cost per time
//! base (single-threaded; the multi-threaded degradation is measured by the
//! `timebase_overhead` harness binary).

use criterion::{criterion_group, criterion_main, Criterion};
use lsa_time::counter::{BlockCounter, Gv4Counter, Gv5Counter, SharedCounter};
use lsa_time::external::ExternalClock;
use lsa_time::hardware::HardwareClock;
use lsa_time::numa::{NumaCounter, NumaModel};
use lsa_time::perfect::PerfectClock;
use lsa_time::{ThreadClock, TimeBase};

fn bench_ops<B: TimeBase>(c: &mut Criterion, name: &str, tb: B) {
    let mut clock = tb.register_thread();
    c.bench_function(format!("timebase/{name}/get_time"), |b| {
        b.iter(|| std::hint::black_box(clock.get_time()))
    });
    let mut clock = tb.register_thread();
    c.bench_function(format!("timebase/{name}/get_new_ts"), |b| {
        b.iter(|| std::hint::black_box(clock.get_new_ts()))
    });
    let mut clock = tb.register_thread();
    c.bench_function(format!("timebase/{name}/acquire_commit_ts"), |b| {
        b.iter(|| {
            let observed = clock.get_time();
            std::hint::black_box(clock.acquire_commit_ts(observed).ts())
        })
    });
}

fn all(c: &mut Criterion) {
    bench_ops(c, "shared-counter", SharedCounter::new());
    bench_ops(c, "gv4", Gv4Counter::new());
    bench_ops(c, "gv5", Gv5Counter::new());
    bench_ops(c, "block64", BlockCounter::new(64));
    bench_ops(
        c,
        "numa-counter-altix",
        NumaCounter::new(NumaModel::altix()),
    );
    bench_ops(c, "perfect-clock", PerfectClock::new());
    bench_ops(c, "mmtimer", HardwareClock::mmtimer());
    bench_ops(c, "mmtimer-free", HardwareClock::mmtimer_free());
    bench_ops(c, "external-1us", ExternalClock::new(1_000));
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = all
}
criterion_main!(benches);
