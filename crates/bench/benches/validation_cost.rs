//! EXP-VAL as a Criterion bench: read-only scans across engines — LSA-RT's
//! O(1)-per-access reads vs validation-on-every-access (O(n)) vs the RSTM
//! commit-counter heuristic (§1, §1.2).
//!
//! Driven from the engine registry through the generic scan workload
//! ([`lsa_harness::registry::Workload::Scan`]): each series is a registry
//! coordinate pair, each iteration one full invariant-checked scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsa_harness::registry::{default_registry, find_entry, Workload};
use lsa_workloads::ScanConfig;

/// The registry cells EXP-VAL compares, with their series labels.
const SERIES: [(&str, &str, &str); 4] = [
    ("lsa-rt", "shared-counter", "lsa-rt"),
    ("validation", "always", "val-always"),
    ("validation", "commit-counter", "val-cc"),
    ("norec", "seqlock", "norec"),
];

fn scans(c: &mut Criterion) {
    let registry = default_registry();
    let mut g = c.benchmark_group("validation-cost/scan");
    for &n in &[10usize, 100] {
        let wl = Workload::Scan(ScanConfig { objects: n });
        for (engine, tb, label) in SERIES {
            let entry = find_entry(&registry, engine, tb)
                .unwrap_or_else(|| panic!("registry lost the {engine}({tb}) cell"));
            let rig = entry.bench_rig(&wl, 1);
            let mut w = rig(0);
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| b.iter(|| w.step()));
        }
    }
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = scans
}
criterion_main!(benches);
