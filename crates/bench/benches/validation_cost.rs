//! EXP-VAL as a Criterion bench: read-only scans across engines — LSA-RT's
//! O(1)-per-access reads vs validation-on-every-access (O(n)) vs the RSTM
//! commit-counter heuristic (§1, §1.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsa_baseline::{ValidationMode, ValidationStm};
use lsa_bench::stm_with_vars;
use lsa_time::counter::SharedCounter;

fn scans(c: &mut Criterion) {
    let mut g = c.benchmark_group("validation-cost/scan");
    for &n in &[10usize, 100] {
        let (stm, vars) = stm_with_vars(SharedCounter::new(), n);
        let mut h = stm.register();
        g.bench_with_input(BenchmarkId::new("lsa-rt", n), &n, |b, _| {
            b.iter(|| {
                h.atomically(|tx| {
                    let mut s = 0u64;
                    for v in &vars {
                        s += *tx.read(v)?;
                    }
                    Ok(s)
                })
            })
        });

        for (label, mode) in [
            ("val-always", ValidationMode::Always),
            ("val-cc", ValidationMode::CommitCounter),
        ] {
            let vstm = ValidationStm::new(mode);
            let vvars: Vec<_> = (0..n).map(|i| vstm.new_var(i as u64)).collect();
            let mut vh = vstm.register();
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    vh.atomically(|tx| {
                        let mut s = 0u64;
                        for v in &vvars {
                            s += *tx.read(v)?;
                        }
                        Ok(s)
                    })
                })
            });
        }
    }
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = scans
}
criterion_main!(benches);
