//! # lsa-bench — Criterion benchmarks for every figure of the SPAA'07
//! evaluation
//!
//! | bench target | paper artifact |
//! |---|---|
//! | `fig2_throughput` | Figure 2 (counter vs MMTimer, 10/50/100 accesses) |
//! | `fig1_sync_error` | Figure 1 (synchronization measurement round cost) |
//! | `timebase_ops` | §4.2 raw time-base costs (EXP-TB) |
//! | `err_sweep` | §4.3 synchronization-error effect (EXP-ERR) |
//! | `validation_cost` | §1 validation vs time-based reads (EXP-VAL) |
//! | `stm_ops` | LSA-RT primitive costs (open/commit/extend ablations) |
//!
//! The benches are deliberately small so `cargo bench --workspace` finishes
//! on a laptop; the `lsa-harness` binaries produce the full figure series.
//!
//! This library exposes tiny helpers shared by the bench targets.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use lsa_stm::{Stm, TVar};
use lsa_time::TimeBase;

/// Build an STM + `n` zero-initialized `u64` TVars on the given time base.
pub fn stm_with_vars<B: TimeBase>(tb: B, n: usize) -> (Stm<B>, Vec<TVar<u64, B::Ts>>) {
    let stm = Stm::new(tb);
    let vars = (0..n).map(|_| stm.new_tvar(0u64)).collect();
    (stm, vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_time::counter::SharedCounter;

    #[test]
    fn helper_builds_requested_vars() {
        let (_stm, vars) = stm_with_vars(SharedCounter::new(), 7);
        assert_eq!(vars.len(), 7);
    }
}
