//! Engine-generic conformance checks: the correctness suite every
//! [`TxnEngine`](crate::TxnEngine) must pass.
//!
//! These checkers used to live inside LSA-only test files (`tests/opacity.rs`
//! hand-wired `lsa_rt::Stm` with three time bases, `tests/stm_model.rs`
//! likewise) — every other engine silently skipped them. Lifted here and
//! parameterized over `E: TxnEngine`, the same suite now runs on LSA-RT,
//! TL2, the validation STM and NOrec, and any future engine inherits it for
//! free through the harness registry.
//!
//! The checks are *history-based*, using only the generic surface:
//!
//! * [`counter_chain_serializable`] — concurrent read-increment-write
//!   transactions per object; afterwards each object's observed read values
//!   must form the gapless chain `0, 1, …, n-1`. A duplicate read is a lost
//!   update, a gap is a phantom update, and a read of a value never written
//!   is a torn/unserializable snapshot — so a gapless chain is a witness
//!   that the committed history equals a sequential history (the commit-time
//!   order check of `tests/opacity.rs`, expressed through values instead of
//!   engine-private timestamps, which the generic surface does not expose).
//! * [`audit_snapshot_consistency`] — concurrent transfers with read-only
//!   auditors: no audit may ever observe a sum off the invariant total
//!   (opacity's "no transaction observes an inconsistent state", §2.1 of the
//!   paper, made executable).
//! * [`sequential_ops_match_model`] — a differential model: arbitrary
//!   transaction bodies of reads/writes/adds applied both to the engine and
//!   to a reference `HashMap`; every intra-transaction read must observe
//!   model semantics (read-own-write included) and the final states must
//!   agree. Drive it from proptest-generated bodies (see `tests/stm_model.rs`)
//!   or from the deterministic generator in [`full_suite`].
//! * [`concurrent_adds_match_model`] — the concurrent differential model:
//!   commutative per-variable additions from many threads; the final state
//!   must equal the reference model's (order-independent) result.
//!
//! All checkers panic with the engine's name on violation — they are meant
//! to run under `cargo test` / the registry's conformance hook.

use crate::{EngineHandle, EngineVar, TxnEngine, TxnOps};
use std::collections::HashMap;
use std::sync::Mutex;

/// One operation of a differential-model transaction body.
#[derive(Clone, Copy, Debug)]
pub enum ModelOp {
    /// Read variable `i` and compare against the model.
    Read(usize),
    /// Write `value` to variable `i`.
    Write(usize, u64),
    /// Add `delta` to variable `i` (read-modify-write).
    Add(usize, u64),
}

/// Tiny deterministic generator (splitmix-style) so [`full_suite`] needs no
/// external dependency and behaves identically on every engine.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0 >> 11
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Concurrent increment chains: `threads` threads each run `increments`
/// transactions, every transaction picking one of `objects` variables,
/// reading it and writing the value + 1. Afterwards, per object, the sorted
/// multiset of read values must be exactly `0..n` and the final value `n` —
/// the value-chain witness of a serializable committed history.
pub fn counter_chain_serializable<E: TxnEngine>(
    engine: &E,
    threads: usize,
    increments: usize,
    objects: usize,
) {
    let name = engine.engine_name();
    let vars: Vec<EngineVar<E, u64>> = (0..objects).map(|_| engine.new_var(0u64)).collect();
    let log: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for t in 0..threads {
            let engine = engine.clone();
            let vars = vars.clone();
            let log = &log;
            s.spawn(move || {
                let mut h = engine.register();
                let mut rng = Lcg(t as u64 + 1);
                let mut local = Vec::with_capacity(increments);
                for _ in 0..increments {
                    let object = rng.below(vars.len());
                    let var = vars[object].clone();
                    let read = h.atomically(|tx| {
                        let read = *tx.read(&var)?;
                        tx.write(&var, read + 1)?;
                        Ok(read)
                    });
                    local.push((object, read));
                }
                log.lock().unwrap().extend(local);
            });
        }
    });

    let mut log = log.into_inner().unwrap();
    assert_eq!(log.len(), threads * increments, "{name}: lost transactions");
    log.sort_unstable();
    for (object, var) in vars.iter().enumerate() {
        let reads: Vec<u64> = log
            .iter()
            .filter(|&&(o, _)| o == object)
            .map(|&(_, r)| r)
            .collect();
        for (pos, &read) in reads.iter().enumerate() {
            assert_eq!(
                read, pos as u64,
                "{name}: object {object} read-chain has a gap or duplicate at \
                 position {pos} — committed history is not serializable"
            );
        }
        assert_eq!(
            *E::peek(var),
            reads.len() as u64,
            "{name}: object {object} final value diverges from its chain"
        );
    }
}

/// Concurrent transfers plus read-only audits: every audit must observe the
/// invariant total — a consistent snapshot — and the quiescent total must be
/// conserved exactly.
pub fn audit_snapshot_consistency<E: TxnEngine>(
    engine: &E,
    writers: usize,
    auditors: usize,
    steps: usize,
) {
    const ACCOUNTS: usize = 6;
    const INITIAL: i64 = 200;
    let name = engine.engine_name();
    let vars: Vec<EngineVar<E, i64>> = (0..ACCOUNTS).map(|_| engine.new_var(INITIAL)).collect();
    let expected = ACCOUNTS as i64 * INITIAL;

    std::thread::scope(|s| {
        for t in 0..writers {
            let engine = engine.clone();
            let vars = vars.clone();
            s.spawn(move || {
                let mut h = engine.register();
                let mut rng = Lcg(0xBEE5 + t as u64);
                for _ in 0..steps {
                    let from = rng.below(ACCOUNTS);
                    let to = (from + 1 + rng.below(ACCOUNTS - 1)) % ACCOUNTS;
                    let amount = (rng.next() % 7) as i64 - 3;
                    let (a, b) = (vars[from].clone(), vars[to].clone());
                    h.atomically(|tx| {
                        let va = *tx.read(&a)?;
                        let vb = *tx.read(&b)?;
                        tx.write(&a, va - amount)?;
                        tx.write(&b, vb + amount)?;
                        Ok(())
                    });
                }
            });
        }
        for _ in 0..auditors {
            let engine = engine.clone();
            let vars = vars.clone();
            s.spawn(move || {
                let mut h = engine.register();
                for _ in 0..steps {
                    let total = h.atomically(|tx| {
                        let mut sum = 0i64;
                        for v in &vars {
                            sum += *tx.read(v)?;
                        }
                        Ok(sum)
                    });
                    assert_eq!(
                        total,
                        expected,
                        "{}: audit observed a torn snapshot",
                        engine.engine_name()
                    );
                }
            });
        }
    });
    let total: i64 = vars.iter().map(|v| *E::peek(v)).sum();
    assert_eq!(total, expected, "{name}: quiescent total not conserved");
}

/// Sequential differential model: apply `txns` (each a transaction body of
/// [`ModelOp`]s over `n_vars` variables) to the engine and to a reference
/// `HashMap` side by side. Every read must observe model semantics
/// (read-own-write included); after each commit and at the end the states
/// must agree.
pub fn sequential_ops_match_model<E: TxnEngine>(engine: &E, n_vars: usize, txns: &[Vec<ModelOp>]) {
    let name = engine.engine_name();
    let vars: Vec<EngineVar<E, u64>> = (0..n_vars).map(|_| engine.new_var(0u64)).collect();
    let mut model: HashMap<usize, u64> = (0..n_vars).map(|i| (i, 0u64)).collect();
    let mut h = engine.register();

    for body in txns {
        let mut scratch = model.clone();
        h.atomically(|tx| {
            scratch = model.clone(); // body may re-run after an abort
            for op in body {
                match *op {
                    ModelOp::Read(i) => {
                        let got = *tx.read(&vars[i])?;
                        assert_eq!(
                            got, scratch[&i],
                            "{name}: read of var {i} diverged from the model"
                        );
                    }
                    ModelOp::Write(i, v) => {
                        tx.write(&vars[i], v)?;
                        scratch.insert(i, v);
                    }
                    ModelOp::Add(i, d) => {
                        tx.modify(&vars[i], |x| x + d)?;
                        *scratch.get_mut(&i).unwrap() += d;
                    }
                }
            }
            Ok(())
        });
        model = scratch;
    }

    for (i, var) in vars.iter().enumerate() {
        assert_eq!(
            *E::peek(var),
            model[&i],
            "{name}: final state of var {i} diverged from the model"
        );
    }
}

/// Concurrent differential model: each thread applies a list of per-variable
/// additions transactionally; additions commute, so the reference model's
/// final state is order-independent and must match the engine's exactly.
pub fn concurrent_adds_match_model<E: TxnEngine>(
    engine: &E,
    n_vars: usize,
    per_thread_adds: &[Vec<(usize, u64)>],
) {
    let name = engine.engine_name();
    let vars: Vec<EngineVar<E, u64>> = (0..n_vars).map(|_| engine.new_var(0u64)).collect();
    let mut model: HashMap<usize, u64> = (0..n_vars).map(|i| (i, 0u64)).collect();
    for adds in per_thread_adds {
        for &(i, d) in adds {
            *model.get_mut(&i).unwrap() += d;
        }
    }

    std::thread::scope(|s| {
        for adds in per_thread_adds {
            let engine = engine.clone();
            let vars = vars.clone();
            s.spawn(move || {
                let mut h = engine.register();
                for &(i, d) in adds {
                    let var = vars[i].clone();
                    h.atomically(|tx| tx.modify(&var, |x| x + d));
                }
            });
        }
    });

    for (i, var) in vars.iter().enumerate() {
        assert_eq!(
            *E::peek(var),
            model[&i],
            "{name}: concurrent adds to var {i} diverged from the model"
        );
    }
}

/// The whole conformance suite at test-friendly sizes: the value-chain
/// serializability check, the audit-snapshot check, the sequential
/// differential model over deterministically generated bodies, and the
/// concurrent differential model. This is what the harness registry exposes
/// per engine entry — one call certifies an engine.
pub fn full_suite<E: TxnEngine>(engine: &E) {
    counter_chain_serializable(engine, 4, 400, 6);
    audit_snapshot_consistency(engine, 2, 2, 400);

    let mut rng = Lcg(0xC0FFEE);
    let txns: Vec<Vec<ModelOp>> = (0..24)
        .map(|_| {
            (0..1 + rng.below(8))
                .map(|_| match rng.next() % 3 {
                    0 => ModelOp::Read(rng.below(6)),
                    1 => ModelOp::Write(rng.below(6), rng.next() % 1000),
                    _ => ModelOp::Add(rng.below(6), rng.next() % 10),
                })
                .collect()
        })
        .collect();
    sequential_ops_match_model(engine, 6, &txns);

    let adds: Vec<Vec<(usize, u64)>> = (0..4)
        .map(|t| {
            let mut rng = Lcg(t as u64 + 11);
            (0..200).map(|_| (rng.below(4), rng.next() % 5)).collect()
        })
        .collect();
    concurrent_adds_match_model(engine, 4, &adds);
}
