//! # lsa-engine — the engine abstraction of the workspace
//!
//! The SPAA'07 paper's central claim is that the LSA algorithm is decoupled
//! from its *time base*. This crate decouples the rest of the workspace from
//! its *engine*: the [`TxnEngine`] trait family is implemented by
//! `lsa_stm::Stm` (LSA-RT), `lsa_baseline::Tl2Stm` and
//! `lsa_baseline::ValidationStm`, so every workload, experiment and test can
//! run on any engine × time-base combination — the design-space matrix the
//! paper's §1.2 surveys (validation-based vs time-based, single- vs
//! multi-version, counter vs real-time clock).
//!
//! ## The trait family
//!
//! * [`TxnEngine`] — an STM runtime: creates transactional variables
//!   ([`TxnEngine::Var`], a generic associated type) and registers threads.
//! * [`EngineHandle`] — a registered thread: runs transaction bodies with
//!   retry-on-abort ([`EngineHandle::atomically`]) and exposes the shared
//!   statistics surface ([`EngineStats`]).
//! * [`TxnOps`] — the operations available *inside* a transaction body:
//!   [`read`](TxnOps::read), [`write`](TxnOps::write),
//!   [`modify`](TxnOps::modify). Abort values stay engine-specific
//!   ([`TxnEngine::Abort`]) and propagate with `?` exactly like in
//!   engine-native code.
//!
//! ## Writing engine-generic code
//!
//! ```
//! use lsa_engine::{EngineHandle, TxnEngine, TxnOps};
//!
//! /// Transfer between two accounts on ANY engine.
//! fn transfer<E: TxnEngine>(e: &E, h: &mut E::Handle, amount: i64) -> i64 {
//!     let a = e.new_var(100i64);
//!     let b = e.new_var(0i64);
//!     h.atomically(|tx| {
//!         let va = *tx.read(&a)?;
//!         let vb = *tx.read(&b)?;
//!         tx.write(&a, va - amount)?;
//!         tx.write(&b, vb + amount)?;
//!         Ok(va - amount)
//!     })
//! }
//! ```
//!
//! A new backend costs one trait impl — not a fork of the workloads and the
//! harness. See `DESIGN.md` §5 for the implementation notes per engine.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod conformance;

use std::fmt;
use std::sync::Arc;

/// Shorthand for an engine's abort type.
pub type EngineAbort<E> = <E as TxnEngine>::Abort;

/// A type-erased, `Send`-able unit of transactional work for engine `E`:
/// a closure executed on a worker's registered [`EngineHandle`]. This is the
/// request surface the async service front-end (`lsa-service`) ships across
/// threads — clients build a request on any thread, a pool worker runs it on
/// its own long-lived handle, and the closure routes results back through a
/// completion channel it captured.
pub type EngineRequest<E> = Box<dyn FnOnce(&mut <E as TxnEngine>::Handle) + Send + 'static>;

/// Shorthand for an engine's transactional-variable type.
pub type EngineVar<E, T> = <E as TxnEngine>::Var<T>;

/// Result of one transactional operation (or of a whole body) on engine `E`.
pub type EngineResult<R, E> = Result<R, EngineAbort<E>>;

/// A software-transactional-memory runtime.
///
/// Implementations are cheap to clone (reference-counted internally) and
/// sharable across threads; per-thread access goes through
/// [`register`](TxnEngine::register).
pub trait TxnEngine: Clone + Send + Sync + 'static {
    /// The engine's abort/error value, propagated with `?` through
    /// transaction bodies. Aborts are control flow, not failures: the
    /// [`EngineHandle::atomically`] loop catches them and re-runs the body.
    type Abort: fmt::Debug + Send + 'static;

    /// The engine's transactional variable holding a `T`. Cloning a var is
    /// cloning a reference to the same shared object.
    type Var<T: Send + Sync + 'static>: Clone + Send + Sync + 'static;

    /// The per-thread handle produced by [`register`](TxnEngine::register).
    type Handle: EngineHandle<Engine = Self>;

    /// Create a transactional variable initialized to `value`.
    fn new_var<T: Send + Sync + 'static>(&self, value: T) -> Self::Var<T>;

    /// Create a transactional variable with a *placement hint*: ask the
    /// engine to home the object on shard `shard % shards()`. Unsharded
    /// engines ignore the hint (the default), so workload code can pin its
    /// partitions unconditionally — on `lsa-sharded` the hint routes the
    /// object shard-locally (`ShardedStm::new_tvar_on`), everywhere else it
    /// degenerates to [`new_var`](TxnEngine::new_var).
    fn new_var_on<T: Send + Sync + 'static>(&self, shard: usize, value: T) -> Self::Var<T> {
        let _ = shard;
        self.new_var(value)
    }

    /// Register the calling thread, allocating its clock/stats state.
    fn register(&self) -> Self::Handle;

    /// Human-readable engine identifier for experiment output, including the
    /// time base or mode, e.g. `"lsa-rt(mmtimer)"` or `"validation(always)"`.
    fn engine_name(&self) -> String;

    /// Number of disjoint object shards this engine instance routes objects
    /// across. Unsharded engines report 1 (the default); sharded engines
    /// report the shard count they were constructed with, which is how the
    /// harness surfaces the construction-time shard axis without widening
    /// every constructor signature.
    fn shards(&self) -> usize {
        1
    }

    /// The latest committed value of `var`, read non-transactionally. Only
    /// meaningful while no update transactions are in flight (seeding,
    /// post-run audits).
    fn peek<T: Send + Sync + 'static>(var: &Self::Var<T>) -> Arc<T>;

    /// Point-in-time sample of the engine's **global** version-store memory
    /// gauges (live/retired/reclaimed version counts, arena bytes, watermark
    /// lag). Unlike [`EngineHandle::engine_stats`] these are not per-thread
    /// counters to be summed — the harness samples this once per run and
    /// attaches it to the aggregated [`EngineStats`]. Engines without a
    /// managed version store report all zeros (the default).
    fn memory_stats(&self) -> MemoryStats {
        MemoryStats::default()
    }
}

/// A registered thread of a [`TxnEngine`]: the gateway to running
/// transactions.
pub trait EngineHandle: Send + 'static {
    /// The owning engine type.
    type Engine: TxnEngine<Handle = Self>;

    /// The engine's in-flight transaction view, borrowing from the handle
    /// for the duration `'t` of one attempt.
    type Txn<'t>: TxnOps<Engine = Self::Engine>
    where
        Self: 't;

    /// Run `body` as a transaction, retrying on abort until it commits, and
    /// return its result. `body` must route every shared access through the
    /// provided [`TxnOps`] view and propagate aborts with `?`; side effects
    /// outside the STM must be idempotent because the body re-runs after an
    /// abort.
    fn atomically<R, F>(&mut self, body: F) -> R
    where
        F: for<'t> FnMut(&mut Self::Txn<'t>) -> EngineResult<R, Self::Engine>;

    /// Snapshot of the statistics this thread accumulated so far, on the
    /// engine-shared surface.
    fn engine_stats(&self) -> EngineStats;

    /// Take (and reset) the accumulated statistics.
    fn take_engine_stats(&mut self) -> EngineStats;
}

/// Operations available inside a transaction body, shared by every engine.
pub trait TxnOps {
    /// The owning engine type.
    type Engine: TxnEngine;

    /// Transactional read of `var`'s value within this transaction's
    /// snapshot (read-own-write included).
    fn read<T: Send + Sync + 'static>(
        &mut self,
        var: &EngineVar<Self::Engine, T>,
    ) -> EngineResult<Arc<T>, Self::Engine>;

    /// Transactional write of `value` to `var`, visible to this transaction
    /// immediately and to others after commit.
    fn write<T: Send + Sync + 'static>(
        &mut self,
        var: &EngineVar<Self::Engine, T>,
        value: T,
    ) -> EngineResult<(), Self::Engine>;

    /// Read-modify-write convenience: applies `f` to the current value (the
    /// transaction's own pending write if any) and writes the result.
    fn modify<T: Send + Sync + 'static>(
        &mut self,
        var: &EngineVar<Self::Engine, T>,
        f: impl FnOnce(&T) -> T,
    ) -> EngineResult<(), Self::Engine>;
}

/// Coarse abort classes shared by every engine — the cross-engine taxonomy
/// the harness and the service front-end report without hand-wiring each
/// engine's native reason enum.
///
/// Each engine maps its internal abort causes onto these classes in its
/// `TxnEngine` glue: LSA-RT folds `Validation`/`Snapshot` aborts into
/// [`Validation`](AbortClass::Validation) and keeps `NoVersion` separate
/// (the §4.3 split); lock-acquisition failures and contention-manager kills
/// land in [`Contention`](AbortClass::Contention);
/// [`Overload`](AbortClass::Overload) is never produced by an engine — it
/// counts admission-control sheds recorded by the `lsa-service` front-end.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortClass {
    /// A consistency check failed: commit/read-time validation, snapshot
    /// invalidation, value revalidation.
    Validation,
    /// No object version overlapped the transaction's validity range
    /// (multi-version engines only).
    NoVersion,
    /// Lost a conflict: lock busy, contention-manager loser, killed.
    Contention,
    /// Shed by admission control before execution (service front-end only).
    Overload,
}

impl AbortClass {
    /// All classes, in reporting order.
    pub const ALL: [AbortClass; 4] = [
        AbortClass::Validation,
        AbortClass::NoVersion,
        AbortClass::Contention,
        AbortClass::Overload,
    ];

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            AbortClass::Validation => "validation",
            AbortClass::NoVersion => "no-version",
            AbortClass::Contention => "contention",
            AbortClass::Overload => "overload",
        }
    }
}

impl fmt::Display for AbortClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Abort counts broken down by [`AbortClass`] — the cross-engine abort-reason
/// taxonomy (ROADMAP: "add an abort-reason taxonomy to `EngineStats` instead
/// of hand-wiring engines").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AbortReasons {
    /// Consistency-check failures (validation / snapshot / revalidation).
    pub validation: u64,
    /// Validity-range intersection came up empty (multi-version engines).
    pub no_version: u64,
    /// Lost conflicts (lock busy, CM loser, killed, explicit retry).
    pub contention: u64,
    /// Requests shed by the service front-end's admission control.
    pub overload: u64,
}

impl AbortReasons {
    /// Record one abort of the given class.
    pub fn record(&mut self, class: AbortClass) {
        *self.slot(class) += 1;
    }

    /// Count recorded for one class.
    pub fn get(&self, class: AbortClass) -> u64 {
        match class {
            AbortClass::Validation => self.validation,
            AbortClass::NoVersion => self.no_version,
            AbortClass::Contention => self.contention,
            AbortClass::Overload => self.overload,
        }
    }

    fn slot(&mut self, class: AbortClass) -> &mut u64 {
        match class {
            AbortClass::Validation => &mut self.validation,
            AbortClass::NoVersion => &mut self.no_version,
            AbortClass::Contention => &mut self.contention,
            AbortClass::Overload => &mut self.overload,
        }
    }

    /// Total classified aborts (overload sheds included).
    pub fn total(&self) -> u64 {
        self.validation + self.no_version + self.contention + self.overload
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &AbortReasons) {
        self.validation += other.validation;
        self.no_version += other.no_version;
        self.contention += other.contention;
        self.overload += other.overload;
    }
}

impl fmt::Display for AbortReasons {
    /// Compact `v/nv/ct/ov` rendering used by the matrix column.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}/{}",
            self.validation, self.no_version, self.contention, self.overload
        )
    }
}

/// Version-store memory gauges sampled from an engine (ROADMAP:
/// "Bounded-memory MVCC: epoch-based version GC").
///
/// These are **global point-in-time samples**, not per-thread counters: the
/// harness reads them once from [`TxnEngine::memory_stats`] after a run. The
/// counters `versions_retired` / `versions_reclaimed` are monotone over the
/// engine's lifetime; `versions_live`, `arena_bytes` and `watermark_lag` are
/// instantaneous gauges. [`merge`](MemoryStats::merge) therefore keeps the
/// element-wise **maximum** of two samples (the conservative bound when
/// samples from the same engine meet), never the sum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Committed versions currently reachable through some object's chain.
    pub versions_live: u64,
    /// Versions unlinked from their chain (superseded and pruned, or evicted
    /// by the `max_versions` ceiling) over the engine's lifetime.
    pub versions_retired: u64,
    /// Retired versions whose storage was actually released or recycled
    /// through the arena. `retired - reclaimed` versions sit in thread-local
    /// arena pools awaiting reuse.
    pub versions_reclaimed: u64,
    /// Approximate bytes of version metadata held by live versions plus
    /// pooled arena nodes (a lower bound: payload bytes are workload-owned).
    pub arena_bytes: u64,
    /// Distance, in the time base's raw units, between the time-base reading
    /// taken at the last watermark advance and the watermark itself — how far
    /// reclamation trails the present. 0 until the first advance.
    pub watermark_lag: u64,
}

impl MemoryStats {
    /// Merge another sample, keeping the element-wise maximum (see the type
    /// docs for why gauges must not be summed).
    pub fn merge(&mut self, other: &MemoryStats) {
        self.versions_live = self.versions_live.max(other.versions_live);
        self.versions_retired = self.versions_retired.max(other.versions_retired);
        self.versions_reclaimed = self.versions_reclaimed.max(other.versions_reclaimed);
        self.arena_bytes = self.arena_bytes.max(other.arena_bytes);
        self.watermark_lag = self.watermark_lag.max(other.watermark_lag);
    }
}

impl fmt::Display for MemoryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "live={} retired={} reclaimed={} arena-bytes={} wm-lag={}",
            self.versions_live,
            self.versions_retired,
            self.versions_reclaimed,
            self.arena_bytes,
            self.watermark_lag
        )
    }
}

/// The statistics surface shared by every engine. Engine-specific detail
/// (fine-grained abort reasons, helping) stays on the engines' native stats
/// types; this is the common denominator the harness aggregates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Committed update transactions.
    pub commits: u64,
    /// Committed read-only transactions.
    pub ro_commits: u64,
    /// Aborted transaction attempts (all causes).
    pub aborts: u64,
    /// Aborts broken down by the cross-engine [`AbortClass`] taxonomy. For
    /// engine-produced stats `validation + no_version + contention ==
    /// aborts`; the service front-end additionally records admission sheds
    /// under `overload` (those are rejected requests, not transaction
    /// attempts, so they do not count into `aborts`).
    pub abort_reasons: AbortReasons,
    /// Transaction-body re-executions after an abort.
    pub retries: u64,
    /// Transactional object reads.
    pub reads: u64,
    /// Transactional object writes.
    pub writes: u64,
    /// Full read-set (re)validations performed. For value-based engines
    /// (NOrec, the validation STM) this is the dominant consistency cost;
    /// for time-based engines it counts snapshot extensions / commit-time
    /// read-set checks. Zero means consistency was established by
    /// timestamps alone.
    pub validations: u64,
    /// Revalidations that failed and doomed the attempt — the conflicts the
    /// validation work actually caught.
    pub revalidation_failures: u64,
    /// Read-set entries examined across all validations — the linear factor
    /// in validation cost ("the validation overhead grows linearly with the
    /// number of objects a transaction has read so far", §1).
    pub validated_entries: u64,
    /// Shared-class commit timestamps from the time base's arbitration
    /// (GV4 pass-on-failed-CAS — winners included, since losers adopt
    /// their values — and GV5 read-derived values) instead of exclusively
    /// owned ones. Zero on bases whose commit times are globally unique
    /// (shared counter, block) and on value-based engines.
    pub shared_commit_ts: u64,
    /// Committed update transactions that touched objects on two or more
    /// shards and therefore escalated to the cross-shard commit protocol
    /// (per-shard commit-timestamp acquisition before the atomic
    /// status-word publish). Always zero on unsharded engines.
    pub cross_shard_commits: u64,
    /// Version-store memory gauges sampled from the engine after the run
    /// (see [`MemoryStats`]); all zeros for per-thread snapshots and for
    /// engines without a managed version store.
    pub memory: MemoryStats,
}

impl EngineStats {
    /// Total commits (update + read-only).
    pub fn total_commits(&self) -> u64 {
        self.commits + self.ro_commits
    }

    /// Aborts per commit (0 when nothing committed).
    pub fn abort_ratio(&self) -> f64 {
        let c = self.total_commits();
        if c == 0 {
            0.0
        } else {
            self.aborts as f64 / c as f64
        }
    }

    /// Full read-set validations per commit (0 when nothing committed) —
    /// the value-validation cost metric the harness reports per engine.
    pub fn validations_per_commit(&self) -> f64 {
        let c = self.total_commits();
        if c == 0 {
            0.0
        } else {
            self.validations as f64 / c as f64
        }
    }

    /// Shared (adopted) commit timestamps per update commit — how often the
    /// base's arbitration tricks actually fired (0 when nothing committed).
    pub fn shared_ts_per_commit(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.shared_commit_ts as f64 / self.commits as f64
        }
    }

    /// Cross-shard commits per update commit — how often transactions
    /// actually spanned shards and escalated to the cross-shard protocol
    /// (0 when nothing committed, and on unsharded engines).
    pub fn cross_shard_per_commit(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.cross_shard_commits as f64 / self.commits as f64
        }
    }

    /// Merge another thread's counters into this one.
    pub fn merge(&mut self, other: &EngineStats) {
        self.commits += other.commits;
        self.ro_commits += other.ro_commits;
        self.aborts += other.aborts;
        self.abort_reasons.merge(&other.abort_reasons);
        self.retries += other.retries;
        self.reads += other.reads;
        self.writes += other.writes;
        self.validations += other.validations;
        self.revalidation_failures += other.revalidation_failures;
        self.validated_entries += other.validated_entries;
        self.shared_commit_ts += other.shared_commit_ts;
        self.cross_shard_commits += other.cross_shard_commits;
        self.memory.merge(&other.memory);
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "commits={} (ro={}) aborts={} [{}] retries={} reads={} writes={} \
             validations={} (failed={}, entries={}) shared-ts={} xshard={} mem[{}]",
            self.total_commits(),
            self.ro_commits,
            self.aborts,
            self.abort_reasons,
            self.retries,
            self.reads,
            self.writes,
            self.validations,
            self.revalidation_failures,
            self.validated_entries,
            self.shared_commit_ts,
            self.cross_shard_commits,
            self.memory
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_and_ratios() {
        let mut a = EngineStats {
            commits: 2,
            aborts: 1,
            ..Default::default()
        };
        let b = EngineStats {
            commits: 2,
            ro_commits: 4,
            aborts: 3,
            abort_reasons: AbortReasons {
                validation: 2,
                contention: 1,
                ..Default::default()
            },
            validations: 6,
            revalidation_failures: 2,
            validated_entries: 18,
            shared_commit_ts: 2,
            cross_shard_commits: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.total_commits(), 8);
        assert_eq!(a.aborts, 4);
        assert_eq!(a.abort_reasons.validation, 2);
        assert_eq!(a.abort_reasons.contention, 1);
        assert_eq!(a.abort_reasons.total(), 3);
        assert_eq!(a.abort_ratio(), 0.5);
        assert_eq!(a.validations, 6);
        assert_eq!(a.revalidation_failures, 2);
        assert_eq!(a.validated_entries, 18);
        assert_eq!(a.shared_commit_ts, 2);
        assert_eq!(a.cross_shard_commits, 3);
        assert_eq!(a.validations_per_commit(), 0.75);
        assert_eq!(a.shared_ts_per_commit(), 0.5);
        assert_eq!(a.cross_shard_per_commit(), 0.75);
        assert!(a.to_string().contains("commits=8"));
        assert!(a
            .to_string()
            .contains("validations=6 (failed=2, entries=18) shared-ts=2"));
    }

    #[test]
    fn abort_reasons_record_and_render() {
        let mut r = AbortReasons::default();
        r.record(AbortClass::Validation);
        r.record(AbortClass::Validation);
        r.record(AbortClass::NoVersion);
        r.record(AbortClass::Overload);
        assert_eq!(r.get(AbortClass::Validation), 2);
        assert_eq!(r.get(AbortClass::NoVersion), 1);
        assert_eq!(r.get(AbortClass::Contention), 0);
        assert_eq!(r.get(AbortClass::Overload), 1);
        assert_eq!(r.total(), 4);
        assert_eq!(r.to_string(), "2/1/0/1");
        let mut labels: Vec<_> = AbortClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), AbortClass::ALL.len());
    }

    #[test]
    fn memory_stats_merge_keeps_max_not_sum() {
        let mut a = MemoryStats {
            versions_live: 10,
            versions_retired: 5,
            versions_reclaimed: 3,
            arena_bytes: 640,
            watermark_lag: 2,
        };
        let b = MemoryStats {
            versions_live: 4,
            versions_retired: 9,
            versions_reclaimed: 9,
            arena_bytes: 128,
            watermark_lag: 7,
        };
        a.merge(&b);
        assert_eq!(a.versions_live, 10, "gauges merge by max, not sum");
        assert_eq!(a.versions_retired, 9);
        assert_eq!(a.versions_reclaimed, 9);
        assert_eq!(a.arena_bytes, 640);
        assert_eq!(a.watermark_lag, 7);
        let shown = a.to_string();
        assert!(shown.contains("live=10"));
        assert!(shown.contains("wm-lag=7"));
    }

    #[test]
    fn engine_stats_render_memory_gauges() {
        let s = EngineStats {
            commits: 1,
            memory: MemoryStats {
                versions_live: 3,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(s.to_string().contains("mem[live=3"));
    }

    #[test]
    fn zero_commit_ratio_is_zero() {
        let s = EngineStats {
            aborts: 7,
            ..Default::default()
        };
        assert_eq!(s.abort_ratio(), 0.0);
        assert_eq!(s.validations_per_commit(), 0.0);
    }
}
