//! Discrete-event model of the paper's SGI Altix 3700 testbed for Figure 2.
//!
//! The reproduction host has 2 hardware threads; the paper's headline result
//! (shared counter flattens, MMTimer scales linearly up to 16 CPUs) needs 16
//! processors. Per the substitution policy (DESIGN.md §3) we model the
//! testbed: each simulated CPU executes update transactions back-to-back;
//! the only *shared* resource is the counter's cache line, modeled as a
//! serially reusable resource with a transfer latency — exactly the physics
//! that limits the counter in the paper ("update transactions typically
//! update the counter, which results in cache misses for all concurrent
//! transactions").
//!
//! Cost model per transaction (all parameters calibrated against the paper's
//! single-thread throughput, see `AltixParams::paper_calibrated`):
//!
//! ```text
//! getTime (time-base read)  +  k · access_ns  +  overhead_ns  +  getNewTS
//! ```
//!
//! With the **counter** time base, both time-base operations serialize on
//! the counter line (remote transfer unless the same CPU accessed it last).
//! With the **MMTimer** time base, both cost a fixed uncontended register
//! read. The simulator is deterministic and runs in microseconds of host
//! time.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which time base the simulated STM uses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimTimeBase {
    /// Shared integer counter behind a ccNUMA interconnect.
    Counter {
        /// Cache-line transfer cost when another CPU accessed it last (ns).
        remote_ns: f64,
        /// Cost when the same CPU accessed it last (ns).
        local_ns: f64,
    },
    /// Synchronized hardware clock: fixed-cost uncontended reads.
    Clock {
        /// Register read cost (ns) — 7.5 MMTimer ticks ≈ 375 ns.
        read_ns: f64,
    },
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct AltixParams {
    /// Per-object STM access cost (open, clone, bookkeeping), ns.
    pub access_ns: f64,
    /// Fixed per-transaction overhead outside accesses and time base, ns.
    pub overhead_ns: f64,
    /// Simulated duration, ns of virtual time.
    pub duration_ns: f64,
}

impl AltixParams {
    /// Calibrated so the single-thread points of Figure 2 land near the
    /// paper's values (~0.55 M tx/s with the counter and ~0.45 M tx/s with
    /// the MMTimer at 10 accesses).
    pub fn paper_calibrated() -> Self {
        AltixParams {
            access_ns: 150.0,
            overhead_ns: 200.0,
            duration_ns: 20_000_000.0,
        }
    }

    /// The counter model calibrated to the paper's plateau (~1.5 M tx/s for
    /// short transactions on 16 CPUs ⇒ ≈ 330 ns per serialized counter
    /// access, two accesses per transaction).
    pub fn paper_counter() -> SimTimeBase {
        SimTimeBase::Counter {
            remote_ns: 330.0,
            local_ns: 5.0,
        }
    }

    /// The MMTimer model: 7.5 ticks at 20 MHz per read.
    pub fn paper_mmtimer() -> SimTimeBase {
        SimTimeBase::Clock { read_ns: 375.0 }
    }
}

/// State of the serially-reusable counter cache line.
struct Line {
    free_at: f64,
    owner: usize,
}

/// Result of one simulated configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimPoint {
    /// Simulated CPUs.
    pub cpus: usize,
    /// Accesses per transaction.
    pub accesses: usize,
    /// Committed transactions.
    pub commits: u64,
    /// Throughput in millions of transactions per second.
    pub mtx_per_sec: f64,
}

/// f64 ordering key for the event heap.
#[derive(PartialEq, PartialOrd)]
struct F(f64);
impl Eq for F {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for F {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("no NaN in sim times")
    }
}

/// Transaction phase whose next step is a time-base access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Phase {
    /// About to perform the start-of-transaction `getTime`.
    Start,
    /// About to perform the commit-time `getNewTS`.
    Commit,
}

/// Simulate `cpus` processors running `accesses`-object update transactions
/// for the configured duration on the given time base.
///
/// Events are processed at *time-base access* granularity so the counter
/// line is granted in global access-time order — a transaction's commit
/// access queues behind other CPUs' earlier accesses, exactly like the real
/// coherence protocol.
pub fn simulate(cpus: usize, accesses: usize, tb: SimTimeBase, p: AltixParams) -> SimPoint {
    assert!(cpus >= 1 && accesses >= 1);
    let mut line = Line {
        free_at: 0.0,
        owner: usize::MAX,
    };
    let mut commits = 0u64;
    let body_ns = accesses as f64 * p.access_ns + p.overhead_ns;
    // Min-heap of (next access time, cpu, phase).
    let mut heap: BinaryHeap<Reverse<(F, usize, Phase)>> = (0..cpus)
        .map(|c| Reverse((F(c as f64 * 1.0), c, Phase::Start))) // 1 ns stagger
        .collect();

    let mut tb_access = |t: f64, cpu: usize| -> f64 {
        match tb {
            SimTimeBase::Clock { read_ns } => t + read_ns,
            SimTimeBase::Counter {
                remote_ns,
                local_ns,
            } => {
                // Wait for the line, transfer it if remote, own it.
                let start = t.max(line.free_at);
                let cost = if line.owner == cpu {
                    local_ns
                } else {
                    remote_ns
                };
                line.free_at = start + cost;
                line.owner = cpu;
                start + cost
            }
        }
    };

    while let Some(Reverse((F(t), cpu, phase))) = heap.pop() {
        if t >= p.duration_ns {
            continue;
        }
        match phase {
            Phase::Start => {
                let t1 = tb_access(t, cpu);
                heap.push(Reverse((F(t1 + body_ns), cpu, Phase::Commit)));
            }
            Phase::Commit => {
                let t3 = tb_access(t, cpu);
                commits += 1;
                heap.push(Reverse((F(t3), cpu, Phase::Start)));
            }
        }
    }

    SimPoint {
        cpus,
        accesses,
        commits,
        mtx_per_sec: commits as f64 / p.duration_ns * 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> AltixParams {
        AltixParams {
            duration_ns: 5_000_000.0,
            ..AltixParams::paper_calibrated()
        }
    }

    #[test]
    fn clock_scales_linearly() {
        let tb = AltixParams::paper_mmtimer();
        let t1 = simulate(1, 10, tb, params()).mtx_per_sec;
        let t16 = simulate(16, 10, tb, params()).mtx_per_sec;
        let speedup = t16 / t1;
        assert!(
            speedup > 14.0,
            "MMTimer must scale nearly linearly to 16 CPUs (got {speedup:.1}x)"
        );
    }

    #[test]
    fn counter_plateaus_for_short_transactions() {
        let tb = AltixParams::paper_counter();
        let t8 = simulate(8, 10, tb, params()).mtx_per_sec;
        let t16 = simulate(16, 10, tb, params()).mtx_per_sec;
        assert!(
            t16 < t8 * 1.25,
            "counter must plateau: 8cpu={t8:.2} 16cpu={t16:.2} Mtx/s"
        );
        // And the plateau sits near the serialization bound: two accesses of
        // 330 ns per transaction -> ~1.5 M tx/s.
        assert!(
            t16 > 1.0 && t16 < 2.2,
            "plateau at ~1.5 M tx/s, got {t16:.2}"
        );
    }

    #[test]
    fn crossover_counter_wins_single_threaded_clock_wins_at_16() {
        // Figure 2's qualitative content at 10 accesses.
        let c = AltixParams::paper_counter();
        let m = AltixParams::paper_mmtimer();
        let c1 = simulate(1, 10, c, params()).mtx_per_sec;
        let m1 = simulate(1, 10, m, params()).mtx_per_sec;
        assert!(
            c1 > m1,
            "single-threaded: MMTimer's read cost hurts ({c1:.2} vs {m1:.2})"
        );
        let c16 = simulate(16, 10, c, params()).mtx_per_sec;
        let m16 = simulate(16, 10, m, params()).mtx_per_sec;
        assert!(
            m16 > 2.5 * c16,
            "16 CPUs: clock must win big ({m16:.2} vs {c16:.2})"
        );
    }

    #[test]
    fn counter_influence_shrinks_for_large_transactions() {
        // §4.2: "The influence of the shared counter decreases when
        // transactions get larger".
        let c = AltixParams::paper_counter();
        let m = AltixParams::paper_mmtimer();
        let ratio_10 =
            simulate(16, 10, m, params()).mtx_per_sec / simulate(16, 10, c, params()).mtx_per_sec;
        let ratio_100 =
            simulate(16, 100, m, params()).mtx_per_sec / simulate(16, 100, c, params()).mtx_per_sec;
        assert!(
            ratio_100 < ratio_10,
            "clock advantage must shrink with tx size ({ratio_10:.2} -> {ratio_100:.2})"
        );
    }

    #[test]
    fn deterministic() {
        let tb = AltixParams::paper_counter();
        let a = simulate(6, 50, tb, params());
        let b = simulate(6, 50, tb, params());
        assert_eq!(a.commits, b.commits);
    }
}
