//! Shared CLI argument helpers: the `N` / `A..B` range syntax every sweep
//! flag (`--threads`, `--rate`) speaks, parsed in exactly one place.

/// A parsed `N` or `A..B` argument. A single value is a degenerate range
/// (`lo == hi`), so callers sweep unconditionally and single-point runs
/// fall out for free.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RangeSpec {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl RangeSpec {
    /// Parse `"N"` (single point) or `"A..B"` (inclusive sweep). Bounds
    /// must be positive and ordered (`A <= B`).
    pub fn parse(s: &str) -> Option<RangeSpec> {
        let (lo, hi) = match s.split_once("..") {
            Some((a, b)) => (a.parse::<f64>().ok()?, b.parse::<f64>().ok()?),
            None => {
                let v = s.parse::<f64>().ok()?;
                (v, v)
            }
        };
        (lo.is_finite() && hi.is_finite() && lo > 0.0 && hi >= lo).then_some(RangeSpec { lo, hi })
    }

    /// Whether this is a genuine sweep (`A..B` with `A < B`).
    pub fn is_sweep(&self) -> bool {
        self.lo < self.hi
    }

    /// Every integer in the inclusive range — the `--threads 1..8` shape.
    /// Bounds are rounded to the nearest integer; `lo` clamps to at least 1.
    pub fn usize_values(&self) -> Vec<usize> {
        let lo = (self.lo.round() as usize).max(1);
        let hi = (self.hi.round() as usize).max(lo);
        (lo..=hi).collect()
    }

    /// `points` geometrically spaced values from `lo` to `hi` inclusive —
    /// the `--rate 1000..1000000` saturation-sweep shape, where interesting
    /// behaviour (the knee) lives on a log axis. A degenerate range or
    /// `points <= 1` yields the single value `lo`.
    pub fn geometric(&self, points: usize) -> Vec<f64> {
        if !self.is_sweep() || points <= 1 {
            return vec![self.lo];
        }
        let ratio = (self.hi / self.lo).powf(1.0 / (points - 1) as f64);
        (0..points)
            .map(|i| {
                if i == points - 1 {
                    self.hi // land exactly on the endpoint
                } else {
                    self.lo * ratio.powi(i as i32)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_and_range() {
        assert_eq!(RangeSpec::parse("8"), Some(RangeSpec { lo: 8.0, hi: 8.0 }));
        assert_eq!(
            RangeSpec::parse("1..8"),
            Some(RangeSpec { lo: 1.0, hi: 8.0 })
        );
        assert_eq!(
            RangeSpec::parse("2500.5..10000"),
            Some(RangeSpec {
                lo: 2500.5,
                hi: 10000.0
            })
        );
        assert!(!RangeSpec::parse("4").unwrap().is_sweep());
        assert!(RangeSpec::parse("4..5").unwrap().is_sweep());
    }

    #[test]
    fn rejects_malformed_and_unordered() {
        for bad in ["", "x", "0", "-3", "8..2", "1..x", "..", "1..", "..5"] {
            assert_eq!(RangeSpec::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn usize_values_are_the_inclusive_integers() {
        assert_eq!(
            RangeSpec::parse("1..4").unwrap().usize_values(),
            [1, 2, 3, 4]
        );
        assert_eq!(RangeSpec::parse("6").unwrap().usize_values(), [6]);
    }

    #[test]
    fn geometric_hits_both_endpoints_and_grows() {
        let pts = RangeSpec::parse("1000..8000").unwrap().geometric(4);
        assert_eq!(pts.len(), 4);
        assert!((pts[0] - 1000.0).abs() < 1e-9);
        assert!((pts[3] - 8000.0).abs() < 1e-9);
        for w in pts.windows(2) {
            assert!(w[1] > w[0], "geometric points must be increasing");
        }
        // Equal ratio between successive points.
        let r0 = pts[1] / pts[0];
        let r1 = pts[2] / pts[1];
        assert!((r0 - r1).abs() < 1e-9);
    }

    #[test]
    fn geometric_degenerates_to_single_point() {
        assert_eq!(RangeSpec::parse("5000").unwrap().geometric(7), vec![5000.0]);
        assert_eq!(
            RangeSpec::parse("1000..2000").unwrap().geometric(1),
            vec![1000.0]
        );
    }
}
