//! **EXP-CM** — §2.3: contention-manager ablation.
//!
//! The paper delegates write-write conflict resolution to a "configurable
//! module" (the DSTM contention-manager design). This ablation quantifies the
//! policy choice on a deliberately conflict-heavy workload: a small bank with
//! no read-only transactions, so nearly every pair of transactions collides.

use lsa_harness::{f3, measure_window, run_for, Table};
use lsa_stm::cm::{Aggressive, ContentionManager, Karma, Polite, Suicide, TimestampCm};
use lsa_stm::{Stm, StmConfig};
use lsa_time::perfect::PerfectClock;
use lsa_workloads::{BankConfig, BankWorkload};

fn run_policy(cm: impl ContentionManager, threads: usize) -> (f64, f64) {
    let window = measure_window(250);
    let wl = BankWorkload::new(
        Stm::with_cm(PerfectClock::new(), StmConfig::default(), cm),
        BankConfig {
            accounts: 8,
            initial: 1_000,
            audit_percent: 0,
        },
    );
    let out = run_for(threads, window, |i| wl.worker(i));
    assert_eq!(
        wl.quiescent_total(),
        wl.expected_total(),
        "invariant broken!"
    );
    (out.tx_per_sec(), out.abort_ratio())
}

fn main() {
    let threads = 4usize;
    let mut t = Table::new(
        format!("EXP-CM: high-conflict bank (8 accounts, 0% audits, {threads} threads)"),
        &["policy", "tx/s", "aborts/commit"],
    );
    let rows: Vec<(&str, (f64, f64))> = vec![
        ("polite (default)", run_policy(Polite::default(), threads)),
        ("aggressive", run_policy(Aggressive, threads)),
        ("suicide", run_policy(Suicide, threads)),
        ("karma", run_policy(Karma, threads)),
        ("timestamp", run_policy(TimestampCm::default(), threads)),
    ];
    for (name, (tps, ratio)) in rows {
        t.row(vec![name.to_string(), format!("{tps:.0}"), f3(ratio)]);
    }
    t.print();
    println!(
        "note: timestamp requires a global birth counter (needs_birth) — the shared \
         state the default policy deliberately avoids (see lsa_stm::cm docs)."
    );
}
