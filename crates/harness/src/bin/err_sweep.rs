//! **EXP-ERR** — §4.3: the effect of clock synchronization errors.
//!
//! "Synchronization errors shrink the object versions' validity ranges …
//! creating gaps of size 2·dev between versions, which can reduce the
//! probability that LSA-RT finds an intersection between the validity ranges
//! of object versions." For multi-version STMs both ends of every range
//! shrink; for single-version STMs only the beginnings do.
//!
//! This sweep runs the bank workload (transfers + long read-only audits) on
//! externally synchronized clocks, sweeping the deviation bound `dev`, in
//! both multi-version (8) and single-version (1) configurations, and reports
//! throughput, abort ratio and the abort breakdown.

use lsa_harness::{f2, f3, measure_window, run_for, Table};
use lsa_stm::{AbortReason, Stm, StmConfig};
use lsa_time::external::{ExternalClock, OffsetPolicy};
use lsa_workloads::{BankConfig, BankWorkload};

fn main() {
    let window = measure_window(250);
    let threads = 4usize;
    let devs_ns: [u64; 5] = [0, 1_000, 10_000, 100_000, 1_000_000];

    for (label, versions) in [
        ("multi-version (8)", 8usize),
        ("single-version (1)", 1usize),
    ] {
        let mut t = Table::new(
            format!("EXP-ERR: bank workload on external clocks — {label}"),
            &[
                "dev (us)",
                "tx/s",
                "aborts/commit",
                "snapshot",
                "no-version",
                "validation",
            ],
        );
        for &dev in &devs_ns {
            let tb = ExternalClock::with_policy(dev, OffsetPolicy::Alternating);
            let mut cfg = StmConfig::multi_version(versions);
            // Keep extensions on in both modes so the only variable is the
            // version history depth.
            cfg.extend_on_read = true;
            let wl = BankWorkload::new(
                Stm::with_config(tb, cfg),
                BankConfig {
                    accounts: 48,
                    initial: 1_000,
                    audit_percent: 30,
                },
            );
            // Collect abort breakdowns through per-worker stats.
            let stats = std::sync::Mutex::new(lsa_stm::TxnStats::default());
            let out = run_for(threads, window, |i| StatsTap {
                inner: wl.worker(i),
                sink: &stats,
            });
            let agg = *stats.lock().unwrap();
            t.row(vec![
                f2(dev as f64 / 1_000.0),
                format!("{:.0}", out.tx_per_sec()),
                f3(out.abort_ratio()),
                agg.aborts_for(AbortReason::Snapshot).to_string(),
                agg.aborts_for(AbortReason::NoVersion).to_string(),
                agg.aborts_for(AbortReason::Validation).to_string(),
            ]);
            assert_eq!(
                wl.quiescent_total(),
                wl.expected_total(),
                "invariant broken!"
            );
        }
        t.print();
    }
    println!(
        "expected shape (S4.3): abort ratio grows with dev; the multi-version \
         configuration suffers on BOTH range ends (old snapshots die sooner), \
         the single-version one only at version beginnings."
    );
}

/// Wraps an LSA-RT bank worker and merges its *native* stats (with the
/// abort-reason breakdown the engine-generic surface deliberately omits)
/// into a sink when dropped. Reaches the native `TxnStats` through
/// [`lsa_workloads::BankWorker::handle`].
struct StatsTap<'a, B: lsa_time::TimeBase> {
    inner: lsa_workloads::BankWorker<Stm<B>>,
    sink: &'a std::sync::Mutex<lsa_stm::TxnStats>,
}

impl<B: lsa_time::TimeBase> lsa_harness::BenchWorker for StatsTap<'_, B> {
    fn step(&mut self) {
        self.inner.step();
    }

    fn worker_stats(&self) -> lsa_engine::EngineStats {
        self.inner.stats()
    }
}

impl<B: lsa_time::TimeBase> Drop for StatsTap<'_, B> {
    fn drop(&mut self) {
        self.sink.lock().unwrap().merge(self.inner.handle().stats());
    }
}
