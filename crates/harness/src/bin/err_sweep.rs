//! **EXP-ERR** — §4.3: the effect of clock synchronization errors.
//!
//! "Synchronization errors shrink the object versions' validity ranges …
//! creating gaps of size 2·dev between versions, which can reduce the
//! probability that LSA-RT finds an intersection between the validity ranges
//! of object versions." For multi-version STMs both ends of every range
//! shrink; for single-version STMs only the beginnings do.
//!
//! This sweep runs the bank workload (transfers + long read-only audits) on
//! externally synchronized clocks, sweeping the deviation bound `dev`, in
//! both multi-version (8) and single-version (1) configurations. Every cell
//! is a parameterized registry entry
//! ([`lsa_harness::registry::lsa_external_entry`]) driven through the same
//! engine-generic runner as the `matrix` binary; the reported columns are
//! the registry's shared statistics surface — including the §4.3
//! snapshot/no-version abort split, read straight from the cross-engine
//! `EngineStats::abort_reasons` taxonomy (validations = snapshot
//! extensions for LSA). No per-engine hand-wiring: any engine mapped onto
//! the taxonomy reports the same columns.

use lsa_harness::registry::{lsa_external_entry, Workload};
use lsa_harness::{f2, f3, measure_window, Table};
use lsa_workloads::BankConfig;

fn main() {
    let window = measure_window(250);
    let threads = 4usize;
    let devs_ns: [u64; 5] = [0, 1_000, 10_000, 100_000, 1_000_000];

    for (label, versions) in [
        ("multi-version (8)", 8usize),
        ("single-version (1)", 1usize),
    ] {
        let mut t = Table::new(
            format!("EXP-ERR: bank workload on external clocks — {label}"),
            &[
                "dev (us)",
                "cell",
                "tx/s",
                "aborts/commit",
                "extensions/commit",
                "validation aborts",
                "no-version aborts",
                "contention aborts",
            ],
        );
        for &dev in &devs_ns {
            // One parameterized registry entry per cell; the bank invariant
            // is asserted inside the generic runner after every run.
            let entry = lsa_external_entry(dev, versions);
            let wl = Workload::Bank(BankConfig {
                accounts: 48,
                initial: 1_000,
                audit_percent: 30,
            });
            let out = entry.run(&wl, threads, window);
            t.row(vec![
                f2(dev as f64 / 1_000.0),
                entry.label(),
                format!("{:.0}", out.tx_per_sec()),
                f3(out.abort_ratio()),
                f3(out.stats.validations_per_commit()),
                out.stats.abort_reasons.validation.to_string(),
                out.stats.abort_reasons.no_version.to_string(),
                out.stats.abort_reasons.contention.to_string(),
            ]);
        }
        t.print();
    }
    println!(
        "expected shape (S4.3): abort ratio grows with dev; the multi-version \
         configuration suffers on BOTH range ends (old snapshots die sooner), \
         the single-version one only at version beginnings. the abort columns \
         split by the generic taxonomy: validation (snapshot collapse + \
         commit-time validation) vs no-version (empty validity-range \
         intersection, the multi-version signature) vs contention."
    );
}
