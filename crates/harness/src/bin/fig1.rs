//! **Figure 1** — "MMTimer synchronization errors and offsets": per-round
//! `max(abs(offset))`, `max(error)` and `max(error + abs(offset))` measured
//! by exchanging timestamps through shared memory (§4.1 methodology).
//!
//! Three runs:
//! 1. the simulated MMTimer (a perfectly synchronized clock — offsets must
//!    stay below the measurement error, as the paper observes),
//! 2. an externally synchronized ensemble with injected bounded offsets
//!    (offsets dominate, demonstrating what the measurement detects),
//! 3. the software clock-synchronization simulator (§3.2): what deviation
//!    bound software sync can achieve — the `dev` an `ExternalClock` would
//!    advertise.
//!
//! The paper's run is 4 hours at one round per 0.1 s; this scales the round
//! count down (`LSA_FIG1_ROUNDS` overrides, default 40).

use lsa_harness::{f2, Table};
use lsa_time::external::{ExternalClock, OffsetPolicy};
use lsa_time::hardware::HardwareClock;
use lsa_time::sync_measure::{measure, summarize, SyncMeasureConfig};
use lsa_time::sync_sim::{simulate, SyncSimConfig};
use std::time::Duration;

fn rounds_cfg() -> SyncMeasureConfig {
    let rounds = std::env::var("LSA_FIG1_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    SyncMeasureConfig {
        probes: 3,
        rounds,
        round_interval: Duration::from_millis(10),
    }
}

fn main() {
    let cfg = rounds_cfg();

    // --- Run 1: MMTimer (values in MMTimer ticks, like the paper). ---
    let tb = HardwareClock::mmtimer_free();
    let rounds = measure(&tb, &cfg);
    let mut t = Table::new(
        "Figure 1a: MMTimer synchronization errors and offsets (ticks @ 20 MHz)",
        &[
            "round",
            "max(abs(offset))",
            "max(error)",
            "max(error+abs(offset))",
        ],
    );
    for r in rounds.iter().step_by((rounds.len() / 20).max(1)) {
        t.row(vec![
            r.round.to_string(),
            r.max_abs_offset.to_string(),
            r.max_error.to_string(),
            r.max_err_plus_abs_offset.to_string(),
        ]);
    }
    t.print();
    let s = summarize(&rounds);
    println!(
        "summary: worst offset={} ticks, worst error={} ticks, bound estimate={} ticks",
        s.worst_abs_offset, s.worst_error, s.bound_estimate
    );
    println!(
        "paper's observation to verify: offsets masked by errors -> {}\n",
        if s.worst_abs_offset <= s.worst_error {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );

    // --- Run 2: externally synchronized clocks with injected offsets. ---
    let dev_ns = 50_000; // 50 µs
    let tb = ExternalClock::with_policy(dev_ns, OffsetPolicy::Alternating);
    let rounds = measure(&tb, &cfg);
    let s = summarize(&rounds);
    let mut t = Table::new(
        format!("Figure 1b: externally synchronized clocks, dev = {dev_ns} ns (values in ns)"),
        &["metric", "value"],
    );
    t.row(vec![
        "worst max(abs(offset))".into(),
        s.worst_abs_offset.to_string(),
    ]);
    t.row(vec!["worst max(error)".into(), s.worst_error.to_string()]);
    t.row(vec!["bound estimate".into(), s.bound_estimate.to_string()]);
    t.row(vec![
        "injected bound (2*dev)".into(),
        (2 * dev_ns).to_string(),
    ]);
    t.print();

    // --- Run 3: software clock synchronization (deterministic simulator). ---
    let sim_cfg = SyncSimConfig::default();
    let out = simulate(&sim_cfg);
    let mut t = Table::new(
        "Figure 1c: software clock sync simulation (Cristian-style, microseconds)",
        &["round", "max(abs(offset))", "max(error)"],
    );
    for r in out.rounds.iter().step_by((out.rounds.len() / 10).max(1)) {
        t.row(vec![
            r.round.to_string(),
            f2(r.max_abs_offset_us),
            f2(r.max_error_us),
        ]);
    }
    t.print();
    println!(
        "achievable dev for ExternalClock: {:.1} us (drift {} ppm, resync every {} s)",
        out.achievable_dev_us, sim_cfg.max_drift_ppm, sim_cfg.sync_interval_s
    );
}
