//! **Figure 2** — "Overhead of time bases for update transactions of
//! different size": throughput (10⁶ tx/s) vs thread count for the shared
//! integer counter vs the MMTimer, panels at 10/50/100 accesses.
//!
//! Two modes:
//! * the **modeled Altix** (default): the discrete-event model of the paper's
//!   16-CPU ccNUMA testbed (see DESIGN.md §3 — the documented substitution
//!   for hardware this host does not have), which reproduces the full curves;
//! * `--real`: the actual LSA-RT implementation on real threads of this host
//!   with the [`lsa_time::numa::NumaCounter`] latency model vs the simulated
//!   MMTimer — a sanity check limited by the host's core count.
//!
//! Output: one table per panel with the same series the paper plots.

use lsa_harness::altix_sim::{simulate, AltixParams};
use lsa_harness::registry::{default_registry, find_entry, Workload};
use lsa_harness::{f3, measure_window, Table};
use lsa_workloads::DisjointConfig;

const THREADS: [usize; 7] = [1, 2, 4, 6, 8, 12, 16];
const PANELS: [usize; 3] = [10, 50, 100];

fn modeled_altix() {
    println!("FIG2 (modeled Altix 3700, discrete-event; DESIGN.md S3 substitution)\n");
    let params = AltixParams::paper_calibrated();
    for &accesses in &PANELS {
        let mut t = Table::new(
            format!("Figure 2 panel: {accesses} accesses — 10^6 tx/s"),
            &["threads", "shared-counter", "mmtimer", "mmtimer/counter"],
        );
        for &cpus in &THREADS {
            let c = simulate(cpus, accesses, AltixParams::paper_counter(), params);
            let m = simulate(cpus, accesses, AltixParams::paper_mmtimer(), params);
            t.row(vec![
                cpus.to_string(),
                f3(c.mtx_per_sec),
                f3(m.mtx_per_sec),
                f3(m.mtx_per_sec / c.mtx_per_sec),
            ]);
        }
        t.print();
    }
}

fn real_threads() {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "FIG2 (real threads on this host: {host} hardware threads; \
         points beyond {host} threads are oversubscribed)\n"
    );
    let window = measure_window(300);
    let threads: Vec<usize> = THREADS
        .iter()
        .copied()
        .filter(|&t| t <= host.max(2) * 2)
        .collect();
    // The figure's two series, straight from the engine registry — the same
    // cells the matrix sweeps, no hand-wired engine setup.
    let registry = default_registry();
    let counter = find_entry(&registry, "lsa-rt", "numa-altix")
        .expect("registry lost the lsa-rt(numa-altix) cell");
    let mmtimer =
        find_entry(&registry, "lsa-rt", "mmtimer").expect("registry lost the lsa-rt(mmtimer) cell");
    for &accesses in &PANELS {
        let mut t = Table::new(
            format!("Figure 2 (real) panel: {accesses} accesses — 10^6 tx/s"),
            &["threads", "numa-counter", "mmtimer", "mmtimer/counter"],
        );
        for &n in &threads {
            let wl = Workload::Disjoint(DisjointConfig {
                objects_per_thread: (accesses * 4).max(64),
                accesses_per_tx: accesses,
            });
            let c = counter.run(&wl, n, window);
            let m = mmtimer.run(&wl, n, window);
            t.row(vec![
                n.to_string(),
                f3(c.mtx_per_sec()),
                f3(m.mtx_per_sec()),
                f3(m.mtx_per_sec() / c.mtx_per_sec().max(1e-12)),
            ]);
        }
        t.print();
    }
}

fn main() {
    let real = std::env::args().any(|a| a == "--real");
    if real {
        real_threads();
    } else {
        modeled_altix();
        println!("(run with --real for the real-thread sanity check on this host)");
    }
}
