//! **Figure 2** — "Overhead of time bases for update transactions of
//! different size": throughput (10⁶ tx/s) vs thread count for the shared
//! integer counter vs the MMTimer, panels at 10/50/100 accesses.
//!
//! Two modes:
//! * the **modeled Altix** (default): the discrete-event model of the paper's
//!   16-CPU ccNUMA testbed (see DESIGN.md §3 — the documented substitution
//!   for hardware this host does not have), which reproduces the full curves;
//! * `--real`: the actual LSA-RT implementation on real threads of this host
//!   with the [`lsa_time::numa::NumaCounter`] latency model vs the simulated
//!   MMTimer — a sanity check limited by the host's core count.
//!
//! Output: one table per panel with the same series the paper plots.

use lsa_harness::altix_sim::{simulate, AltixParams};
use lsa_harness::{f3, measure_window, run_for, Table};
use lsa_stm::Stm;
use lsa_time::hardware::HardwareClock;
use lsa_time::numa::{NumaCounter, NumaModel};
use lsa_workloads::{DisjointConfig, DisjointWorkload};

const THREADS: [usize; 7] = [1, 2, 4, 6, 8, 12, 16];
const PANELS: [usize; 3] = [10, 50, 100];

fn modeled_altix() {
    println!("FIG2 (modeled Altix 3700, discrete-event; DESIGN.md S3 substitution)\n");
    let params = AltixParams::paper_calibrated();
    for &accesses in &PANELS {
        let mut t = Table::new(
            format!("Figure 2 panel: {accesses} accesses — 10^6 tx/s"),
            &["threads", "shared-counter", "mmtimer", "mmtimer/counter"],
        );
        for &cpus in &THREADS {
            let c = simulate(cpus, accesses, AltixParams::paper_counter(), params);
            let m = simulate(cpus, accesses, AltixParams::paper_mmtimer(), params);
            t.row(vec![
                cpus.to_string(),
                f3(c.mtx_per_sec),
                f3(m.mtx_per_sec),
                f3(m.mtx_per_sec / c.mtx_per_sec),
            ]);
        }
        t.print();
    }
}

fn real_threads() {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "FIG2 (real threads on this host: {host} hardware threads; \
         points beyond {host} threads are oversubscribed)\n"
    );
    let window = measure_window(300);
    let threads: Vec<usize> = THREADS
        .iter()
        .copied()
        .filter(|&t| t <= host.max(2) * 2)
        .collect();
    for &accesses in &PANELS {
        let mut t = Table::new(
            format!("Figure 2 (real) panel: {accesses} accesses — 10^6 tx/s"),
            &["threads", "numa-counter", "mmtimer", "mmtimer/counter"],
        );
        for &n in &threads {
            let cfg = DisjointConfig {
                objects_per_thread: (accesses * 4).max(64),
                accesses_per_tx: accesses,
            };
            let counter_wl =
                DisjointWorkload::new(Stm::new(NumaCounter::new(NumaModel::altix())), n, cfg);
            let c = run_for(n, window, |i| counter_wl.worker(i));
            let clock_wl = DisjointWorkload::new(Stm::new(HardwareClock::mmtimer()), n, cfg);
            let m = run_for(n, window, |i| clock_wl.worker(i));
            t.row(vec![
                n.to_string(),
                f3(c.mtx_per_sec()),
                f3(m.mtx_per_sec()),
                f3(m.mtx_per_sec() / c.mtx_per_sec().max(1e-12)),
            ]);
        }
        t.print();
    }
}

fn main() {
    let real = std::env::args().any(|a| a == "--real");
    if real {
        real_threads();
    } else {
        modeled_altix();
        println!("(run with --real for the real-thread sanity check on this host)");
    }
}
