//! **matrix** — the cross-engine sweep: one workload over every engine ×
//! time-base combination in the registry, from a single engine-generic code
//! path.
//!
//! ```sh
//! cargo run --release -p lsa-harness --bin matrix            # bank workload
//! cargo run --release -p lsa-harness --bin matrix -- disjoint
//! cargo run --release -p lsa-harness --bin matrix -- scan
//! cargo run --release -p lsa-harness --bin matrix -- intset
//! cargo run --release -p lsa-harness --bin matrix -- hashset
//! cargo run --release -p lsa-harness --bin matrix -- snapshot
//! cargo run --release -p lsa-harness --bin matrix -- bank --placement partitioned
//! cargo run --release -p lsa-harness --bin matrix -- bank --threads 8
//! cargo run --release -p lsa-harness --bin matrix -- bank --threads 1..8
//! cargo run --release -p lsa-harness --bin matrix -- bank --timebase gv4
//! ```
//!
//! `--timebase <substr>` keeps only rows whose time-base name contains the
//! given substring (e.g. `gv` selects the GV4 and GV5 arbitration rows).
//! `--threads A..B` sweeps every cell over the inclusive thread range and
//! prints one row per (cell, thread count) — the Figure-2-shaped scaling
//! view, with per-cell thread columns instead of per-base curves.
//! `--placement partitioned` pins bank account groups / disjoint thread
//! partitions shard-locally (`TxnEngine::new_var_on`) instead of the
//! default round-robin spreading — contrast the `xshard/commit` column
//! across the two placements on the `lsa-sharded` rows.
//! Honours `LSA_MEASURE_MS` (per-point window) and `LSA_CSV=1` like every
//! harness binary. Workload invariants (bank total, intset sortedness,
//! snapshot zero-sum) are asserted after every cell, so this doubles as a
//! cross-engine consistency smoke test. The `xshard/commit` column reports
//! how often transactions spanned object shards and escalated to the
//! sharded engine's cross-shard commit protocol (0 everywhere on unsharded
//! engines); `aborts v/nv/ct/ov` is the cross-engine abort-reason taxonomy
//! (validation / no-version / contention / overload). The trailing
//! `live-vers`/`arena-b`/`wm-lag` columns surface the version-store memory
//! gauges sampled after each run.

use lsa_harness::registry::{default_registry, Workload};
use lsa_harness::{f3, measure_window, RangeSpec, Table};
use lsa_workloads::{
    BankConfig, DisjointConfig, HashsetConfig, IntsetConfig, PlacementHint, ScanConfig,
    SnapshotConfig,
};

struct Args {
    workload: Workload,
    threads: Vec<usize>,
    placement: PlacementHint,
    timebase_filter: Option<String>,
}

fn usage_exit(context: &str) -> ! {
    eprintln!(
        "usage: matrix [bank|disjoint|scan|intset|hashset|snapshot] \
         [--threads N | --threads A..B] \
         [--placement spread|partitioned] [--timebase SUBSTR]   ({context})"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2)
        .max(1);
    let mut args = Args {
        workload: Workload::Bank(BankConfig::default()),
        threads: vec![default_threads],
        placement: PlacementHint::Spread,
        timebase_filter: None,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "bank" => args.workload = Workload::Bank(BankConfig::default()),
            "disjoint" => args.workload = Workload::Disjoint(DisjointConfig::default()),
            "scan" => args.workload = Workload::Scan(ScanConfig::default()),
            "intset" => args.workload = Workload::Intset(IntsetConfig::default()),
            "hashset" => args.workload = Workload::Hashset(HashsetConfig::default()),
            "snapshot" => args.workload = Workload::Snapshot(SnapshotConfig::default()),
            "--placement" => {
                i += 1;
                args.placement = match argv.get(i).and_then(|v| PlacementHint::parse(v)) {
                    Some(p) => p,
                    None => usage_exit("--placement needs spread or partitioned"),
                };
            }
            "--threads" => {
                i += 1;
                args.threads = match argv.get(i).and_then(|v| RangeSpec::parse(v)) {
                    Some(r) => r.usize_values(),
                    None => usage_exit("--threads needs N or A..B (A >= 1, B >= A)"),
                };
            }
            "--timebase" => {
                i += 1;
                args.timebase_filter = match argv.get(i) {
                    Some(s) => Some(s.clone()),
                    None => usage_exit("--timebase needs a substring"),
                };
            }
            other => usage_exit(&format!("got {other:?}")),
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let window = measure_window(200);
    let registry: Vec<_> = default_registry()
        .into_iter()
        .filter(|e| match &args.timebase_filter {
            Some(f) => e.time_base.contains(f.as_str()),
            None => true,
        })
        .collect();
    if registry.is_empty() {
        eprintln!(
            "no registry rows match --timebase {:?}",
            args.timebase_filter.as_deref().unwrap_or("")
        );
        std::process::exit(2);
    }

    let sweep = args.threads.len() > 1;
    println!(
        "MATRIX: {} workload, threads {}, {} ms/point, {} engine x time-base cells{}\n",
        args.workload.name(),
        if sweep {
            format!(
                "{}..{} (per-cell sweep)",
                args.threads[0],
                args.threads[args.threads.len() - 1]
            )
        } else {
            args.threads[0].to_string()
        },
        window.as_millis(),
        registry.len(),
        match &args.timebase_filter {
            Some(f) => format!(" (timebase filter: {f:?})"),
            None => String::new(),
        }
    );

    let mut t = Table::new(
        format!(
            "{} workload — throughput by engine and time base",
            args.workload.name()
        ),
        &[
            "engine",
            "time base",
            "shards",
            "threads",
            "placement",
            "tx/s",
            "aborts/commit",
            "aborts v/nv/ct/ov",
            "validations/commit",
            "reval failures",
            "shared-ts/commit",
            "xshard/commit",
            "live-vers",
            "arena-b",
            "wm-lag",
        ],
    );
    for entry in &registry {
        for &threads in &args.threads {
            let out = entry.run_placed(&args.workload, args.placement, threads, window);
            t.row(vec![
                entry.engine.clone(),
                entry.time_base.clone(),
                entry.shards.to_string(),
                threads.to_string(),
                args.placement.to_string(),
                format!("{:.0}", out.tx_per_sec()),
                f3(out.abort_ratio()),
                out.stats.abort_reasons.to_string(),
                f3(out.stats.validations_per_commit()),
                out.stats.revalidation_failures.to_string(),
                f3(out.stats.shared_ts_per_commit()),
                f3(out.stats.cross_shard_per_commit()),
                out.stats.memory.versions_live.to_string(),
                out.stats.memory.arena_bytes.to_string(),
                out.stats.memory.watermark_lag.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "every cell ran the SAME engine-generic workload code; invariants were \
         asserted after each run (a new engine is one TxnEngine impl away). \
         shared-ts/commit > 0 marks cells whose time base hands out \
         shared-class commit timestamps (GV4/GV5 sharing; block never \
         shares — lost confirmations re-arbitrate). xshard/commit > 0 marks \
         cells whose transactions spanned object shards and escalated to the \
         sharded engine's cross-shard commit protocol; --placement \
         partitioned pins bank/disjoint partitions shard-locally and drives \
         it to 0. the abort column is the cross-engine taxonomy \
         (validation/no-version/contention/overload). live-vers/arena-b are \
         the post-run version-store gauges (live version nodes and arena \
         bytes backing them; 0 on single-version engines) and wm-lag is the \
         reclamation watermark's distance behind the clock — bounded gauges \
         here are the memory-ceiling witness."
    );
}
