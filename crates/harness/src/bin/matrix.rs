//! **matrix** — the cross-engine sweep: one workload over every engine ×
//! time-base combination in the registry, from a single engine-generic code
//! path.
//!
//! ```sh
//! cargo run --release -p lsa-harness --bin matrix            # bank workload
//! cargo run --release -p lsa-harness --bin matrix -- disjoint
//! cargo run --release -p lsa-harness --bin matrix -- scan
//! cargo run --release -p lsa-harness --bin matrix -- bank --threads 8
//! cargo run --release -p lsa-harness --bin matrix -- bank --timebase gv4
//! ```
//!
//! `--timebase <substr>` keeps only rows whose time-base name contains the
//! given substring (e.g. `gv` selects the GV4 and GV5 arbitration rows).
//! Honours `LSA_MEASURE_MS` (per-point window) and `LSA_CSV=1` like every
//! harness binary. The bank invariant is asserted after every cell, so this
//! doubles as a cross-engine consistency smoke test.

use lsa_harness::registry::{default_registry, Workload};
use lsa_harness::{f3, measure_window, Table};
use lsa_workloads::{BankConfig, DisjointConfig, ScanConfig};

struct Args {
    workload: Workload,
    threads: usize,
    timebase_filter: Option<String>,
}

fn usage_exit(context: &str) -> ! {
    eprintln!("usage: matrix [bank|disjoint|scan] [--threads N] [--timebase SUBSTR]   ({context})");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        workload: Workload::Bank(BankConfig::default()),
        threads: std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(2),
        timebase_filter: None,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "bank" => args.workload = Workload::Bank(BankConfig::default()),
            "disjoint" => args.workload = Workload::Disjoint(DisjointConfig::default()),
            "scan" => args.workload = Workload::Scan(ScanConfig::default()),
            "--threads" => {
                i += 1;
                args.threads = match argv.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => usage_exit("--threads needs a number"),
                };
            }
            "--timebase" => {
                i += 1;
                args.timebase_filter = match argv.get(i) {
                    Some(s) => Some(s.clone()),
                    None => usage_exit("--timebase needs a substring"),
                };
            }
            other => usage_exit(&format!("got {other:?}")),
        }
        i += 1;
    }
    args.threads = args.threads.max(1);
    args
}

fn main() {
    let args = parse_args();
    let window = measure_window(200);
    let registry: Vec<_> = default_registry()
        .into_iter()
        .filter(|e| match &args.timebase_filter {
            Some(f) => e.time_base.contains(f.as_str()),
            None => true,
        })
        .collect();
    if registry.is_empty() {
        eprintln!(
            "no registry rows match --timebase {:?}",
            args.timebase_filter.as_deref().unwrap_or("")
        );
        std::process::exit(2);
    }

    println!(
        "MATRIX: {} workload, {} threads, {} ms/point, {} engine x time-base cells{}\n",
        args.workload.name(),
        args.threads,
        window.as_millis(),
        registry.len(),
        match &args.timebase_filter {
            Some(f) => format!(" (timebase filter: {f:?})"),
            None => String::new(),
        }
    );

    let mut t = Table::new(
        format!(
            "{} workload — throughput by engine and time base",
            args.workload.name()
        ),
        &[
            "engine",
            "time base",
            "tx/s",
            "aborts/commit",
            "validations/commit",
            "reval failures",
            "shared-ts/commit",
        ],
    );
    for entry in &registry {
        let out = entry.run(&args.workload, args.threads, window);
        t.row(vec![
            entry.engine.clone(),
            entry.time_base.clone(),
            format!("{:.0}", out.tx_per_sec()),
            f3(out.abort_ratio()),
            f3(out.stats.validations_per_commit()),
            out.stats.revalidation_failures.to_string(),
            f3(out.stats.shared_ts_per_commit()),
        ]);
    }
    t.print();
    println!(
        "every cell ran the SAME engine-generic workload code; invariants were \
         asserted after each run (a new engine is one TxnEngine impl away). \
         shared-ts/commit > 0 marks cells whose time base hands out \
         shared-class commit timestamps (GV4/GV5 sharing; block never \
         shares — lost confirmations re-arbitrate)."
    );
}
