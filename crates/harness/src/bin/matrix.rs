//! **matrix** — the cross-engine sweep: one workload over every engine ×
//! time-base combination in the registry, from a single engine-generic code
//! path.
//!
//! ```sh
//! cargo run --release -p lsa-harness --bin matrix            # bank workload
//! cargo run --release -p lsa-harness --bin matrix -- disjoint
//! cargo run --release -p lsa-harness --bin matrix -- bank --threads 8
//! ```
//!
//! Honours `LSA_MEASURE_MS` (per-point window) and `LSA_CSV=1` like every
//! harness binary. The bank invariant is asserted after every cell, so this
//! doubles as a cross-engine consistency smoke test.

use lsa_harness::registry::{default_registry, Workload};
use lsa_harness::{f3, measure_window, Table};
use lsa_workloads::{BankConfig, DisjointConfig};

fn parse_args() -> (Workload, usize) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = Workload::Bank(BankConfig::default());
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2);
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "bank" => workload = Workload::Bank(BankConfig::default()),
            "disjoint" => workload = Workload::Disjoint(DisjointConfig::default()),
            "--threads" => {
                i += 1;
                threads = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("usage: matrix [bank|disjoint] [--threads N]   (--threads needs a number)");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("usage: matrix [bank|disjoint] [--threads N]   (got {other:?})");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    (workload, threads.max(1))
}

fn main() {
    let (workload, threads) = parse_args();
    let window = measure_window(200);
    let registry = default_registry();

    println!(
        "MATRIX: {} workload, {} threads, {} ms/point, {} engine x time-base cells\n",
        workload.name(),
        threads,
        window.as_millis(),
        registry.len()
    );

    let mut t = Table::new(
        format!(
            "{} workload — throughput by engine and time base",
            workload.name()
        ),
        &[
            "engine",
            "time base",
            "tx/s",
            "aborts/commit",
            "validations/commit",
            "reval failures",
        ],
    );
    for entry in &registry {
        let out = entry.run(&workload, threads, window);
        t.row(vec![
            entry.engine.to_string(),
            entry.time_base.to_string(),
            format!("{:.0}", out.tx_per_sec()),
            f3(out.abort_ratio()),
            f3(out.stats.validations_per_commit()),
            out.stats.revalidation_failures.to_string(),
        ]);
    }
    t.print();
    println!(
        "every cell ran the SAME engine-generic workload code; invariants were \
         asserted after each run (a new engine is one TxnEngine impl away)."
    );
}
