//! **net_bench** — open-loop saturation benchmark over the `lsa-wire` TCP
//! serving path: a loopback `WireServer` per cell, a pipelined `WireClient`
//! offering requests on a fixed arrival schedule, and (with `--rate A..B`)
//! a geometric rate sweep that locates the saturation knee — the first
//! offered rate where the server starts shedding or p99 latency blows past
//! the uncontended baseline.
//!
//! ```sh
//! cargo run --release -p lsa-harness --bin net_bench
//! cargo run --release -p lsa-harness --bin net_bench -- bank --rate 20000
//! cargo run --release -p lsa-harness --bin net_bench -- intset --rate 2000..64000 --points 6
//! cargo run --release -p lsa-harness --bin net_bench -- all --conns 4 --window 64
//! cargo run --release -p lsa-harness --bin net_bench -- bank --engine lsa --json BENCH_net.json
//! ```
//!
//! Unlike `service_bench` (the in-process serving view), every request here
//! crosses a real socket: framing, the server's per-connection bounded
//! in-flight windows and the client's reply correlation are all on the
//! measured path. Latency is client-observed submit-to-reply. A `knee`
//! marker tags the first saturated row of each (request, cell) sweep.
//! Honours `LSA_MEASURE_MS` (per-point submission window) and `LSA_CSV=1`.

use lsa_harness::net_bench::{knee_index, KneePoint, NetKind, NetOutcome, NetSpec};
use lsa_harness::{f2, measure_window, Json, RangeSpec, Table};

struct Args {
    kinds: Vec<NetKind>,
    spec: NetSpec,
    rates: RangeSpec,
    points: usize,
    engine_filter: Option<String>,
    timebase_filter: Option<String>,
    json: Option<String>,
}

fn usage_exit(context: &str) -> ! {
    eprintln!(
        "usage: net_bench [bank|intset|hashset|all] [--rate R | --rate A..B] \
         [--points N] [--conns N] [--workers N] [--depth D] [--window W] \
         [--engine SUBSTR] [--timebase SUBSTR] [--json PATH]   ({context})"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let default_rate = NetSpec::default().rate;
    let mut args = Args {
        kinds: NetKind::ALL.to_vec(),
        spec: NetSpec::default(),
        rates: RangeSpec {
            lo: default_rate,
            hi: default_rate,
        },
        points: 5,
        engine_filter: None,
        timebase_filter: None,
        json: None,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "all" => args.kinds = NetKind::ALL.to_vec(),
            "--rate" => {
                i += 1;
                args.rates = match argv.get(i).and_then(|v| RangeSpec::parse(v)) {
                    Some(r) => r,
                    None => usage_exit("--rate needs a positive R or a sweep A..B"),
                };
            }
            "--points" => {
                i += 1;
                args.points = match argv.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage_exit("--points needs N >= 1"),
                };
            }
            "--conns" => {
                i += 1;
                args.spec.conns = match argv.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage_exit("--conns needs N >= 1"),
                };
            }
            "--workers" => {
                i += 1;
                args.spec.workers = match argv.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage_exit("--workers needs N >= 1"),
                };
            }
            "--depth" => {
                i += 1;
                args.spec.queue_depth = match argv.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage_exit("--depth needs N >= 1"),
                };
            }
            "--window" => {
                i += 1;
                args.spec.window = match argv.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage_exit("--window needs N >= 1"),
                };
            }
            "--engine" => {
                i += 1;
                args.engine_filter = match argv.get(i) {
                    Some(s) => Some(s.clone()),
                    None => usage_exit("--engine needs a substring"),
                };
            }
            "--timebase" => {
                i += 1;
                args.timebase_filter = match argv.get(i) {
                    Some(s) => Some(s.clone()),
                    None => usage_exit("--timebase needs a substring"),
                };
            }
            "--json" => {
                i += 1;
                args.json = match argv.get(i) {
                    Some(s) => Some(s.clone()),
                    None => usage_exit("--json needs a path"),
                };
            }
            other => match NetKind::parse(other) {
                Some(k) => args.kinds = vec![k],
                None => usage_exit(&format!("got {other:?}")),
            },
        }
        i += 1;
    }
    args
}

/// One representative cell per engine family that can sit behind the wire —
/// the default run stays seconds-not-minutes while contrasting the LSA
/// runtimes against a baseline.
const DEFAULT_CELLS: [(&str, &str); 3] = [
    ("lsa-rt", "shared-counter"),
    ("lsa-sharded", "shared-counter"),
    ("tl2", "shared-counter"),
];

/// One sweep point as a JSON object (shared `lsa_harness::Json` emitter).
fn point_json(kind: NetKind, engine: &str, tb: &str, rate: f64, out: &NetOutcome) -> Json {
    Json::obj([
        ("kind", Json::str(kind.name())),
        ("engine", Json::str(engine)),
        ("time_base", Json::str(tb)),
        ("rate", Json::Fixed(rate, 0)),
        ("offered", Json::U64(out.offered)),
        ("completed", Json::U64(out.completed)),
        ("shed", Json::U64(out.shed)),
        ("errors", Json::U64(out.errors)),
        ("throughput", Json::Fixed(out.throughput(), 0)),
        ("shed_rate", Json::Fixed(out.shed_rate(), 4)),
        ("p50_ns", Json::U64(out.latency.p50())),
        ("p90_ns", Json::U64(out.latency.p90())),
        ("p99_ns", Json::U64(out.latency.p99())),
        ("p999_ns", Json::U64(out.latency.p999())),
        ("max_ns", Json::U64(out.latency.max_ns())),
        ("frames_in", Json::U64(out.report.frames_in)),
        ("frames_out", Json::U64(out.report.frames_out)),
        ("protocol_errors", Json::U64(out.report.protocol_errors)),
        ("hist_merges", Json::U64(out.hist_merges)),
        (
            "job_pool_hit",
            Json::Fixed(out.report.job_pool.hit_rate(), 4),
        ),
        (
            "buf_pool_hit",
            Json::Fixed(out.report.buf_pool.hit_rate(), 4),
        ),
    ])
}

fn main() {
    let mut args = parse_args();
    args.spec.duration = measure_window(300);
    let registry: Vec<_> = lsa_harness::default_registry()
        .into_iter()
        .filter(|e| {
            args.engine_filter.is_some()
                || args.timebase_filter.is_some()
                || DEFAULT_CELLS
                    .iter()
                    .any(|(en, tb)| e.engine == *en && e.time_base == *tb)
        })
        .filter(|e| match &args.engine_filter {
            Some(f) => e.engine.contains(f.as_str()),
            None => true,
        })
        .filter(|e| match &args.timebase_filter {
            Some(f) => e.time_base.contains(f.as_str()),
            None => true,
        })
        .collect();
    if registry.is_empty() {
        eprintln!("no registry rows match the filters");
        std::process::exit(2);
    }

    let rates = args.rates.geometric(args.points);
    println!(
        "NET: open-loop {} over loopback TCP for {} ms/point, {} workers x depth {}, \
         window {}, {} conns, {} cells\n",
        if rates.len() > 1 {
            format!(
                "{:.0}..{:.0} req/s ({} points, geometric)",
                args.rates.lo,
                args.rates.hi,
                rates.len()
            )
        } else {
            format!("{:.0} req/s", rates[0])
        },
        args.spec.duration.as_millis(),
        args.spec.workers,
        args.spec.queue_depth,
        args.spec.window,
        args.spec.conns,
        registry.len(),
    );

    let mut t = Table::new(
        "open-loop wire benchmark — client-observed latency, shed rate, knee",
        &[
            "request",
            "engine",
            "time base",
            "offered/s",
            "done/s",
            "p50 us",
            "p90 us",
            "p99 us",
            "p99.9 us",
            "max us",
            "shed %",
            "errs",
            "pool %",
            "knee",
        ],
    );
    let mut json_points = Vec::new();
    for kind in &args.kinds {
        for entry in &registry {
            let mut sweep: Vec<(f64, NetOutcome)> = Vec::with_capacity(rates.len());
            for &rate in &rates {
                let spec = NetSpec {
                    kind: *kind,
                    rate,
                    ..args.spec
                };
                let out = entry.serve_wire(&spec);
                json_points.push(point_json(
                    *kind,
                    &entry.engine,
                    &entry.time_base,
                    rate,
                    &out,
                ));
                sweep.push((rate, out));
            }
            let points: Vec<KneePoint> = sweep
                .iter()
                .map(|(rate, out)| out.knee_point(*rate))
                .collect();
            let knee = knee_index(&points);
            for (i, (rate, out)) in sweep.iter().enumerate() {
                let us = |ns: u64| format!("{:.0}", ns as f64 / 1_000.0);
                t.row(vec![
                    kind.name().into(),
                    entry.engine.clone(),
                    entry.time_base.clone(),
                    format!("{rate:.0}"),
                    format!("{:.0}", out.throughput()),
                    us(out.latency.p50()),
                    us(out.latency.p90()),
                    us(out.latency.p99()),
                    us(out.latency.p999()),
                    us(out.latency.max_ns()),
                    f2(out.shed_rate() * 100.0),
                    out.errors.to_string(),
                    f2(out.report.job_pool.hit_rate() * 100.0),
                    match knee {
                        Some(k) if k == i => "<-- knee".into(),
                        _ => String::new(),
                    },
                ]);
            }
        }
    }
    t.print();
    if let Some(path) = &args.json {
        let doc = Json::obj([("points", Json::Arr(json_points))]);
        doc.write_file(path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
    println!(
        "every request crossed a real loopback socket: length-prefixed frames, \
         the server's per-connection bounded in-flight windows and the \
         client's reply correlation are all inside the measured latency. \
         overload surfaces as typed Overloaded replies (shed %), never a \
         dropped connection; errs counts transport losses and typed errors \
         and must be 0 in a healthy run. with --rate A..B the knee marker \
         tags the first point per cell that sheds > 1% or whose p99 exceeds \
         4x the lowest-rate baseline — the saturation knee of the serving \
         path. pool % is the server's request-record pool hit rate (100% \
         after warm-up means the serving path allocated nothing per \
         request); latency was recorded into per-lane histograms merged at \
         report time, never a global lock. the server audits its table \
         invariants (bank total, set sortedness, hash placement) at \
         shutdown of every point."
    );
}
