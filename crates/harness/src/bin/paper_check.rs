//! End-to-end verification of every qualitative claim this reproduction
//! makes about the paper — one PASS/FAIL line each. Exit code is non-zero if
//! any claim fails, so this doubles as a CI smoke test for the whole
//! reproduction:
//!
//! ```sh
//! cargo run --release -p lsa-harness --bin paper_check
//! ```

use lsa_harness::altix_sim::{simulate, AltixParams};
use lsa_harness::{measure_window, run_for};
use lsa_stm::{Stm, StmConfig};
use lsa_time::counter::SharedCounter;
use lsa_time::external::{ExternalClock, OffsetPolicy};
use lsa_time::hardware::HardwareClock;
use lsa_time::sync_measure::{measure, summarize, SyncMeasureConfig};
use lsa_workloads::{BankConfig, BankWorkload, DisjointConfig, DisjointWorkload};
use std::time::Duration;

struct Checker {
    failures: u32,
}

impl Checker {
    fn check(&mut self, claim: &str, ok: bool, detail: String) {
        let verdict = if ok { "PASS" } else { "FAIL" };
        println!("[{verdict}] {claim} — {detail}");
        if !ok {
            self.failures += 1;
        }
    }
}

fn main() {
    let mut c = Checker { failures: 0 };
    let p = AltixParams::paper_calibrated();

    // --- Figure 2 claims (modeled Altix). ---
    let c1 = simulate(1, 10, AltixParams::paper_counter(), p).mtx_per_sec;
    let m1 = simulate(1, 10, AltixParams::paper_mmtimer(), p).mtx_per_sec;
    c.check(
        "Fig2: single-threaded, MMTimer read cost hurts short transactions",
        c1 > m1,
        format!("counter {c1:.3} vs mmtimer {m1:.3} Mtx/s"),
    );
    let c8 = simulate(8, 10, AltixParams::paper_counter(), p).mtx_per_sec;
    let c16 = simulate(16, 10, AltixParams::paper_counter(), p).mtx_per_sec;
    let m16 = simulate(16, 10, AltixParams::paper_mmtimer(), p).mtx_per_sec;
    c.check(
        "Fig2: counter prevents scaling for short transactions",
        c16 < c8 * 1.25,
        format!("8cpu {c8:.3} -> 16cpu {c16:.3} Mtx/s"),
    );
    c.check(
        "Fig2: MMTimer scales ~linearly to 16 CPUs",
        m16 / m1 > 14.0,
        format!("speedup {:.1}x", m16 / m1),
    );
    let r10 = m16 / c16;
    let r100 = simulate(16, 100, AltixParams::paper_mmtimer(), p).mtx_per_sec
        / simulate(16, 100, AltixParams::paper_counter(), p).mtx_per_sec;
    c.check(
        "Fig2: counter influence decreases for larger transactions",
        r100 < r10,
        format!("mmtimer/counter at 16cpu: {r10:.2}x (10acc) -> {r100:.2}x (100acc)"),
    );

    // --- Figure 1 claim: MMTimer offsets masked by measurement error. ---
    let rounds = measure(
        &HardwareClock::mmtimer_free(),
        &SyncMeasureConfig {
            probes: 2,
            rounds: 10,
            round_interval: Duration::from_millis(2),
        },
    );
    let s = summarize(&rounds);
    c.check(
        "Fig1: synchronized clock's offsets stay below measurement error",
        s.worst_abs_offset <= s.worst_error,
        format!(
            "offset {} <= error {} (ticks)",
            s.worst_abs_offset, s.worst_error
        ),
    );

    // --- Real-threads claim: counter contention is real on this host too. ---
    let window = measure_window(150);
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if host >= 2 {
        let cfg = DisjointConfig {
            objects_per_thread: 64,
            accesses_per_tx: 10,
        };
        let wl = DisjointWorkload::new(Stm::new(SharedCounter::new()), 2, cfg);
        let counter2 = run_for(2, window, |i| wl.worker(i));
        c.check(
            "Real threads: disjoint workload commits without conflicts",
            counter2.aborts() == 0 && counter2.commits() > 0,
            format!(
                "{} commits, {} aborts",
                counter2.commits(),
                counter2.aborts()
            ),
        );
    }

    // --- §4.3 claim: deviation shrinks snapshots, raises aborts; invariants hold. ---
    let run_dev = |dev: u64| {
        let tb = ExternalClock::with_policy(dev, OffsetPolicy::Alternating);
        let wl = BankWorkload::new(
            Stm::with_config(tb, StmConfig::multi_version(8)),
            BankConfig {
                accounts: 32,
                initial: 100,
                audit_percent: 30,
            },
        );
        let out = run_for(2, window, |i| wl.worker(i));
        let consistent = wl.quiescent_total() == wl.expected_total();
        (out.abort_ratio(), consistent)
    };
    let (a0, ok0) = run_dev(0);
    let (a10, ok10) = run_dev(10_000);
    c.check(
        "S4.3: sync errors increase the abort ratio (dev 0 -> 10us)",
        a10 > a0,
        format!("{a0:.3} -> {a10:.3} aborts/commit"),
    );
    c.check(
        "S4.3: consistency never breaks under clock uncertainty",
        ok0 && ok10,
        "bank invariant held at every dev".into(),
    );

    println!();
    if c.failures == 0 {
        println!("all paper claims reproduced ✔");
    } else {
        println!("{} claim(s) FAILED", c.failures);
        std::process::exit(1);
    }
}
