//! **service_bench** — open-loop request-rate benchmark through the
//! `lsa-service` front-end: the serving view of the engine × time-base
//! matrix (throughput, latency percentiles and shed rate per cell, instead
//! of the closed-loop capacity numbers `matrix` reports).
//!
//! ```sh
//! cargo run --release -p lsa-harness --bin service_bench
//! cargo run --release -p lsa-harness --bin service_bench -- bank --rate 20000
//! cargo run --release -p lsa-harness --bin service_bench -- bank --rate 2000..64000 --points 6
//! cargo run --release -p lsa-harness --bin service_bench -- all --workers 4 --depth 512
//! cargo run --release -p lsa-harness --bin service_bench -- snapshot --engine lsa
//! cargo run --release -p lsa-harness --bin service_bench -- bank --placement partitioned
//! cargo run --release -p lsa-harness --bin service_bench -- --mem-ceiling --rounds 8 --mem-json BENCH_mem.json
//! ```
//!
//! Requests arrive on a fixed schedule (`--rate` per second) regardless of
//! completions — open-loop, so queueing delay lands in the latency columns
//! and overload lands in the shed-rate column rather than silently slowing
//! the generator down. `--rate A..B` sweeps the offered rate over
//! `--points` geometrically spaced values per cell (the saturation view;
//! see `net_bench` for the same sweep over the TCP serving path). Per cell
//! the bench asserts the workload invariants end to end (bank totals,
//! intset sortedness, snapshot zero-sum).
//!
//! By default one representative cell per engine family runs (`lsa-rt`,
//! `lsa-sharded`, `tl2`, `norec`, `validation`); `--all-cells` sweeps the
//! whole registry, `--engine`/`--timebase` filter by substring. Requests
//! route shard-affinely on sharded cells under `--placement partitioned`.
//! Honours `LSA_MEASURE_MS` (per-cell submission window) and `LSA_CSV=1`.
//!
//! `--mem-ceiling` switches to the sustained bounded-memory check: `--rounds`
//! open-loop windows on the multi-version LSA cell under watermark retention,
//! sampling the version-store gauges after each round and failing (exit 1)
//! unless they plateau. `--mem-json PATH` writes the samples as JSON for the
//! CI artifact.

use lsa_engine::MemoryStats;
use lsa_harness::service_bench::{run_memory_ceiling, RequestKind, ServiceSpec};
use lsa_harness::{f2, f3, measure_window, Json, RangeSpec, Table};
use lsa_workloads::PlacementHint;

struct Args {
    kinds: Vec<RequestKind>,
    spec: ServiceSpec,
    rates: RangeSpec,
    points: usize,
    engine_filter: Option<String>,
    timebase_filter: Option<String>,
    all_cells: bool,
    mem_ceiling: bool,
    mem_json: Option<String>,
    rounds: usize,
}

fn usage_exit(context: &str) -> ! {
    eprintln!(
        "usage: service_bench [bank|intset|snapshot|all] [--rate R | --rate A..B] \
         [--points N] [--workers N] \
         [--depth D] [--placement spread|partitioned] [--engine SUBSTR] \
         [--timebase SUBSTR] [--all-cells] [--mem-ceiling] [--rounds N] \
         [--mem-json PATH]   ({context})"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let default_rate = ServiceSpec::default().rate;
    let mut args = Args {
        kinds: RequestKind::ALL.to_vec(),
        spec: ServiceSpec::default(),
        rates: RangeSpec {
            lo: default_rate,
            hi: default_rate,
        },
        points: 5,
        engine_filter: None,
        timebase_filter: None,
        all_cells: false,
        mem_ceiling: false,
        mem_json: None,
        rounds: 6,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "all" => args.kinds = RequestKind::ALL.to_vec(),
            "--rate" => {
                i += 1;
                args.rates = match argv.get(i).and_then(|v| RangeSpec::parse(v)) {
                    Some(r) => r,
                    None => usage_exit("--rate needs a positive R or a sweep A..B"),
                };
                args.spec.rate = args.rates.lo;
            }
            "--points" => {
                i += 1;
                args.points = match argv.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage_exit("--points needs N >= 1"),
                };
            }
            "--workers" => {
                i += 1;
                args.spec.workers = match argv.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage_exit("--workers needs N >= 1"),
                };
            }
            "--depth" => {
                i += 1;
                args.spec.queue_depth = match argv.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage_exit("--depth needs N >= 1"),
                };
            }
            "--placement" => {
                i += 1;
                args.spec.placement = match argv.get(i).and_then(|v| PlacementHint::parse(v)) {
                    Some(p) => p,
                    None => usage_exit("--placement needs spread or partitioned"),
                };
            }
            "--engine" => {
                i += 1;
                args.engine_filter = match argv.get(i) {
                    Some(s) => Some(s.clone()),
                    None => usage_exit("--engine needs a substring"),
                };
            }
            "--timebase" => {
                i += 1;
                args.timebase_filter = match argv.get(i) {
                    Some(s) => Some(s.clone()),
                    None => usage_exit("--timebase needs a substring"),
                };
            }
            "--all-cells" => args.all_cells = true,
            "--mem-ceiling" => args.mem_ceiling = true,
            "--rounds" => {
                i += 1;
                args.rounds = match argv.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 2 => n,
                    _ => usage_exit("--rounds needs N >= 2"),
                };
            }
            "--mem-json" => {
                i += 1;
                args.mem_json = match argv.get(i) {
                    Some(s) => Some(s.clone()),
                    None => usage_exit("--mem-json needs a path"),
                };
            }
            other => match RequestKind::parse(other) {
                Some(k) => args.kinds = vec![k],
                None => usage_exit(&format!("got {other:?}")),
            },
        }
        i += 1;
    }
    args
}

/// One representative cell per engine family — the default sweep stays
/// minutes-not-hours while still contrasting every engine class.
const DEFAULT_CELLS: [(&str, &str); 5] = [
    ("lsa-rt", "shared-counter"),
    ("lsa-sharded", "shared-counter"),
    ("tl2", "shared-counter"),
    ("norec", "seqlock"),
    ("validation", "commit-counter"),
];

/// One memory sample as a JSON object (shared `lsa_harness::Json` emitter).
fn mem_json(m: &MemoryStats) -> Json {
    Json::obj([
        ("versions_live", Json::U64(m.versions_live)),
        ("versions_retired", Json::U64(m.versions_retired)),
        ("versions_reclaimed", Json::U64(m.versions_reclaimed)),
        ("arena_bytes", Json::U64(m.arena_bytes)),
        ("watermark_lag", Json::U64(m.watermark_lag)),
    ])
}

/// `--mem-ceiling`: sustained open-loop load on the multi-version LSA cell
/// with watermark retention (no fixed version-depth cap), sampling the
/// version-store gauges after each round. The run fails (exit 1) unless the
/// gauges plateau — the CI smoke step that keeps "bounded memory under
/// unbounded retention" an enforced property, not a claim.
fn run_mem_ceiling_mode(args: &Args) -> ! {
    use lsa_stm::{Stm, StmConfig};
    use lsa_time::counter::SharedCounter;

    // Snapshot requests are the version-store stress: long read-only scans
    // hold snapshots open while writers stack versions. Honour an explicit
    // single-kind selection, but ignore the default all-kinds sweep.
    let kind = match args.kinds.as_slice() {
        [k] => *k,
        _ => RequestKind::Snapshot,
    };
    let spec = ServiceSpec { kind, ..args.spec };
    println!(
        "MEM-CEILING: {} requests at {} req/s, {} rounds x {} ms on \
         lsa-rt/shared-counter (watermark retention)\n",
        kind.name(),
        spec.rate,
        args.rounds,
        spec.duration.as_millis(),
    );
    let report = run_memory_ceiling(
        Stm::with_config(SharedCounter::new(), StmConfig::watermark_retention()),
        &spec,
        args.rounds,
    );
    for (i, s) in report.samples.iter().enumerate() {
        println!("round {:>2}: {}", i + 1, s);
    }
    let ok = report.plateaued();
    println!(
        "\noffered {} completed {} shed {} | final {} | plateau {}",
        report.outcome.offered,
        report.outcome.completed,
        report.outcome.shed,
        report.outcome.engine.memory,
        if ok { "OK" } else { "FAILED" },
    );
    if let Some(path) = &args.mem_json {
        let doc = Json::obj([
            ("kind", Json::str(kind.name())),
            ("engine", Json::str("lsa-rt")),
            ("time_base", Json::str("shared-counter")),
            ("rate", Json::Fixed(spec.rate, 0)),
            ("rounds", Json::U64(args.rounds as u64)),
            ("round_ms", Json::U64(spec.duration.as_millis() as u64)),
            ("offered", Json::U64(report.outcome.offered)),
            ("completed", Json::U64(report.outcome.completed)),
            ("shed", Json::U64(report.outcome.shed)),
            ("plateaued", Json::Bool(ok)),
            ("samples", Json::arr(report.samples.iter().map(mem_json))),
            ("final", mem_json(&report.outcome.engine.memory)),
        ]);
        doc.write_file(path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
    std::process::exit(if ok { 0 } else { 1 });
}

fn main() {
    let mut args = parse_args();
    args.spec.duration = measure_window(500);
    if args.mem_ceiling {
        run_mem_ceiling_mode(&args);
    }
    let registry: Vec<_> = lsa_harness::default_registry()
        .into_iter()
        .filter(|e| {
            args.all_cells
                || args.engine_filter.is_some()
                || args.timebase_filter.is_some()
                || DEFAULT_CELLS
                    .iter()
                    .any(|(en, tb)| e.engine == *en && e.time_base == *tb)
        })
        .filter(|e| match &args.engine_filter {
            Some(f) => e.engine.contains(f.as_str()),
            None => true,
        })
        .filter(|e| match &args.timebase_filter {
            Some(f) => e.time_base.contains(f.as_str()),
            None => true,
        })
        .collect();
    if registry.is_empty() {
        eprintln!("no registry rows match the filters");
        std::process::exit(2);
    }

    let rates = args.rates.geometric(args.points);
    println!(
        "SERVICE: open-loop {} for {} ms/point, {} workers x depth {}, \
         placement {}, {} cells\n",
        if rates.len() > 1 {
            format!(
                "{:.0}..{:.0} req/s ({} points, geometric)",
                args.rates.lo,
                args.rates.hi,
                rates.len()
            )
        } else {
            format!("{:.0} req/s", rates[0])
        },
        args.spec.duration.as_millis(),
        args.spec.workers,
        args.spec.queue_depth,
        args.spec.placement,
        registry.len(),
    );

    let mut t = Table::new(
        "open-loop service benchmark — throughput, latency percentiles, shed rate",
        &[
            "request",
            "engine",
            "time base",
            "shards",
            "offered/s",
            "done/s",
            "p50 us",
            "p90 us",
            "p99 us",
            "p99.9 us",
            "max us",
            "shed %",
            "pool hit %",
            "aborts/commit",
            "aborts v/nv/ct/ov",
            "live-vers",
            "arena-b",
            "wm-lag",
        ],
    );
    let (mut pool_hits, mut pool_misses) = (0u64, 0u64);
    for kind in &args.kinds {
        for entry in &registry {
            for &rate in &rates {
                let spec = ServiceSpec {
                    kind: *kind,
                    rate,
                    ..args.spec
                };
                let out = entry.serve(&spec);
                pool_hits += out.pool.hits;
                pool_misses += out.pool.misses;
                let us = |ns: u64| format!("{:.0}", ns as f64 / 1_000.0);
                t.row(vec![
                    kind.name().into(),
                    entry.engine.clone(),
                    entry.time_base.clone(),
                    entry.shards.to_string(),
                    format!("{:.0}", spec.rate),
                    format!("{:.0}", out.throughput()),
                    us(out.latency.p50()),
                    us(out.latency.p90()),
                    us(out.latency.p99()),
                    us(out.latency.p999()),
                    us(out.latency.max_ns()),
                    f2(out.shed_rate() * 100.0),
                    f2(out.pool.hit_rate() * 100.0),
                    f3(out.engine.abort_ratio()),
                    out.engine.abort_reasons.to_string(),
                    out.engine.memory.versions_live.to_string(),
                    out.engine.memory.arena_bytes.to_string(),
                    out.engine.memory.watermark_lag.to_string(),
                ]);
            }
        }
    }
    t.print();
    let pool_total = pool_hits + pool_misses;
    println!(
        "record pool hit rate: {} ({} hits / {} gets) — requests travel as \
         pooled records; a hit means the arrival reused a recycled record \
         and the steady-state serving path allocated nothing per request.",
        if pool_total == 0 {
            "n/a".to_string()
        } else {
            format!("{:.2}%", pool_hits as f64 / pool_total as f64 * 100.0)
        },
        pool_hits,
        pool_total,
    );
    println!(
        "open-loop arrivals: requests were submitted on a fixed schedule and \
         latency includes queueing delay, so overload shows up as shed % and \
         p99 growth rather than a silently slower generator. every cell's \
         workload invariants (bank total, intset sortedness, snapshot \
         zero-sum) were asserted through the service after the drain. the \
         abort column is the cross-engine taxonomy \
         (validation/no-version/contention/overload); overload counts \
         admission sheds. live-vers/arena-b/wm-lag are the post-drain \
         version-store memory gauges (see --mem-ceiling for the sustained \
         bounded-memory check)."
    );
}
