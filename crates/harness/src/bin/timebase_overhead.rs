//! **EXP-TB** — raw time-base operation costs (§4.2 background).
//!
//! Tight-loop cost of `getTime` and `getNewTS` for every time base, single-
//! and multi-threaded. Shows (a) the MMTimer's fixed read cost, (b) the
//! counter's cheap uncontended operations that degrade under concurrency,
//! and (c) how the commit-arbitration variants shift the cost: GV4 sharing
//! does not change the picture (the paper: "showed no advantages on our
//! hardware"), GV5's `getNewTS` is load-only, and the block counter
//! amortizes reservations behind a published frontier.

use lsa_harness::{f2, measure_window, Table};
use lsa_time::counter::{BlockCounter, Gv4Counter, Gv5Counter, SharedCounter};
use lsa_time::external::ExternalClock;
use lsa_time::hardware::HardwareClock;
use lsa_time::numa::{NumaCounter, NumaModel};
use lsa_time::perfect::PerfectClock;
use lsa_time::{ThreadClock, TimeBase};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Nanoseconds per operation per thread (aggregate thread-time / total ops).
fn bench_base<B: TimeBase>(tb: &B, threads: usize, new_ts: bool) -> f64 {
    let window = measure_window(200);
    let barrier = Barrier::new(threads + 1);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let mut clock = tb.register_thread();
                let barrier = &barrier;
                let stop = &stop;
                s.spawn(move || {
                    barrier.wait();
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..64 {
                            if new_ts {
                                std::hint::black_box(clock.get_new_ts());
                            } else {
                                std::hint::black_box(clock.get_time());
                            }
                        }
                        ops += 64;
                    }
                    ops
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        while start.elapsed() < window {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        stop.store(true, Ordering::Relaxed);
        let elapsed = start.elapsed();
        let ops: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        elapsed.as_nanos() as f64 * threads as f64 / ops.max(1) as f64
    })
}

fn main() {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let thread_counts: Vec<usize> = [1usize, 2, 4]
        .into_iter()
        .filter(|&t| t <= host * 2)
        .collect();

    for (op, new_ts) in [("getTime", false), ("getNewTS", true)] {
        let mut t = Table::new(format!("EXP-TB: {op} cost (ns/op per thread)"), &{
            let mut h = vec!["time base"];
            h.extend(thread_counts.iter().map(|tc| match tc {
                1 => "1 thr",
                2 => "2 thr",
                _ => "4 thr",
            }));
            h
        });
        type BaseBench = Box<dyn Fn(usize) -> f64>;
        let bases: Vec<(&str, BaseBench)> = vec![
            ("shared-counter", {
                let b = SharedCounter::new();
                Box::new(move |n| bench_base(&b, n, new_ts))
            }),
            ("gv4", {
                let b = Gv4Counter::new();
                Box::new(move |n| bench_base(&b, n, new_ts))
            }),
            ("gv5", {
                let b = Gv5Counter::new();
                Box::new(move |n| bench_base(&b, n, new_ts))
            }),
            ("block64", {
                let b = BlockCounter::new(64);
                Box::new(move |n| bench_base(&b, n, new_ts))
            }),
            ("numa-counter(altix)", {
                let b = NumaCounter::new(NumaModel::altix());
                Box::new(move |n| bench_base(&b, n, new_ts))
            }),
            ("perfect-clock", {
                let b = PerfectClock::new();
                Box::new(move |n| bench_base(&b, n, new_ts))
            }),
            ("mmtimer(375ns)", {
                let b = HardwareClock::mmtimer();
                Box::new(move |n| bench_base(&b, n, new_ts))
            }),
            ("mmtimer(free)", {
                let b = HardwareClock::mmtimer_free();
                Box::new(move |n| bench_base(&b, n, new_ts))
            }),
            ("external(1us)", {
                let b = ExternalClock::new(1_000);
                Box::new(move |n| bench_base(&b, n, new_ts))
            }),
        ];
        for (name, bench) in &bases {
            let mut cells = vec![name.to_string()];
            for &n in &thread_counts {
                cells.push(f2(bench(n)));
            }
            t.row(cells);
        }
        t.print();
    }
    println!("note: per-thread cost; contended counters degrade with threads while clock reads stay flat.");
}
