//! **EXP-VAL** — §1 motivation: validation cost vs time-based consistency.
//!
//! "Validating after every access can be costly … the validation overhead
//! grows linearly with the number of objects a transaction has read so far."
//! Time-based STMs read consistently at O(1) per access instead.
//!
//! Read-only scans over n objects, single-threaded (pure per-access cost,
//! no conflicts), driven **from the engine registry** through the generic
//! [`Workload::Scan`] — the same cells the `matrix` binary sweeps, measured
//! as ns per scanned object. Expectations:
//!
//! * time-based engines (LSA-RT, TL2)            — ~flat cost per object,
//! * validation STM, `Always` mode               — cost grows ~linearly with
//!   n per object (O(n²) per scan),
//! * validation STM, commit-counter heuristic    — flat while quiescent (the
//!   `entries/scan` column shows the revalidation work that reappears as
//!   soon as any update commits elsewhere — the RSTM caveat the paper
//!   quotes),
//! * NOrec                                        — flat while quiescent
//!   (value validation triggers only on clock movement).

use lsa_harness::registry::{default_registry, find_entry, Workload};
use lsa_harness::{f2, measure_window, Table};
use lsa_workloads::ScanConfig;

const SCAN_SIZES: [usize; 5] = [10, 50, 100, 200, 400];

/// The registry cells this experiment compares, with their column labels.
const CELLS: [(&str, &str, &str); 5] = [
    ("lsa-rt", "shared-counter", "lsa-rt"),
    ("tl2", "shared-counter", "tl2"),
    ("validation", "always", "val-always"),
    ("validation", "commit-counter", "val-cc(quiescent)"),
    ("norec", "seqlock", "norec"),
];

fn main() {
    let window = measure_window(60);
    let registry = default_registry();

    let mut t = Table::new(
        "EXP-VAL: read-only scan of n objects, ns per scanned object (single thread)",
        &{
            let mut h = vec!["n"];
            h.extend(CELLS.iter().map(|(_, _, label)| *label));
            h.push("entries/scan always");
            h.push("entries/scan cc");
            h
        },
    );

    for &n in &SCAN_SIZES {
        let wl = Workload::Scan(ScanConfig { objects: n });
        let mut cells = vec![n.to_string()];
        let mut entries_per_scan = Vec::new();
        for (engine, tb, _) in CELLS {
            let entry = find_entry(&registry, engine, tb)
                .unwrap_or_else(|| panic!("registry lost the {engine}({tb}) cell"));
            let out = entry.run(&wl, 1, window);
            let ns_per_object = out.elapsed.as_nanos() as f64 / out.stats.reads.max(1) as f64;
            cells.push(f2(ns_per_object));
            if engine == "validation" {
                let scans = out.stats.ro_commits.max(1);
                entries_per_scan.push(out.stats.validated_entries as f64 / scans as f64);
            }
        }
        for entries in entries_per_scan {
            cells.push(format!("{entries:.0}"));
        }
        t.row(cells);
    }
    t.print();
    println!(
        "expected shape (S1): time-based engines and val-cc stay ~flat per object; \
         val-always grows ~linearly with n per object (O(n^2) per scan: \
         entries/scan ~ n(n+1)/2). All cells come from the engine registry — \
         adding an engine adds a column candidate with zero harness code."
    );
}
