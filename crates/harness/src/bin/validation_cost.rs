//! **EXP-VAL** — §1 motivation: validation cost vs time-based consistency.
//!
//! "Validating after every access can be costly … the validation overhead
//! grows linearly with the number of objects a transaction has read so far."
//! Time-based STMs read consistently at O(1) per access instead.
//!
//! Read-only scans over n objects, single-threaded (pure per-access cost,
//! no conflicts):
//!
//! * LSA-RT (time-based, invisible reads)       — expect ~linear total cost,
//! * validation STM, `Always` mode              — expect ~quadratic total cost,
//! * validation STM, commit-counter heuristic   — linear while quiescent, and
//!   the `validated entries` column shows the work that reappears as soon as
//!   any update commits elsewhere (the RSTM caveat the paper quotes).

use lsa_baseline::{ValidationMode, ValidationStm};
use lsa_harness::{f2, Table};
use lsa_stm::Stm;
use lsa_time::counter::SharedCounter;
use std::time::Instant;

const SCAN_SIZES: [usize; 5] = [10, 50, 100, 200, 400];
const REPS: usize = 300;

fn main() {
    let mut t = Table::new(
        "EXP-VAL: read-only scan of n objects, ns per scanned object (single thread)",
        &[
            "n",
            "lsa-rt",
            "val-always",
            "val-cc(quiescent)",
            "entries/scan always",
            "entries/scan cc",
        ],
    );

    for &n in &SCAN_SIZES {
        // LSA-RT.
        let stm = Stm::new(SharedCounter::new());
        let vars: Vec<_> = (0..n).map(|i| stm.new_tvar(i as u64)).collect();
        let mut h = stm.register();
        let start = Instant::now();
        for _ in 0..REPS {
            let sum = h.atomically(|tx| {
                let mut s = 0u64;
                for v in &vars {
                    s += *tx.read(v)?;
                }
                Ok(s)
            });
            std::hint::black_box(sum);
        }
        let lsa_ns = start.elapsed().as_nanos() as f64 / (REPS * n) as f64;

        // Validation engine in both modes.
        let mut results = Vec::new();
        for mode in [ValidationMode::Always, ValidationMode::CommitCounter] {
            let vstm = ValidationStm::new(mode);
            let vvars: Vec<_> = (0..n).map(|i| vstm.new_var(i as u64)).collect();
            let mut vh = vstm.register();
            let start = Instant::now();
            for _ in 0..REPS {
                let sum = vh.atomically(|tx| {
                    let mut s = 0u64;
                    for v in &vvars {
                        s += *tx.read(v)?;
                    }
                    Ok(s)
                });
                std::hint::black_box(sum);
            }
            let per_obj = start.elapsed().as_nanos() as f64 / (REPS * n) as f64;
            let entries = vh.stats().validated_entries as f64 / REPS as f64;
            results.push((per_obj, entries));
        }

        t.row(vec![
            n.to_string(),
            f2(lsa_ns),
            f2(results[0].0),
            f2(results[1].0),
            format!("{:.0}", results[0].1),
            format!("{:.0}", results[1].1),
        ]);
    }
    t.print();
    println!(
        "expected shape (S1): lsa-rt and val-cc stay ~flat per object; val-always \
         grows ~linearly with n per object (O(n^2) per scan: entries/scan ~ n(n+1)/2)."
    );
}
