//! Minimal JSON document builder for bench artifacts (std-only — the repo
//! carries no serde).
//!
//! Three binaries used to hand-roll their JSON with `format!` string
//! surgery (`service_bench --mem-json`, `net_bench --json`, `queue_bench`'s
//! `LSA_BENCH_JSON`); this module is the one emitter they all share, so
//! escaping, number formatting and file writing are decided in exactly one
//! place. The output is a single-line document with a trailing newline —
//! what the CI artifact steps grep and upload.

use std::fmt::Write as _;

/// A JSON value. Construct leaves directly and containers via
/// [`Json::obj`] / [`Json::arr`]; render with [`Json::render`] or persist
/// with [`Json::write_file`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (counters, byte totals).
    U64(u64),
    /// Signed integer (gauges).
    I64(i64),
    /// Float, rendered with a fixed number of decimals (second field) —
    /// non-finite values render as `0`, JSON has no NaN.
    Fixed(f64, usize),
    /// String, escaped on render.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// A string leaf.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Render the document as a single line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Fixed(v, decimals) => {
                let v = if v.is_finite() { *v } else { 0.0 };
                let _ = write!(out, "{v:.decimals$}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Write the rendered document (plus a trailing newline) to `path`.
    pub fn write_file(&self, path: &str) -> std::io::Result<()> {
        let mut doc = self.render();
        doc.push('\n');
        std::fs::write(path, doc)
    }
}

/// JSON string escaping: quotes, backslashes, and control characters.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves_render_as_json() {
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::I64(-7).render(), "-7");
        assert_eq!(Json::Fixed(0.73459, 4).render(), "0.7346");
        assert_eq!(Json::Fixed(9283.4, 0).render(), "9283");
        assert_eq!(Json::Fixed(f64::NAN, 2).render(), "0.00");
        assert_eq!(Json::str("plain").render(), "\"plain\"");
    }

    #[test]
    fn strings_escape_quotes_and_control_chars() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn containers_preserve_order_and_nest() {
        let doc = Json::obj([
            (
                "benches",
                Json::arr([Json::obj([
                    ("name", Json::str("ring")),
                    ("ns_per_op", Json::Fixed(12.51, 1)),
                ])]),
            ),
            ("ok", Json::Bool(true)),
        ]);
        assert_eq!(
            doc.render(),
            "{\"benches\":[{\"name\":\"ring\",\"ns_per_op\":12.5}],\"ok\":true}"
        );
    }

    #[test]
    fn write_file_appends_newline() {
        let path = std::env::temp_dir().join("lsa_harness_json_test.json");
        let path = path.to_str().unwrap().to_string();
        Json::obj([("x", Json::U64(1))]).write_file(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "{\"x\":1}\n");
        let _ = std::fs::remove_file(&path);
    }
}
