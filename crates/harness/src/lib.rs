//! # lsa-harness — experiment harness reproducing the SPAA'07 evaluation
//!
//! One binary per paper artifact (DESIGN.md §4 experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `fig1` | Figure 1 — clock synchronization errors and offsets |
//! | `fig2` | Figure 2 — throughput vs threads, counter vs MMTimer (10/50/100 accesses) |
//! | `timebase_overhead` | §4.2 raw time-base costs (EXP-TB) |
//! | `err_sweep` | §4.3 synchronization-error sweep (EXP-ERR) |
//! | `validation_cost` | §1 validation-vs-time-based cost (EXP-VAL) |
//! | `cm_ablation` | §2.3 contention-manager ablation (EXP-CM) |
//! | `paper_check` | one PASS/FAIL line per qualitative claim (CI smoke test) |
//! | `matrix` | workload × engine × time-base sweep from the [`registry`] |
//! | `service_bench` | open-loop request-rate sweep through the `lsa-service` front-end |
//! | `net_bench` | open-loop saturation sweep over the `lsa-wire` TCP serving path |
//!
//! Shared infrastructure: [`runner`] (thread orchestration and throughput),
//! [`registry`] (the engine × time-base matrix, engine-generic via
//! [`lsa_engine::TxnEngine`]), [`service_bench`] (open-loop load generation
//! against the async transaction service: arrival-rate scheduling, latency
//! percentiles, shed accounting), [`net_bench`] (the same open-loop lens
//! over a real loopback socket through `lsa-wire`, plus the saturation-knee
//! locator), [`args`] (the shared `N`/`A..B` sweep-range syntax),
//! [`table`] (text/CSV output), [`json`] (the one JSON emitter behind every
//! `BENCH_*.json` artifact), [`altix_sim`]
//! (the discrete-event model of the paper's 16-CPU ccNUMA testbed — the
//! documented substitution for hardware this reproduction does not have).
//!
//! Every binary honours `LSA_MEASURE_MS` (per-point measurement window) and
//! `LSA_CSV=1` (machine-readable output).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod altix_sim;
pub mod args;
pub mod json;
pub mod net_bench;
pub mod registry;
pub mod runner;
pub mod service_bench;
pub mod table;

pub use altix_sim::{simulate, AltixParams, SimPoint, SimTimeBase};
pub use args::RangeSpec;
pub use json::Json;
pub use net_bench::{knee_index, run_net_bench, KneePoint, NetKind, NetOutcome, NetSpec};
pub use registry::{default_registry, run_workload, EngineEntry, Workload};
pub use runner::{measure_window, run_for, run_steps, BenchWorker, RunOutcome};
pub use service_bench::{run_service_bench, RequestKind, ServiceOutcome, ServiceSpec};
pub use table::{f2, f3, Table};
