//! Open-loop load generation over the wire: the `lsa-wire` TCP serving
//! path measured end to end (encode → socket → server → service → reply).
//!
//! [`crate::service_bench`] measures the in-process serving path; this
//! module puts a real loopback socket, framing and the server's bounded
//! in-flight windows between the load generator and the workers. The same
//! open-loop discipline applies — arrival `n` fires at `start + n/rate`
//! regardless of completions — so queueing delay lands in the latency
//! percentiles and overload shows up as typed `Overloaded` replies rather
//! than an unbounded backlog.
//!
//! Sweeping `rate` over a geometric grid ([`crate::args::RangeSpec`])
//! and feeding the per-point outcomes to [`knee_index`] locates the
//! saturation knee: the first offered rate where the server starts
//! shedding or p99 latency blows past the uncontended baseline.

use crossbeam_utils::CachePadded;
use lsa_engine::TxnEngine;
use lsa_service::{Executor, LatencyHistogram};
use lsa_wire::{
    Reply, Request, ServerConfig, SetOp, TablesConfig, WireClient, WireReport, WireServer,
};
use lsa_workloads::FastRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which request mix the wire load generator submits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetKind {
    /// Transfers (80%) + whole-table audits (20%); the server asserts the
    /// invariant total at shutdown.
    Bank,
    /// Sorted-list member (60%) / insert (20%) / remove (20%).
    Intset,
    /// Bucketed-hash member (60%) / insert (20%) / remove (20%) — short
    /// transactions where fixed per-request costs dominate.
    Hashset,
}

impl NetKind {
    /// All kinds, in table order.
    pub const ALL: [NetKind; 3] = [NetKind::Bank, NetKind::Intset, NetKind::Hashset];

    /// Short name for tables and CLI parsing.
    pub fn name(self) -> &'static str {
        match self {
            NetKind::Bank => "bank",
            NetKind::Intset => "intset",
            NetKind::Hashset => "hashset",
        }
    }

    /// Parse a CLI argument.
    pub fn parse(s: &str) -> Option<Self> {
        NetKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// Parameters of one open-loop wire run.
#[derive(Clone, Copy, Debug)]
pub struct NetSpec {
    /// Request mix.
    pub kind: NetKind,
    /// Offered arrival rate, requests per second.
    pub rate: f64,
    /// Submission window (drain time comes on top).
    pub duration: Duration,
    /// Service worker threads behind the server.
    pub workers: usize,
    /// Per-worker bounded admission queue depth.
    pub queue_depth: usize,
    /// Per-connection in-flight window on the server.
    pub window: usize,
    /// Client connections (pipelined lanes).
    pub conns: usize,
}

impl Default for NetSpec {
    fn default() -> Self {
        NetSpec {
            kind: NetKind::Bank,
            rate: 5_000.0,
            duration: Duration::from_millis(300),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(2),
            queue_depth: 256,
            window: 128,
            conns: 2,
        }
    }
}

/// Outcome of one open-loop wire run.
#[derive(Debug)]
pub struct NetOutcome {
    /// Requests the generator offered (completed + shed + errors).
    pub offered: u64,
    /// Requests that completed with a success reply.
    pub completed: u64,
    /// Requests the server shed with a typed `Overloaded` reply.
    pub shed: u64,
    /// Requests lost to transport failure or answered with a typed error —
    /// zero in a healthy run.
    pub errors: u64,
    /// Wall clock from first arrival to full drain.
    pub elapsed: Duration,
    /// Client-side submit-to-reply latency distribution (completed
    /// requests only — the full round trip including framing and socket).
    pub latency: LatencyHistogram,
    /// Per-lane latency histograms merged into [`latency`](Self::latency)
    /// at report time — one merge per client lane. The measurement path
    /// records into the submitting lane's own histogram, so completion
    /// tasks never contend on one global lock; this gauge proves the merge
    /// actually covered every lane.
    pub hist_merges: u64,
    /// The server's own accounting (frames, sheds, protocol errors,
    /// service report).
    pub report: WireReport,
    /// A `Stats` scrape sent over the live wire at the halfway point of the
    /// submission window: the server's registry snapshot (JSON), taken
    /// while the workload was in flight. `None` only if the scrape's reply
    /// was lost with the connection.
    pub mid_scrape: Option<String>,
    /// `Stats` requests the generator sent alongside the workload. They
    /// ride the frame counters (`frames_in`/`frames_out`) but not the
    /// service queues, so `report.frames_in == offered + scrapes`.
    pub scrapes: u64,
}

impl NetOutcome {
    /// Completed requests per second (drain included).
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.elapsed.as_secs_f64()
    }

    /// Fraction of offered requests shed in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }

    /// The sweep-point summary [`knee_index`] consumes.
    pub fn knee_point(&self, rate: f64) -> KneePoint {
        KneePoint {
            rate,
            shed_rate: self.shed_rate(),
            p99_ns: self.latency.p99(),
        }
    }
}

/// One point of a saturation sweep, reduced to the two knee signals.
#[derive(Clone, Copy, Debug)]
pub struct KneePoint {
    /// Offered rate at this point, requests per second.
    pub rate: f64,
    /// Observed shed fraction in `[0, 1]`.
    pub shed_rate: f64,
    /// Observed p99 latency in nanoseconds.
    pub p99_ns: u64,
}

/// Shed fraction above which a sweep point counts as saturated.
pub const KNEE_SHED_THRESHOLD: f64 = 0.01;
/// p99 blow-up factor over the first (baseline) point that counts as the
/// queueing knee even before admission control sheds.
pub const KNEE_P99_FACTOR: u64 = 4;

/// Locate the saturation knee in an increasing-rate sweep: the first point
/// that sheds more than [`KNEE_SHED_THRESHOLD`] of its offered load, or
/// whose p99 exceeds [`KNEE_P99_FACTOR`] × the first point's p99 (queueing
/// delay blows up before admission control engages). Returns `None` when
/// every point is below both signals — the sweep never left the linear
/// regime.
pub fn knee_index(points: &[KneePoint]) -> Option<usize> {
    let baseline = points.first()?.p99_ns.max(1);
    points
        .iter()
        .position(|p| p.shed_rate > KNEE_SHED_THRESHOLD || p.p99_ns > KNEE_P99_FACTOR * baseline)
}

/// Draw one request from the mix. Key and account ranges match the
/// server-side [`TablesConfig`] so no request is ever out of range.
fn draw_request(kind: NetKind, rng: &mut FastRng, cfg: &TablesConfig) -> Request {
    fn set_op(rng: &mut FastRng) -> SetOp {
        match rng.below(10) {
            0..=5 => SetOp::Member,
            6 | 7 => SetOp::Insert,
            _ => SetOp::Remove,
        }
    }
    match kind {
        NetKind::Bank => {
            if rng.percent(20) {
                Request::BankAudit
            } else {
                let accounts = cfg.accounts as usize;
                let from = rng.below(accounts);
                let to = (from + 1 + rng.below(accounts - 1)) % accounts;
                Request::BankTransfer {
                    from: from as u32,
                    to: to as u32,
                    amount: rng.range(1, 100),
                }
            }
        }
        NetKind::Intset => Request::Intset {
            op: set_op(rng),
            key: rng.below(cfg.set_key_range as usize) as i64,
        },
        NetKind::Hashset => Request::Hashset {
            op: set_op(rng),
            key: rng.below(cfg.set_key_range as usize) as i64,
        },
    }
}

/// Sleep-then-spin until `deadline` (same discipline as the service bench:
/// coarse sleeps stop short so the schedule keeps sub-millisecond precision).
fn wait_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > Duration::from_micros(300) {
            std::thread::sleep(remaining - Duration::from_micros(200));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Run one open-loop wire benchmark on `engine`: start a loopback
/// [`WireServer`], connect a pipelined [`WireClient`] with `spec.conns`
/// lanes, submit on the arrival schedule, drain fully, shut the server
/// down (which audits the table invariants) and return both sides'
/// accounting.
///
/// Latency is measured on the client from just before the frame is written
/// to the moment the reply resolves — socket, framing, queueing and
/// execution included. When the server's in-flight windows fill, the
/// client's blocking writes slow the submitter itself; that lost offered
/// load is visible as `offered` falling short of `rate × duration`.
pub fn run_net_bench<E: TxnEngine>(engine: E, spec: &NetSpec) -> NetOutcome {
    assert!(spec.rate > 0.0, "rate must be positive");
    let tables = TablesConfig::default();
    let server = WireServer::start(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            workers: spec.workers,
            queue_depth: spec.queue_depth,
            window: spec.window,
            tables,
        },
    )
    .expect("loopback bind");
    let client = WireClient::connect(server.local_addr(), spec.conns).expect("loopback client");

    let ex = Executor::new(2);
    // Shared counters are cache-line padded: completion tasks bump them
    // from executor threads while the submitter reads the clock on its
    // own line — no false sharing on the measurement path.
    let done = Arc::new(CachePadded::new(AtomicU64::new(0)));
    let shed = Arc::new(CachePadded::new(AtomicU64::new(0)));
    let errors = Arc::new(CachePadded::new(AtomicU64::new(0)));
    // `LatencyHistogram::record` needs `&mut`. Instead of one global
    // mutex that every completion task fights over, each client lane gets
    // its own histogram (requests go to lane `offered % conns`, matching
    // the client's round-robin); they are merged once at report time.
    let lanes: Arc<Vec<Mutex<LatencyHistogram>>> = Arc::new(
        (0..spec.conns)
            .map(|_| Mutex::new(LatencyHistogram::new()))
            .collect(),
    );
    let mut rng = FastRng::new(0x0b5e_55ed);

    let mid_scrape: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
    let mut scrapes = 0u64;

    let start = Instant::now();
    let mut offered = 0u64;
    while start.elapsed() < spec.duration {
        wait_until(start + Duration::from_secs_f64(offered as f64 / spec.rate));
        // One live scrape at halftime, over the same wire the workload is
        // using: fire-and-forget so the arrival schedule is not perturbed.
        if scrapes == 0 && start.elapsed() >= spec.duration / 2 {
            if let Ok(pending) = client.send(&Request::Stats) {
                scrapes += 1;
                let slot = Arc::clone(&mid_scrape);
                ex.spawn(async move {
                    if let Ok(Reply::Stats(json)) = pending.await {
                        *slot.lock().unwrap() = String::from_utf8(json).ok();
                    }
                });
            }
        }
        let req = draw_request(spec.kind, &mut rng, &tables);
        let submitted = Instant::now();
        match client.send(&req) {
            Ok(pending) => {
                let done = Arc::clone(&done);
                let shed = Arc::clone(&shed);
                let errors = Arc::clone(&errors);
                let lanes = Arc::clone(&lanes);
                let lane_ix = (offered % spec.conns as u64) as usize;
                ex.spawn(async move {
                    match pending.await {
                        Ok(Reply::Overloaded) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(Reply::Error(_)) | Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            lanes[lane_ix].lock().unwrap().record(submitted.elapsed());
                            done.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            Err(_) => {
                errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        offered += 1;
    }

    // Drain: every accepted request resolves (reply or connection loss)
    // before the server is torn down, so the histogram covers every
    // completed request.
    ex.wait_idle();
    let elapsed = start.elapsed();
    ex.shutdown();
    drop(client);
    let report = server.shutdown();

    let lanes = Arc::try_unwrap(lanes).expect("completion tasks drained");
    let mut latency = LatencyHistogram::new();
    let mut hist_merges = 0u64;
    for lane in lanes {
        latency.merge(&lane.into_inner().unwrap());
        hist_merges += 1;
    }
    let mid_scrape = mid_scrape.lock().unwrap().take();
    NetOutcome {
        offered,
        completed: done.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed,
        latency,
        hist_merges,
        report,
        mid_scrape,
        scrapes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_stm::{ShardedStm, Stm};
    use lsa_time::counter::SharedCounter;

    fn quick_spec(kind: NetKind) -> NetSpec {
        NetSpec {
            kind,
            rate: 1_500.0,
            duration: Duration::from_millis(120),
            workers: 2,
            queue_depth: 128,
            window: 64,
            conns: 2,
        }
    }

    #[test]
    fn open_loop_bank_over_the_wire_accounts_exactly() {
        let out = run_net_bench(Stm::new(SharedCounter::new()), &quick_spec(NetKind::Bank));
        assert!(out.offered > 50, "open loop must offer at the schedule");
        assert_eq!(out.completed + out.shed + out.errors, out.offered);
        assert_eq!(out.errors, 0, "healthy loopback run must not lose requests");
        assert_eq!(out.latency.count(), out.completed);
        assert!(out.latency.p99() >= out.latency.p50());
        assert!(out.throughput() > 0.0);
        assert_eq!(
            out.hist_merges,
            quick_spec(NetKind::Bank).conns as u64,
            "one per-lane histogram merged per client connection"
        );
        // Both sides agree: the server read one frame per offered request
        // (plus the halftime stats scrape) and wrote one reply per frame.
        assert_eq!(out.report.frames_in, out.offered + out.scrapes);
        assert_eq!(out.report.frames_out, out.offered + out.scrapes);
        assert_eq!(out.report.service.shed, out.shed);
        assert_eq!(out.report.protocol_errors, 0);
        // The halftime scrape crossed the live wire and carries all three
        // layers of the metrics surface.
        assert_eq!(out.scrapes, 1, "one stats scrape per run");
        let scrape = out.mid_scrape.expect("stats reply resolved");
        assert!(scrape.contains("\"wire.frames_in\""));
        assert!(scrape.contains("\"service.submitted\""));
        assert!(scrape.contains("\"engine.commits\""));
    }

    #[test]
    fn every_kind_runs_on_the_sharded_engine() {
        for kind in NetKind::ALL {
            let out = run_net_bench(
                ShardedStm::new(SharedCounter::new(), 4),
                &NetSpec {
                    duration: Duration::from_millis(80),
                    ..quick_spec(kind)
                },
            );
            assert!(out.completed > 0, "{} served nothing", kind.name());
            assert_eq!(out.errors, 0, "{} lost requests", kind.name());
        }
    }

    #[test]
    fn knee_index_flags_shed_onset_and_latency_blowup() {
        let p = |rate, shed_rate, p99_ns| KneePoint {
            rate,
            shed_rate,
            p99_ns,
        };
        // Shed onset at the third point.
        assert_eq!(
            knee_index(&[
                p(1e3, 0.0, 100),
                p(2e3, 0.001, 120),
                p(4e3, 0.2, 150),
                p(8e3, 0.6, 200),
            ]),
            Some(2)
        );
        // p99 blow-up before any shedding.
        assert_eq!(
            knee_index(&[p(1e3, 0.0, 100), p(2e3, 0.0, 250), p(4e3, 0.0, 900)]),
            Some(2)
        );
        // Linear regime throughout.
        assert_eq!(
            knee_index(&[p(1e3, 0.0, 100), p(2e3, 0.0, 110), p(4e3, 0.005, 130)]),
            None
        );
        assert_eq!(knee_index(&[]), None);
    }

    #[test]
    fn kind_parsing_round_trips() {
        for kind in NetKind::ALL {
            assert_eq!(NetKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(NetKind::parse("nope"), None);
    }
}
