//! The engine registry: every workload × engine × time-base combination the
//! harness can drive, behind one uniform interface.
//!
//! Before the `TxnEngine` refactor each experiment binary hand-wired its own
//! engine setup; adding an engine meant touching every `bin/*.rs`. Now an
//! engine × time-base combination is one [`EngineEntry`] constructed from a
//! factory closure, and every entry can run every [`Workload`] through the
//! same engine-generic runner ([`run_workload`]) or hand out type-erased
//! [`BenchWorker`]s for custom measurement loops ([`EngineEntry::bench_rig`]
//! — what the criterion benches use). The `matrix` binary prints the full
//! sweep (filterable with `--timebase`); tests and experiments filter the
//! registry with [`find_entry`].
//!
//! The time-base axis includes the commit-arbitration variants
//! (`gv4`, `gv5`, `block64` — see `lsa_time::counter`). The adopting GV4
//! and the lazy GV5 appear only under TL2 because LSA requires a
//! commit-monotonic base (its constructor enforces this — see
//! `lsa_stm::Stm::with_cm`); the block counter never adopts, stays
//! commit-monotonic, and runs under both engines.

use crate::runner::{run_for_pinned, BenchWorker, RunOutcome};
use lsa_baseline::{NorecStm, Tl2Stm, ValidationMode, ValidationStm};
use lsa_engine::TxnEngine;
use lsa_stm::{ShardedStm, Stm, StmConfig};
use lsa_time::counter::{BlockCounter, Gv4Counter, Gv5Counter, SharedCounter};
use lsa_time::external::{ExternalClock, OffsetPolicy};
use lsa_time::hardware::HardwareClock;
use lsa_time::numa::{NumaCounter, NumaModel};
use lsa_time::perfect::PerfectClock;
use lsa_workloads::{
    BankConfig, BankWorkload, DisjointConfig, DisjointWorkload, HashsetConfig, HashsetWorkload,
    IntsetConfig, IntsetWorkload, PlacementHint, ScanConfig, ScanWorkload, SnapshotConfig,
    SnapshotWorkload,
};
use std::time::Duration;

/// Shard count of the `lsa-sharded` registry rows. Eight shards on the
/// default round-robin routing gives the bank/intset workloads plenty of
/// cross-shard transactions while keeping per-shard tables non-trivial.
pub const DEFAULT_SHARDS: usize = 8;

/// A workload selection with its parameters.
#[derive(Clone, Copy, Debug)]
pub enum Workload {
    /// Transfers + read-only audits ([`lsa_workloads::bank`]). The runner
    /// asserts the invariant total after every run.
    Bank(BankConfig),
    /// The §4.2 disjoint-update workload ([`lsa_workloads::disjoint`]).
    Disjoint(DisjointConfig),
    /// Read-only scans ([`lsa_workloads::scan`]) — the §1 validation-cost
    /// shape; every scan asserts the invariant sum.
    Scan(ScanConfig),
    /// Sorted linked-list integer set with a member/insert/remove mix
    /// ([`lsa_workloads::intset_list`]) — the data-structure workload whose
    /// traversals cross shard boundaries, exercising cross-shard commits.
    /// The runner asserts sortedness/uniqueness after every run.
    Intset(IntsetConfig),
    /// Bucketed hash set with the same member/insert/remove mix
    /// ([`lsa_workloads::hashset`]) — single-bucket transactions with small
    /// read sets, where per-transaction fixed costs (time-base access,
    /// commit arbitration) dominate instead of per-access validation. The
    /// runner asserts key placement and uniqueness after every run.
    Hashset(HashsetConfig),
    /// Snapshot analytics ([`lsa_workloads::snapshot`]): read-mostly
    /// full-table scans racing zero-sum updates — the multi-version vs
    /// single-version separation workload. The runner asserts the zero-sum
    /// invariant after every run.
    Snapshot(SnapshotConfig),
}

impl Workload {
    /// Short name for tables and CLI parsing.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Bank(_) => "bank",
            Workload::Disjoint(_) => "disjoint",
            Workload::Scan(_) => "scan",
            Workload::Intset(_) => "intset",
            Workload::Hashset(_) => "hashset",
            Workload::Snapshot(_) => "snapshot",
        }
    }
}

/// Run `workload` on `engine` with `threads` workers for `window`.
///
/// This is the single engine-generic entry point every registry entry and
/// experiment shares: one monomorphization per engine type, zero per-engine
/// harness code.
pub fn run_workload<E: TxnEngine>(
    engine: E,
    workload: &Workload,
    threads: usize,
    window: Duration,
) -> RunOutcome {
    run_workload_placed(engine, workload, PlacementHint::Spread, threads, window)
}

/// [`run_workload`] with an explicit [`PlacementHint`]: bank and disjoint
/// pin their partitions shard-locally under `Partitioned` (the other
/// workloads have no natural partition and ignore the hint).
pub fn run_workload_placed<E: TxnEngine>(
    engine: E,
    workload: &Workload,
    placement: PlacementHint,
    threads: usize,
    window: Duration,
) -> RunOutcome {
    run_workload_pinned(engine, workload, placement, threads, window, false)
}

/// [`run_workload_placed`] with optional best-effort thread pinning (see
/// [`crate::runner::run_for_pinned`]). After the run, the engine's global
/// memory gauges ([`TxnEngine::memory_stats`]) are sampled once into the
/// outcome — a point-in-time reading, not a per-thread sum.
pub fn run_workload_pinned<E: TxnEngine>(
    engine: E,
    workload: &Workload,
    placement: PlacementHint,
    threads: usize,
    window: Duration,
    pin: bool,
) -> RunOutcome {
    match workload {
        Workload::Bank(cfg) => {
            let wl = BankWorkload::with_placement(engine, *cfg, placement);
            let mut out = run_for_pinned(threads, window, pin, |i| wl.worker(i));
            assert_eq!(
                wl.quiescent_total(),
                wl.expected_total(),
                "bank invariant broken on {}",
                wl.engine().engine_name()
            );
            out.stats.memory = wl.engine().memory_stats();
            out
        }
        Workload::Disjoint(cfg) => {
            let wl = DisjointWorkload::with_placement(engine, threads, *cfg, placement);
            let mut out = run_for_pinned(threads, window, pin, |i| wl.worker(i));
            assert_eq!(
                wl.total(),
                out.commits() * cfg.accesses_per_tx as u64,
                "disjoint accounting broken on {}",
                wl.engine().engine_name()
            );
            out.stats.memory = wl.engine().memory_stats();
            out
        }
        Workload::Scan(cfg) => {
            // Every scan asserts its invariant sum inside the worker.
            let wl = ScanWorkload::new(engine, *cfg);
            let mut out = run_for_pinned(threads, window, pin, |i| wl.worker(i));
            out.stats.memory = wl.engine().memory_stats();
            out
        }
        Workload::Intset(cfg) => {
            let wl = IntsetWorkload::new(engine, *cfg);
            let mut out = run_for_pinned(threads, window, pin, |i| wl.worker(i));
            // Structural invariant: sorted, duplicate-free list.
            wl.assert_sorted_unique();
            out.stats.memory = wl.engine().memory_stats();
            out
        }
        Workload::Hashset(cfg) => {
            let wl = HashsetWorkload::new(engine, *cfg);
            let mut out = run_for_pinned(threads, window, pin, |i| wl.worker(i));
            // Structural invariant: right bucket, no duplicates.
            wl.assert_placement();
            out.stats.memory = wl.engine().memory_stats();
            out
        }
        Workload::Snapshot(cfg) => {
            let wl = SnapshotWorkload::new(engine, *cfg);
            let mut out = run_for_pinned(threads, window, pin, |i| wl.worker(i));
            assert_eq!(
                wl.quiescent_sum(),
                0,
                "snapshot zero-sum invariant broken on {}",
                wl.engine().engine_name()
            );
            out.stats.memory = wl.engine().memory_stats();
            out
        }
    }
}

/// A type-erased worker factory for one workload instance: the shared
/// workload state lives inside the closure, `(tid)` builds worker `tid`.
/// What the criterion benches iterate on without naming engine types.
pub type WorkerRig = Box<dyn Fn(usize) -> Box<dyn BenchWorker> + Send + Sync>;

fn make_rig<E: TxnEngine>(engine: E, workload: &Workload, threads: usize) -> WorkerRig {
    match workload {
        Workload::Bank(cfg) => {
            let wl = BankWorkload::new(engine, *cfg);
            Box::new(move |tid| Box::new(wl.worker(tid)))
        }
        Workload::Disjoint(cfg) => {
            let wl = DisjointWorkload::new(engine, threads, *cfg);
            Box::new(move |tid| Box::new(wl.worker(tid)))
        }
        Workload::Scan(cfg) => {
            let wl = ScanWorkload::new(engine, *cfg);
            Box::new(move |tid| Box::new(wl.worker(tid)))
        }
        Workload::Intset(cfg) => {
            let wl = IntsetWorkload::new(engine, *cfg);
            Box::new(move |tid| Box::new(wl.worker(tid)))
        }
        Workload::Hashset(cfg) => {
            let wl = HashsetWorkload::new(engine, *cfg);
            Box::new(move |tid| Box::new(wl.worker(tid)))
        }
        Workload::Snapshot(cfg) => {
            let wl = SnapshotWorkload::new(engine, *cfg);
            Box::new(move |tid| Box::new(wl.worker(tid)))
        }
    }
}

/// Type-erased runner stored in an [`EngineEntry`]. The trailing flag is
/// thread pinning (see [`run_workload_pinned`]).
type EntryRunner =
    Box<dyn Fn(&Workload, PlacementHint, usize, Duration, bool) -> RunOutcome + Send + Sync>;
type EntryRig = Box<dyn Fn(&Workload, usize) -> WorkerRig + Send + Sync>;
type EntryServe = Box<
    dyn Fn(&crate::service_bench::ServiceSpec) -> crate::service_bench::ServiceOutcome
        + Send
        + Sync,
>;
type EntryServeWire =
    Box<dyn Fn(&crate::net_bench::NetSpec) -> crate::net_bench::NetOutcome + Send + Sync>;

/// One engine × time-base combination, ready to run any [`Workload`].
pub struct EngineEntry {
    /// Engine family, e.g. `"lsa-rt"`.
    pub engine: String,
    /// Time base (or mode for the validation engine), e.g. `"mmtimer-free"`.
    /// Parameterized entries (external-clock sweeps) carry their parameters
    /// here, e.g. `"external-10us-mv8"`.
    pub time_base: String,
    /// Object-shard count this entry's engine is constructed with
    /// ([`TxnEngine::shards`]; 1 for unsharded engines) — the matrix prints
    /// it as the `shards` column.
    pub shards: usize,
    /// Pin worker threads to cores for this entry's runs (best-effort; set
    /// on the modeled-NUMA cells via [`EngineEntry::pinned`]).
    pub pin: bool,
    run: EntryRunner,
    rig: EntryRig,
    serve: EntryServe,
    serve_wire: EntryServeWire,
    conformance: Box<dyn Fn() + Send + Sync>,
    service_conformance: Box<dyn Fn() + Send + Sync>,
}

impl EngineEntry {
    /// Build an entry from an engine factory. A fresh engine is constructed
    /// per run so successive runs never share state (one throwaway instance
    /// is constructed here to read the static [`TxnEngine::shards`] axis).
    pub fn new<E, F>(engine: impl Into<String>, time_base: impl Into<String>, factory: F) -> Self
    where
        E: TxnEngine,
        F: Fn() -> E + Send + Sync + 'static,
    {
        let factory = std::sync::Arc::new(factory);
        let run_factory = std::sync::Arc::clone(&factory);
        let rig_factory = std::sync::Arc::clone(&factory);
        let serve_factory = std::sync::Arc::clone(&factory);
        let wire_factory = std::sync::Arc::clone(&factory);
        let service_conf_factory = std::sync::Arc::clone(&factory);
        let shards = factory().shards();
        EngineEntry {
            engine: engine.into(),
            time_base: time_base.into(),
            shards,
            pin: false,
            run: Box::new(move |wl, placement, threads, window, pin| {
                run_workload_pinned(run_factory(), wl, placement, threads, window, pin)
            }),
            rig: Box::new(move |wl, threads| make_rig(rig_factory(), wl, threads)),
            serve: Box::new(move |spec| {
                crate::service_bench::run_service_bench(serve_factory(), spec)
            }),
            serve_wire: Box::new(move |spec| crate::net_bench::run_net_bench(wire_factory(), spec)),
            conformance: Box::new(move || lsa_engine::conformance::full_suite(&factory())),
            service_conformance: Box::new(move || {
                lsa_service::conformance::service_suite(&service_conf_factory())
            }),
        }
    }

    /// Mark this entry's runs as thread-pinned: workers are pinned to cores
    /// before the measurement barrier. Used by the modeled-NUMA
    /// (`numa-altix`) cells, whose per-node time-base state assumes threads
    /// stay put.
    pub fn pinned(mut self) -> Self {
        self.pin = true;
        self
    }

    /// `engine(time_base)` label for output.
    pub fn label(&self) -> String {
        format!("{}({})", self.engine, self.time_base)
    }

    /// Run `workload` on a freshly constructed engine.
    pub fn run(&self, workload: &Workload, threads: usize, window: Duration) -> RunOutcome {
        (self.run)(workload, PlacementHint::Spread, threads, window, self.pin)
    }

    /// [`run`](EngineEntry::run) with an explicit [`PlacementHint`] — the
    /// matrix's `partitioned` vs `spread` contrast.
    pub fn run_placed(
        &self,
        workload: &Workload,
        placement: PlacementHint,
        threads: usize,
        window: Duration,
    ) -> RunOutcome {
        (self.run)(workload, placement, threads, window, self.pin)
    }

    /// Run an open-loop service benchmark
    /// ([`crate::service_bench::run_service_bench`]) on a freshly
    /// constructed engine.
    pub fn serve(
        &self,
        spec: &crate::service_bench::ServiceSpec,
    ) -> crate::service_bench::ServiceOutcome {
        (self.serve)(spec)
    }

    /// Run an open-loop wire benchmark over a loopback TCP socket
    /// ([`crate::net_bench::run_net_bench`]) on a freshly constructed
    /// engine: the full `lsa-wire` serving path, framing and in-flight
    /// windows included.
    pub fn serve_wire(&self, spec: &crate::net_bench::NetSpec) -> crate::net_bench::NetOutcome {
        (self.serve_wire)(spec)
    }

    /// Build a fresh engine + workload instance and return its type-erased
    /// worker factory — for measurement loops the timed runner does not fit
    /// (criterion `b.iter`, custom sweeps). Workers from one rig share the
    /// workload's objects; `threads` sizes partitioned workloads.
    pub fn bench_rig(&self, workload: &Workload, threads: usize) -> WorkerRig {
        (self.rig)(workload, threads)
    }

    /// Run the engine-generic conformance suite
    /// ([`lsa_engine::conformance::full_suite`]) on a freshly constructed
    /// engine. Panics on any violation — every entry added to the registry
    /// inherits the full correctness suite through this hook.
    pub fn run_conformance(&self) {
        (self.conformance)()
    }

    /// Run the service-driven conformance suite
    /// ([`lsa_service::conformance::service_suite`]) on a freshly
    /// constructed engine: concurrent request submissions through the
    /// `lsa-service` worker pool must commit a serializable history.
    pub fn run_service_conformance(&self) {
        (self.service_conformance)()
    }
}

/// Find a registry entry by engine family and time-base name.
pub fn find_entry<'r>(
    registry: &'r [EngineEntry],
    engine: &str,
    time_base: &str,
) -> Option<&'r EngineEntry> {
    registry
        .iter()
        .find(|e| e.engine == engine && e.time_base == time_base)
}

/// An LSA-RT entry on an externally synchronized clock with deviation bound
/// `dev_ns` and `versions` retained versions — the parameterized constructor
/// the EXP-ERR sweep builds its cells from.
pub fn lsa_external_entry(dev_ns: u64, versions: usize) -> EngineEntry {
    EngineEntry::new(
        "lsa-rt",
        format!("external-{}us-mv{}", dev_ns / 1_000, versions),
        move || {
            let mut cfg = StmConfig::multi_version(versions);
            cfg.extend_on_read = true;
            Stm::with_config(
                ExternalClock::with_policy(dev_ns, OffsetPolicy::Alternating),
                cfg,
            )
        },
    )
}

/// The default registry: LSA-RT, TL2, the validation STM and NOrec, each on
/// every time base (or mode) it supports — the cross-engine design-space
/// matrix of the paper's §1.2, commit-arbitration variants included. GV4
/// and GV5 are TL2-only: LSA rejects non-commit-monotonic bases by
/// construction (GV4 adoption commits at previously readable values, GV5
/// commit times run ahead of the readable counter).
pub fn default_registry() -> Vec<EngineEntry> {
    vec![
        EngineEntry::new(
            "lsa-rt",
            "shared-counter",
            || Stm::new(SharedCounter::new()),
        ),
        EngineEntry::new("lsa-rt", "block64", || Stm::new(BlockCounter::new(64))),
        EngineEntry::new("lsa-rt", "perfect", || Stm::new(PerfectClock::new())),
        EngineEntry::new("lsa-rt", "mmtimer-free", || {
            Stm::new(HardwareClock::mmtimer_free())
        }),
        EngineEntry::new("lsa-rt", "mmtimer", || Stm::new(HardwareClock::mmtimer())),
        EngineEntry::new("lsa-rt", "numa-altix", || {
            Stm::new(NumaCounter::new(NumaModel::altix()))
        })
        .pinned(),
        EngineEntry::new("lsa-rt", "external-10us", || {
            Stm::with_config(
                ExternalClock::with_policy(10_000, OffsetPolicy::Alternating),
                StmConfig::multi_version(8),
            )
        }),
        // The sharded LSA runtime: disjoint object shards, per-shard
        // arbitration, cross-shard two-phase commits (DESIGN.md §9). Only
        // composable bases appear — the composite rejects gv4/gv5 (not
        // commit-monotonic) and real-time bases (best-effort blocks).
        EngineEntry::new("lsa-sharded", "shared-counter", || {
            ShardedStm::new(SharedCounter::new(), DEFAULT_SHARDS)
        }),
        EngineEntry::new("lsa-sharded", "block64", || {
            ShardedStm::new(BlockCounter::new(64), DEFAULT_SHARDS)
        }),
        EngineEntry::new("lsa-sharded", "numa-altix", || {
            ShardedStm::new(NumaCounter::new(NumaModel::altix()), DEFAULT_SHARDS)
        })
        .pinned(),
        EngineEntry::new(
            "tl2",
            "shared-counter",
            || Tl2Stm::new(SharedCounter::new()),
        ),
        EngineEntry::new("tl2", "gv4", || Tl2Stm::new(Gv4Counter::new())),
        EngineEntry::new("tl2", "gv5", || Tl2Stm::new(Gv5Counter::new())),
        EngineEntry::new("tl2", "block64", || Tl2Stm::new(BlockCounter::new(64))),
        EngineEntry::new("tl2", "perfect", || Tl2Stm::new(PerfectClock::new())),
        EngineEntry::new("tl2", "mmtimer-free", || {
            Tl2Stm::new(HardwareClock::mmtimer_free())
        }),
        EngineEntry::new("validation", "always", || {
            ValidationStm::new(ValidationMode::Always)
        }),
        EngineEntry::new("validation", "commit-counter", || {
            ValidationStm::new(ValidationMode::CommitCounter)
        }),
        EngineEntry::new("norec", "seqlock", NorecStm::new),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_spans_four_engines_and_multiple_time_bases() {
        let reg = default_registry();
        let engines: std::collections::BTreeSet<_> =
            reg.iter().map(|e| e.engine.as_str()).collect();
        assert!(
            engines.len() >= 4,
            "need >= 4 engine families, got {engines:?}"
        );
        assert!(
            engines.contains("norec"),
            "value-validation engine missing from the registry"
        );
        let lsa_bases = reg.iter().filter(|e| e.engine == "lsa-rt").count();
        let tl2_bases = reg.iter().filter(|e| e.engine == "tl2").count();
        assert!(
            lsa_bases >= 2 && tl2_bases >= 2,
            "need >= 2 time bases per engine"
        );
    }

    #[test]
    fn arbitration_rows_are_registered() {
        let reg = default_registry();
        for (engine, tb) in [
            ("lsa-rt", "block64"),
            ("tl2", "gv4"),
            ("tl2", "gv5"),
            ("tl2", "block64"),
        ] {
            assert!(
                find_entry(&reg, engine, tb).is_some(),
                "missing {engine}({tb}) row"
            );
        }
        // GV4 and GV5 must NOT be paired with LSA: the engine rejects
        // non-commit-monotonic bases (see lsa_stm::Stm::with_cm) — GV4
        // adoption commits at previously readable values, GV5 commit times
        // run ahead of the readable counter.
        assert!(find_entry(&reg, "lsa-rt", "gv4").is_none());
        assert!(find_entry(&reg, "lsa-rt", "gv5").is_none());
    }

    #[test]
    fn every_entry_runs_the_bank_workload() {
        let wl = Workload::Bank(BankConfig {
            accounts: 8,
            initial: 100,
            audit_percent: 25,
        });
        for entry in default_registry() {
            let out = entry.run(&wl, 2, Duration::from_millis(10));
            assert!(
                out.commits() > 0,
                "{} committed nothing on the bank workload",
                entry.label()
            );
        }
    }

    #[test]
    fn every_entry_runs_the_disjoint_workload() {
        let wl = Workload::Disjoint(DisjointConfig {
            objects_per_thread: 16,
            accesses_per_tx: 4,
        });
        for entry in default_registry() {
            let out = entry.run(&wl, 2, Duration::from_millis(5));
            assert!(out.commits() > 0, "{} committed nothing", entry.label());
            if entry.time_base == "gv5" {
                // GV5's counter lags even a thread's own commits, so every
                // update transaction pays ~1 catch-up abort — the price of
                // the load-only commit path, visible by design.
                continue;
            }
            assert_eq!(
                out.aborts(),
                0,
                "{} aborted on disjoint work",
                entry.label()
            );
        }
    }

    #[test]
    fn sharded_rows_are_registered_and_report_cross_shard_commits() {
        let reg = default_registry();
        let sharded: Vec<_> = reg.iter().filter(|e| e.engine == "lsa-sharded").collect();
        assert!(
            sharded.len() >= 3,
            "need >= 3 lsa-sharded cells, got {}",
            sharded.len()
        );
        for tb in ["shared-counter", "block64", "numa-altix"] {
            let entry = find_entry(&reg, "lsa-sharded", tb)
                .unwrap_or_else(|| panic!("missing lsa-sharded({tb}) row"));
            assert_eq!(entry.shards, DEFAULT_SHARDS, "shard axis not surfaced");
        }
        assert_eq!(
            find_entry(&reg, "lsa-rt", "shared-counter").unwrap().shards,
            1,
            "unsharded engines report one shard"
        );
        // The bank workload spreads accounts round-robin across shards, so
        // transfers span shards and the cross-shard protocol must fire.
        let entry = find_entry(&reg, "lsa-sharded", "shared-counter").unwrap();
        let out = entry.run(
            &Workload::Bank(BankConfig {
                accounts: 16,
                initial: 100,
                audit_percent: 10,
            }),
            2,
            Duration::from_millis(20),
        );
        assert!(out.commits() > 0);
        assert!(
            out.stats.cross_shard_commits > 0,
            "bank transfers on 8 shards must escalate to cross-shard commits"
        );
    }

    #[test]
    fn numa_rows_are_pinned_and_memory_gauges_flow() {
        let reg = default_registry();
        assert!(find_entry(&reg, "lsa-rt", "numa-altix").unwrap().pin);
        assert!(find_entry(&reg, "lsa-sharded", "numa-altix").unwrap().pin);
        assert!(
            !find_entry(&reg, "lsa-rt", "shared-counter").unwrap().pin,
            "only the modeled-NUMA cells pin by default"
        );
        // Any LSA run must surface the version-store gauges in its outcome:
        // the bank's account objects alone hold live versions.
        let entry = find_entry(&reg, "lsa-rt", "shared-counter").unwrap();
        let out = entry.run(
            &Workload::Bank(BankConfig {
                accounts: 8,
                initial: 100,
                audit_percent: 25,
            }),
            2,
            Duration::from_millis(10),
        );
        assert!(
            out.stats.memory.versions_live >= 8,
            "live-version gauge not sampled: {:?}",
            out.stats.memory
        );
    }

    #[test]
    fn every_entry_runs_the_intset_workload() {
        let wl = Workload::Intset(IntsetConfig {
            key_range: 32,
            initial: 16,
            member_percent: 50,
        });
        for entry in default_registry() {
            let out = entry.run(&wl, 2, Duration::from_millis(5));
            assert!(out.commits() > 0, "{} committed nothing", entry.label());
        }
    }

    #[test]
    fn every_entry_runs_the_hashset_workload() {
        let wl = Workload::Hashset(HashsetConfig {
            key_range: 128,
            initial: 64,
            member_percent: 50,
            buckets: 16,
        });
        for entry in default_registry() {
            let out = entry.run(&wl, 2, Duration::from_millis(5));
            assert!(out.commits() > 0, "{} committed nothing", entry.label());
        }
    }

    #[test]
    fn every_entry_runs_the_scan_workload() {
        let wl = Workload::Scan(ScanConfig { objects: 12 });
        for entry in default_registry() {
            let out = entry.run(&wl, 2, Duration::from_millis(5));
            assert!(out.commits() > 0, "{} scanned nothing", entry.label());
            assert_eq!(
                out.stats.commits,
                0,
                "{} scans must be read-only",
                entry.label()
            );
        }
    }

    #[test]
    fn every_entry_runs_the_snapshot_workload() {
        let wl = Workload::Snapshot(SnapshotConfig {
            keys: 24,
            scan_percent: 80,
            scan_window: 24,
        });
        for entry in default_registry() {
            let out = entry.run(&wl, 2, Duration::from_millis(5));
            assert!(out.commits() > 0, "{} committed nothing", entry.label());
            assert!(
                out.stats.ro_commits > 0,
                "{} ran no analytics scans",
                entry.label()
            );
        }
    }

    #[test]
    fn placement_contrast_on_the_sharded_row() {
        let reg = default_registry();
        let entry = find_entry(&reg, "lsa-sharded", "shared-counter").unwrap();
        let wl = Workload::Bank(BankConfig {
            accounts: 32,
            initial: 100,
            audit_percent: 0,
        });
        let spread = entry.run_placed(&wl, PlacementHint::Spread, 2, Duration::from_millis(15));
        let part = entry.run_placed(
            &wl,
            PlacementHint::Partitioned,
            2,
            Duration::from_millis(15),
        );
        assert!(
            spread.stats.cross_shard_commits > 0,
            "spread transfers must cross shards"
        );
        assert_eq!(
            part.stats.cross_shard_commits, 0,
            "partitioned transfers must stay shard-local"
        );
    }

    #[test]
    fn entries_serve_open_loop_requests() {
        use crate::service_bench::{RequestKind, ServiceSpec};
        let reg = default_registry();
        for (engine, tb) in [("lsa-rt", "shared-counter"), ("lsa-sharded", "block64")] {
            let entry = find_entry(&reg, engine, tb).unwrap();
            let out = entry.serve(&ServiceSpec {
                kind: RequestKind::Bank,
                rate: 1_000.0,
                duration: Duration::from_millis(60),
                workers: 2,
                queue_depth: 64,
                placement: PlacementHint::Partitioned,
            });
            assert!(out.completed > 0, "{engine}({tb}) served nothing");
            assert_eq!(out.completed + out.shed, out.offered);
        }
    }

    #[test]
    fn entries_serve_requests_over_the_wire() {
        use crate::net_bench::{NetKind, NetSpec};
        let reg = default_registry();
        for (engine, tb) in [("lsa-rt", "shared-counter"), ("lsa-sharded", "block64")] {
            let entry = find_entry(&reg, engine, tb).unwrap();
            let out = entry.serve_wire(&NetSpec {
                kind: NetKind::Bank,
                rate: 1_000.0,
                duration: Duration::from_millis(60),
                workers: 2,
                queue_depth: 64,
                window: 32,
                conns: 2,
            });
            assert!(
                out.completed > 0,
                "{engine}({tb}) served nothing over the wire"
            );
            assert_eq!(out.completed + out.shed + out.errors, out.offered);
        }
    }

    #[test]
    fn service_conformance_hook_runs() {
        let reg = default_registry();
        let entry = find_entry(&reg, "lsa-rt", "shared-counter").unwrap();
        entry.run_service_conformance();
    }

    #[test]
    fn bench_rig_workers_share_workload_state() {
        let reg = default_registry();
        let entry = find_entry(&reg, "lsa-rt", "shared-counter").unwrap();
        let rig = entry.bench_rig(
            &Workload::Disjoint(DisjointConfig {
                objects_per_thread: 8,
                accesses_per_tx: 2,
            }),
            2,
        );
        let mut w0 = rig(0);
        let mut w1 = rig(1);
        for _ in 0..5 {
            w0.step();
            w1.step();
        }
        let total: u64 = [&w0, &w1].iter().map(|w| w.worker_stats().commits).sum();
        assert_eq!(total, 10, "both workers ran against one workload");
    }

    #[test]
    fn parameterized_external_entries_label_and_run() {
        let entry = lsa_external_entry(10_000, 8);
        assert_eq!(entry.label(), "lsa-rt(external-10us-mv8)");
        let out = entry.run(
            &Workload::Bank(BankConfig {
                accounts: 8,
                initial: 50,
                audit_percent: 20,
            }),
            2,
            Duration::from_millis(5),
        );
        assert!(out.commits() > 0);
    }
}
