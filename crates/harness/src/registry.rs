//! The engine registry: every workload × engine × time-base combination the
//! harness can drive, behind one uniform interface.
//!
//! Before the `TxnEngine` refactor each experiment binary hand-wired its own
//! engine setup; adding an engine meant touching every `bin/*.rs`. Now an
//! engine × time-base combination is one [`EngineEntry`] constructed from a
//! factory closure, and every entry can run every [`Workload`] through the
//! same engine-generic runner ([`run_workload`]). The `matrix` binary prints
//! the full sweep; tests and future experiments can filter the registry.

use crate::runner::{run_for, RunOutcome};
use lsa_baseline::{NorecStm, Tl2Stm, ValidationMode, ValidationStm};
use lsa_engine::TxnEngine;
use lsa_stm::{Stm, StmConfig};
use lsa_time::counter::{SharedCounter, Tl2Counter};
use lsa_time::external::{ExternalClock, OffsetPolicy};
use lsa_time::hardware::HardwareClock;
use lsa_time::perfect::PerfectClock;
use lsa_workloads::{BankConfig, BankWorkload, DisjointConfig, DisjointWorkload};
use std::time::Duration;

/// A workload selection with its parameters.
#[derive(Clone, Copy, Debug)]
pub enum Workload {
    /// Transfers + read-only audits ([`lsa_workloads::bank`]). The runner
    /// asserts the invariant total after every run.
    Bank(BankConfig),
    /// The §4.2 disjoint-update workload ([`lsa_workloads::disjoint`]).
    Disjoint(DisjointConfig),
}

impl Workload {
    /// Short name for tables and CLI parsing.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Bank(_) => "bank",
            Workload::Disjoint(_) => "disjoint",
        }
    }
}

/// Run `workload` on `engine` with `threads` workers for `window`.
///
/// This is the single engine-generic entry point every registry entry and
/// experiment shares: one monomorphization per engine type, zero per-engine
/// harness code.
pub fn run_workload<E: TxnEngine>(
    engine: E,
    workload: &Workload,
    threads: usize,
    window: Duration,
) -> RunOutcome {
    match workload {
        Workload::Bank(cfg) => {
            let wl = BankWorkload::new(engine, *cfg);
            let out = run_for(threads, window, |i| wl.worker(i));
            assert_eq!(
                wl.quiescent_total(),
                wl.expected_total(),
                "bank invariant broken on {}",
                wl.engine().engine_name()
            );
            out
        }
        Workload::Disjoint(cfg) => {
            let wl = DisjointWorkload::new(engine, threads, *cfg);
            let out = run_for(threads, window, |i| wl.worker(i));
            assert_eq!(
                wl.total(),
                out.commits() * cfg.accesses_per_tx as u64,
                "disjoint accounting broken on {}",
                wl.engine().engine_name()
            );
            out
        }
    }
}

/// Type-erased runner stored in an [`EngineEntry`].
type EntryRunner = Box<dyn Fn(&Workload, usize, Duration) -> RunOutcome + Send + Sync>;

/// One engine × time-base combination, ready to run any [`Workload`].
pub struct EngineEntry {
    /// Engine family, e.g. `"lsa-rt"`.
    pub engine: &'static str,
    /// Time base (or mode for the validation engine), e.g. `"mmtimer-free"`.
    pub time_base: &'static str,
    run: EntryRunner,
    conformance: Box<dyn Fn() + Send + Sync>,
}

impl EngineEntry {
    /// Build an entry from an engine factory. A fresh engine is constructed
    /// per run so successive runs never share state.
    pub fn new<E, F>(engine: &'static str, time_base: &'static str, factory: F) -> Self
    where
        E: TxnEngine,
        F: Fn() -> E + Send + Sync + 'static,
    {
        let factory = std::sync::Arc::new(factory);
        let run_factory = std::sync::Arc::clone(&factory);
        EngineEntry {
            engine,
            time_base,
            run: Box::new(move |wl, threads, window| {
                run_workload(run_factory(), wl, threads, window)
            }),
            conformance: Box::new(move || lsa_engine::conformance::full_suite(&factory())),
        }
    }

    /// `engine(time_base)` label for output.
    pub fn label(&self) -> String {
        format!("{}({})", self.engine, self.time_base)
    }

    /// Run `workload` on a freshly constructed engine.
    pub fn run(&self, workload: &Workload, threads: usize, window: Duration) -> RunOutcome {
        (self.run)(workload, threads, window)
    }

    /// Run the engine-generic conformance suite
    /// ([`lsa_engine::conformance::full_suite`]) on a freshly constructed
    /// engine. Panics on any violation — every entry added to the registry
    /// inherits the full correctness suite through this hook.
    pub fn run_conformance(&self) {
        (self.conformance)()
    }
}

/// The default registry: LSA-RT, TL2, the validation STM and NOrec, each on
/// every time base (or mode) it supports — the cross-engine design-space
/// matrix of the paper's §1.2, value-based validation included.
pub fn default_registry() -> Vec<EngineEntry> {
    vec![
        EngineEntry::new(
            "lsa-rt",
            "shared-counter",
            || Stm::new(SharedCounter::new()),
        ),
        EngineEntry::new("lsa-rt", "tl2-counter", || Stm::new(Tl2Counter::new())),
        EngineEntry::new("lsa-rt", "perfect", || Stm::new(PerfectClock::new())),
        EngineEntry::new("lsa-rt", "mmtimer-free", || {
            Stm::new(HardwareClock::mmtimer_free())
        }),
        EngineEntry::new("lsa-rt", "external-10us", || {
            Stm::with_config(
                ExternalClock::with_policy(10_000, OffsetPolicy::Alternating),
                StmConfig::multi_version(8),
            )
        }),
        EngineEntry::new(
            "tl2",
            "shared-counter",
            || Tl2Stm::new(SharedCounter::new()),
        ),
        EngineEntry::new("tl2", "perfect", || Tl2Stm::new(PerfectClock::new())),
        EngineEntry::new("tl2", "mmtimer-free", || {
            Tl2Stm::new(HardwareClock::mmtimer_free())
        }),
        EngineEntry::new("validation", "always", || {
            ValidationStm::new(ValidationMode::Always)
        }),
        EngineEntry::new("validation", "commit-counter", || {
            ValidationStm::new(ValidationMode::CommitCounter)
        }),
        EngineEntry::new("norec", "seqlock", NorecStm::new),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_spans_four_engines_and_multiple_time_bases() {
        let reg = default_registry();
        let engines: std::collections::BTreeSet<_> = reg.iter().map(|e| e.engine).collect();
        assert!(
            engines.len() >= 4,
            "need >= 4 engine families, got {engines:?}"
        );
        assert!(
            engines.contains("norec"),
            "value-validation engine missing from the registry"
        );
        let lsa_bases = reg.iter().filter(|e| e.engine == "lsa-rt").count();
        let tl2_bases = reg.iter().filter(|e| e.engine == "tl2").count();
        assert!(
            lsa_bases >= 2 && tl2_bases >= 2,
            "need >= 2 time bases per engine"
        );
    }

    #[test]
    fn every_entry_runs_the_bank_workload() {
        let wl = Workload::Bank(BankConfig {
            accounts: 8,
            initial: 100,
            audit_percent: 25,
        });
        for entry in default_registry() {
            let out = entry.run(&wl, 2, Duration::from_millis(10));
            assert!(
                out.commits() > 0,
                "{} committed nothing on the bank workload",
                entry.label()
            );
        }
    }

    #[test]
    fn every_entry_runs_the_disjoint_workload() {
        let wl = Workload::Disjoint(DisjointConfig {
            objects_per_thread: 16,
            accesses_per_tx: 4,
        });
        for entry in default_registry() {
            let out = entry.run(&wl, 2, Duration::from_millis(5));
            assert!(out.commits() > 0, "{} committed nothing", entry.label());
            assert_eq!(
                out.aborts(),
                0,
                "{} aborted on disjoint work",
                entry.label()
            );
        }
    }
}
