//! Thread orchestration and throughput measurement.
//!
//! All real-thread experiments share this runner: spawn `n` workers, release
//! them simultaneously through a barrier, run for a fixed wall-clock
//! duration, collect per-thread statistics. Workers are built *before* the
//! barrier so allocation and registration never pollute the measured window.

use lsa_engine::EngineStats;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// A measurable workload worker: one `step` = one transaction (or one
/// logical operation).
pub trait BenchWorker: Send {
    /// Execute one unit of work.
    fn step(&mut self);
    /// Statistics accumulated so far, on the engine-shared surface.
    fn worker_stats(&self) -> EngineStats;
}

/// Outcome of a timed run. Commit/abort totals are views over the single
/// source of truth, the merged [`EngineStats`].
#[derive(Clone, Copy, Debug)]
pub struct RunOutcome {
    /// Worker thread count.
    pub threads: usize,
    /// Measured wall-clock window.
    pub elapsed: Duration,
    /// Total steps executed.
    pub steps: u64,
    /// Full merged per-thread statistics (validation cost included).
    pub stats: EngineStats,
}

impl RunOutcome {
    /// Total committed transactions (update + read-only).
    pub fn commits(&self) -> u64 {
        self.stats.total_commits()
    }

    /// Total aborted attempts.
    pub fn aborts(&self) -> u64 {
        self.stats.aborts
    }

    /// Committed transactions per second.
    pub fn tx_per_sec(&self) -> f64 {
        self.commits() as f64 / self.elapsed.as_secs_f64()
    }

    /// Committed transactions per second, in millions (the paper's Figure 2
    /// y-axis unit).
    pub fn mtx_per_sec(&self) -> f64 {
        self.tx_per_sec() / 1e6
    }

    /// Aborts per commit.
    pub fn abort_ratio(&self) -> f64 {
        if self.commits() == 0 {
            0.0
        } else {
            self.aborts() as f64 / self.commits() as f64
        }
    }
}

/// Run `threads` workers for `duration`; `make(i)` builds worker `i`.
pub fn run_for<W, F>(threads: usize, duration: Duration, make: F) -> RunOutcome
where
    W: BenchWorker,
    F: Fn(usize) -> W + Sync,
{
    run_for_pinned(threads, duration, false, make)
}

/// [`run_for`] with optional thread pinning: worker `i` is pinned to
/// available core `i % cores` before the start barrier, so the measured
/// window never sees a migration. Pinning is best-effort — when the
/// platform refuses (or `pin` is `false`) workers run wherever the
/// scheduler puts them. The registry's modeled-NUMA cells use this: a
/// thread hopping cores mid-run would smear the modeled per-node time-base
/// state across cores.
pub fn run_for_pinned<W, F>(threads: usize, duration: Duration, pin: bool, make: F) -> RunOutcome
where
    W: BenchWorker,
    F: Fn(usize) -> W + Sync,
{
    assert!(threads >= 1);
    let barrier = Barrier::new(threads + 1);
    let stop = AtomicBool::new(false);
    let cores = if pin {
        core_affinity::get_core_ids()
    } else {
        None
    };

    let (elapsed, per_thread) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let barrier = &barrier;
                let stop = &stop;
                let cores = &cores;
                let mut worker = make(i);
                s.spawn(move || {
                    if let Some(cores) = cores {
                        // Before the barrier: the pinning syscall happens in
                        // the setup phase, never inside the measured window.
                        core_affinity::set_for_current(cores[i % cores.len()]);
                    }
                    barrier.wait();
                    let mut steps = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        worker.step();
                        steps += 1;
                    }
                    (steps, worker.worker_stats())
                })
            })
            .collect();

        barrier.wait();
        let start = Instant::now();
        while start.elapsed() < duration {
            std::thread::sleep(Duration::from_millis(1).min(duration));
        }
        stop.store(true, Ordering::Relaxed);
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (start.elapsed(), results)
    });

    aggregate(threads, elapsed, per_thread)
}

fn aggregate(threads: usize, elapsed: Duration, per_thread: Vec<(u64, EngineStats)>) -> RunOutcome {
    let mut outcome = RunOutcome {
        threads,
        elapsed,
        steps: 0,
        stats: EngineStats::default(),
    };
    for (steps, stats) in per_thread {
        outcome.steps += steps;
        outcome.stats.merge(&stats);
    }
    outcome
}

/// Run exactly `steps_per_thread` steps on each of `threads` workers
/// (deterministic workloads for tests).
pub fn run_steps<W, F>(threads: usize, steps_per_thread: u64, make: F) -> RunOutcome
where
    W: BenchWorker,
    F: Fn(usize) -> W + Sync,
{
    assert!(threads >= 1);
    let barrier = Barrier::new(threads);
    let start = Instant::now();
    let per_thread: Vec<(u64, EngineStats)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let barrier = &barrier;
                let mut worker = make(i);
                s.spawn(move || {
                    barrier.wait();
                    for _ in 0..steps_per_thread {
                        worker.step();
                    }
                    (steps_per_thread, worker.worker_stats())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();

    aggregate(threads, elapsed, per_thread)
}

/// Duration knob shared by the figure binaries: `LSA_MEASURE_MS` overrides
/// the per-point measurement window (milliseconds).
pub fn measure_window(default_ms: u64) -> Duration {
    let ms = std::env::var("LSA_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(default_ms);
    Duration::from_millis(ms.max(1))
}

// Blanket adapters so workload workers plug straight into the runner — on
// ANY engine, thanks to the `TxnEngine` abstraction.
use lsa_engine::TxnEngine;

impl<E: TxnEngine> BenchWorker for lsa_workloads::DisjointWorker<E> {
    fn step(&mut self) {
        lsa_workloads::DisjointWorker::step(self);
    }

    fn worker_stats(&self) -> EngineStats {
        self.stats()
    }
}

impl<E: TxnEngine> BenchWorker for lsa_workloads::BankWorker<E> {
    fn step(&mut self) {
        lsa_workloads::BankWorker::step(self);
    }

    fn worker_stats(&self) -> EngineStats {
        self.stats()
    }
}

impl<E: TxnEngine> BenchWorker for lsa_workloads::ScanWorker<E> {
    fn step(&mut self) {
        lsa_workloads::ScanWorker::step(self);
    }

    fn worker_stats(&self) -> EngineStats {
        self.stats()
    }
}

impl<E: TxnEngine> BenchWorker for lsa_workloads::IntsetWorker<E> {
    fn step(&mut self) {
        lsa_workloads::IntsetWorker::step(self);
    }

    fn worker_stats(&self) -> EngineStats {
        self.stats()
    }
}

impl<E: TxnEngine> BenchWorker for lsa_workloads::HashsetWorker<E> {
    fn step(&mut self) {
        lsa_workloads::HashsetWorker::step(self);
    }

    fn worker_stats(&self) -> EngineStats {
        self.stats()
    }
}

impl<E: TxnEngine> BenchWorker for lsa_workloads::SnapshotWorker<E> {
    fn step(&mut self) {
        lsa_workloads::SnapshotWorker::step(self);
    }

    fn worker_stats(&self) -> EngineStats {
        self.stats()
    }
}

impl BenchWorker for Box<dyn BenchWorker> {
    fn step(&mut self) {
        (**self).step();
    }

    fn worker_stats(&self) -> EngineStats {
        (**self).worker_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_stm::Stm;
    use lsa_time::counter::SharedCounter;
    use lsa_workloads::{DisjointConfig, DisjointWorkload};

    #[test]
    fn run_steps_counts_exactly() {
        let wl = DisjointWorkload::new(
            Stm::new(SharedCounter::new()),
            2,
            DisjointConfig {
                objects_per_thread: 32,
                accesses_per_tx: 4,
            },
        );
        let out = run_steps(2, 100, |i| wl.worker(i));
        assert_eq!(out.steps, 200);
        assert_eq!(out.commits(), 200);
        assert_eq!(out.aborts(), 0);
        assert_eq!(wl.total(), 200 * 4);
    }

    #[test]
    fn run_for_executes_and_measures() {
        let wl = DisjointWorkload::new(
            Stm::new(SharedCounter::new()),
            1,
            DisjointConfig {
                objects_per_thread: 16,
                accesses_per_tx: 2,
            },
        );
        let out = run_for(1, Duration::from_millis(30), |i| wl.worker(i));
        assert!(out.commits() > 0, "some transactions must commit in 30 ms");
        assert!(out.elapsed >= Duration::from_millis(30));
        assert!(out.tx_per_sec() > 0.0);
        assert_eq!(out.commits(), out.steps, "no aborts in disjoint workload");
    }

    #[test]
    fn pinned_run_completes_work() {
        let wl = DisjointWorkload::new(
            Stm::new(SharedCounter::new()),
            2,
            DisjointConfig {
                objects_per_thread: 16,
                accesses_per_tx: 2,
            },
        );
        // Best-effort pinning must never break a run, pinnable or not.
        let out = run_for_pinned(2, Duration::from_millis(20), true, |i| wl.worker(i));
        assert!(out.commits() > 0, "pinned workers must make progress");
    }

    #[test]
    fn measure_window_env_override() {
        std::env::remove_var("LSA_MEASURE_MS");
        assert_eq!(measure_window(250), Duration::from_millis(250));
    }
}
