//! Open-loop load generation against the `lsa-service` front-end.
//!
//! The closed-loop `BenchWorker` runner measures *capacity*: each thread
//! fires its next transaction the instant the previous one finishes, so
//! queueing never appears and latency is invisible. Serving behaviour needs
//! the open-loop lens instead: requests *arrive* on a fixed schedule
//! (`rate` per second) regardless of how fast the system drains them, so
//! queueing delay shows up in the latency percentiles and overload shows up
//! as a shed rate — the two columns capacity numbers cannot produce. This
//! is how the engine × time-base matrix becomes a *service* benchmark
//! (throughput, p50/p90/p99/max, shed rate per cell).
//!
//! Three request types mirror the workload axis: `bank` (transfers +
//! audits, shard-affine under partitioned placement), `intset` (sorted-list
//! member/insert/remove) and `snapshot` (the analytics scans that separate
//! multi-version from single-version engines). Invariants are asserted
//! inside the request bodies, so the bench doubles as an end-to-end
//! consistency check of the serving path.

use lsa_engine::{EngineHandle, EngineStats, EngineVar, MemoryStats, TxnEngine, TxnOps};
use lsa_service::pool::WeakPool;
use lsa_service::{
    LatencyHistogram, Pool, PoolStats, RunRequest, ServiceConfig, SubmitError, TxnService,
};
use lsa_workloads::{
    BankConfig, BankWorkload, FastRng, IntSetList, PlacementHint, SnapshotConfig, SnapshotWorkload,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which request mix the load generator submits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// Transfers (80%) + full-table audits (20%); audits assert the
    /// invariant total inside the request.
    Bank,
    /// Sorted-list member (60%) / insert (20%) / remove (20%).
    Intset,
    /// Snapshot analytics: full-table scans (80%, asserting the zero-sum
    /// invariant) + zero-sum update transfers (20%).
    Snapshot,
}

impl RequestKind {
    /// All kinds, in table order.
    pub const ALL: [RequestKind; 3] = [
        RequestKind::Bank,
        RequestKind::Intset,
        RequestKind::Snapshot,
    ];

    /// Short name for tables and CLI parsing.
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Bank => "bank",
            RequestKind::Intset => "intset",
            RequestKind::Snapshot => "snapshot",
        }
    }

    /// Parse a CLI argument.
    pub fn parse(s: &str) -> Option<Self> {
        RequestKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// Parameters of one open-loop service run.
#[derive(Clone, Copy, Debug)]
pub struct ServiceSpec {
    /// Request mix.
    pub kind: RequestKind,
    /// Offered arrival rate, requests per second.
    pub rate: f64,
    /// Submission window (drain time comes on top).
    pub duration: Duration,
    /// Service worker threads.
    pub workers: usize,
    /// Per-worker bounded queue depth (admission limit).
    pub queue_depth: usize,
    /// Object placement: `Partitioned` pins bank account groups
    /// shard-locally and routes their transfers shard-affinely.
    pub placement: PlacementHint,
}

impl Default for ServiceSpec {
    fn default() -> Self {
        ServiceSpec {
            kind: RequestKind::Bank,
            rate: 5_000.0,
            duration: Duration::from_millis(500),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(2),
            queue_depth: 256,
            placement: PlacementHint::Spread,
        }
    }
}

/// Outcome of one open-loop run.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// Requests the generator offered (admitted + shed).
    pub offered: u64,
    /// Requests that completed.
    pub completed: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Wall clock from first arrival to full drain.
    pub elapsed: Duration,
    /// Submission-to-completion latency distribution.
    pub latency: LatencyHistogram,
    /// Merged worker engine statistics (sheds under
    /// `abort_reasons.overload`).
    pub engine: EngineStats,
    /// Request-record pool accounting: after warm-up every arrival should
    /// reuse a recycled record (`hits`), so a high hit rate demonstrates
    /// the steady-state serving path allocates nothing per request.
    pub pool: PoolStats,
    /// A metrics-registry snapshot (JSON) taken at the halfway point of the
    /// submission window, while workers were mid-flight — the in-process
    /// twin of the wire-served `Stats` scrape. `None` for runs that skip
    /// the scrape (memory-ceiling rounds).
    pub mid_scrape: Option<String>,
}

impl ServiceOutcome {
    /// Completed requests per second (drain included).
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.elapsed.as_secs_f64()
    }

    /// Fraction of offered requests shed in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

/// Sleep-then-spin until `deadline`: coarse sleeps stop short of the target
/// so the arrival schedule keeps microsecond-ish precision at rates far
/// above the OS timer granularity.
fn wait_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > Duration::from_micros(300) {
            std::thread::sleep(remaining - Duration::from_micros(200));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// What one pooled request record executes on a worker. The variants
/// mirror the closure bodies of the legacy submission path; shared tables
/// travel as `Arc`s cloned from the [`Mix`], so arming a record clones two
/// `Arc`s at most — never a `Vec`, never a fresh box.
enum BenchOp<E: TxnEngine> {
    /// A recycled record waiting in the pool.
    Idle,
    /// Bank transfer between two endpoints.
    Transfer {
        a: EngineVar<E, i64>,
        b: EngineVar<E, i64>,
        amount: i64,
    },
    /// Whole-table audit asserting the invariant total.
    Audit {
        accounts: Arc<Vec<EngineVar<E, i64>>>,
        expected: i64,
    },
    /// Sorted-list member/insert/remove (op drawn 0..10 like the mix).
    Set {
        set: IntSetList<E>,
        op: usize,
        key: i64,
    },
    /// Snapshot analytics scan asserting the zero-sum invariant.
    Scan { vars: Arc<Vec<EngineVar<E, i64>>> },
    /// Zero-sum update transfer between two snapshot keys.
    ZeroSum {
        a: EngineVar<E, i64>,
        b: EngineVar<E, i64>,
        amount: i64,
    },
}

/// The pooled request record of the open-loop generator: armed with a
/// [`BenchOp`] before submission, executed once on a worker, then recycled
/// into its home pool — the serving path's allocation-free lifecycle
/// ([`RunRequest`]), exercised here exactly as the wire server exercises it.
struct BenchJob<E: TxnEngine> {
    op: BenchOp<E>,
    home: WeakPool<Box<BenchJob<E>>>,
}

impl<E: TxnEngine> RunRequest<E> for BenchJob<E> {
    fn run(&mut self, h: &mut E::Handle) {
        match std::mem::replace(&mut self.op, BenchOp::Idle) {
            BenchOp::Idle => unreachable!("record submitted without being armed"),
            BenchOp::Transfer { a, b, amount } => {
                h.atomically(|tx| {
                    let va = *tx.read(&a)?;
                    let vb = *tx.read(&b)?;
                    tx.write(&a, va - amount)?;
                    tx.write(&b, vb + amount)?;
                    Ok(())
                });
            }
            BenchOp::Audit { accounts, expected } => {
                let total = h.atomically(|tx| {
                    let mut sum = 0i64;
                    for a in accounts.iter() {
                        sum += *tx.read(a)?;
                    }
                    Ok(sum)
                });
                assert_eq!(total, expected, "service audit observed a torn snapshot");
            }
            BenchOp::Set { set, op, key } => {
                match op {
                    0..=5 => set.contains(h, key),
                    6 | 7 => set.insert(h, key),
                    _ => set.remove(h, key),
                };
            }
            BenchOp::Scan { vars } => {
                let sum = h.atomically(|tx| {
                    let mut s = 0i64;
                    for v in vars.iter() {
                        s += *tx.read(v)?;
                    }
                    Ok(s)
                });
                assert_eq!(sum, 0, "analytics request observed a torn snapshot");
            }
            BenchOp::ZeroSum { a, b, amount } => {
                h.atomically(|tx| {
                    tx.modify(&a, |v| v + amount)?;
                    tx.modify(&b, |v| v - amount)
                });
            }
        }
    }

    fn recycle(mut self: Box<Self>) {
        self.op = BenchOp::Idle;
        if let Some(pool) = self.home.upgrade() {
            pool.put(self);
        }
    }
}

/// The record pool of one run, sized so every record that can be admitted
/// at once (all worker queues full) has a recycled home to return to.
fn job_pool<E: TxnEngine>(workers: usize, queue_depth: usize) -> Pool<Box<BenchJob<E>>> {
    Pool::new(workers * queue_depth + 64)
}

/// The per-kind request state plus the submission logic. One value of this
/// enum is built before the run; `submit_one` draws a request from the mix,
/// arms a pooled record with it and submits the record.
enum Mix<E: TxnEngine> {
    Bank {
        wl: BankWorkload<E>,
        audit: Arc<Vec<EngineVar<E, i64>>>,
    },
    Intset {
        set: IntSetList<E>,
        key_range: i64,
    },
    Snapshot {
        wl: SnapshotWorkload<E>,
        scan: Arc<Vec<EngineVar<E, i64>>>,
    },
}

impl<E: TxnEngine> Mix<E> {
    fn build(engine: &E, kind: RequestKind, placement: PlacementHint) -> Self {
        match kind {
            RequestKind::Bank => {
                let wl = BankWorkload::with_placement(
                    engine.clone(),
                    BankConfig {
                        accounts: 64,
                        initial: 1_000,
                        audit_percent: 20,
                    },
                    placement,
                );
                let audit = Arc::new(wl.accounts().to_vec());
                Mix::Bank { wl, audit }
            }
            RequestKind::Intset => {
                let set = IntSetList::new(engine.clone());
                let key_range = 128i64;
                let mut h = engine.register();
                for k in (0..key_range).step_by(2) {
                    set.insert(&mut h, k);
                }
                Mix::Intset { set, key_range }
            }
            RequestKind::Snapshot => {
                let wl = SnapshotWorkload::new(
                    engine.clone(),
                    SnapshotConfig {
                        keys: 128,
                        scan_percent: 80,
                        scan_window: 128,
                    },
                );
                let scan = Arc::new(wl.vars().to_vec());
                Mix::Snapshot { wl, scan }
            }
        }
    }

    /// Draw one request from the mix: the op to arm a record with plus its
    /// shard-affinity hint.
    fn draw(&self, rng: &mut FastRng) -> (BenchOp<E>, Option<usize>) {
        match self {
            Mix::Bank { wl, audit } => {
                if rng.percent(20) {
                    // Audit: read every account, assert the invariant.
                    (
                        BenchOp::Audit {
                            accounts: Arc::clone(audit),
                            expected: wl.expected_total(),
                        },
                        None,
                    )
                } else {
                    // Transfer inside one shard-affinity group; with spread
                    // placement the single group is the whole table.
                    let g = rng.below(wl.groups());
                    let (lo, hi) = wl.group_bounds(g);
                    let span = hi - lo;
                    let from = lo + rng.below(span);
                    let mut to = lo + rng.below(span);
                    if to == from {
                        to = lo + (to - lo + 1) % span;
                    }
                    // Only the two endpoints are cloned — this is the open
                    // loop's hot path, and per-arrival overhead distorts
                    // the schedule at high rates.
                    let accounts = wl.accounts();
                    (
                        BenchOp::Transfer {
                            a: accounts[from].clone(),
                            b: accounts[to].clone(),
                            amount: rng.range(1, 100),
                        },
                        (wl.groups() > 1).then_some(g),
                    )
                }
            }
            Mix::Intset { set, key_range } => (
                BenchOp::Set {
                    set: set.clone(),
                    op: rng.below(10),
                    key: rng.below(*key_range as usize) as i64,
                },
                None,
            ),
            Mix::Snapshot { wl, scan } => {
                if rng.percent(80) {
                    (
                        BenchOp::Scan {
                            vars: Arc::clone(scan),
                        },
                        None,
                    )
                } else {
                    let vars = wl.vars();
                    let i = rng.below(vars.len());
                    let mut j = rng.below(vars.len());
                    if j == i {
                        j = (j + 1) % vars.len();
                    }
                    (
                        BenchOp::ZeroSum {
                            a: vars[i].clone(),
                            b: vars[j].clone(),
                            amount: rng.range(1, 50),
                        },
                        None,
                    )
                }
            }
        }
    }

    /// Submit one request drawn from the mix through the pooled record
    /// path. Returns `false` if admission control shed it (the refused
    /// record goes straight back into the pool).
    fn submit_one(
        &self,
        svc: &TxnService<E>,
        rng: &mut FastRng,
        pool: &Pool<Box<BenchJob<E>>>,
    ) -> bool {
        let (op, shard) = self.draw(rng);
        let mut job = pool.get().unwrap_or_else(|| {
            Box::new(BenchJob {
                op: BenchOp::Idle,
                home: pool.downgrade(),
            })
        });
        job.op = op;
        match svc.submit_record(shard, job) {
            Ok(()) => true,
            Err((SubmitError::Overloaded, record)) => {
                record.recycle();
                false
            }
            Err((SubmitError::Closed, _)) => {
                panic!("service closed during the measurement window")
            }
        }
    }

    /// Post-drain invariant audit.
    fn assert_quiescent(&self) {
        match self {
            Mix::Bank { wl, .. } => {
                assert_eq!(
                    wl.quiescent_total(),
                    wl.expected_total(),
                    "bank invariant broken through the service"
                );
            }
            Mix::Intset { set, .. } => {
                // Structural invariant: still sorted and duplicate-free.
                let mut h = set.engine().register();
                let keys = set.to_vec(&mut h);
                assert!(
                    keys.windows(2).all(|w| w[0] < w[1]),
                    "intset lost sortedness/uniqueness through the service"
                );
            }
            Mix::Snapshot { wl, .. } => {
                assert_eq!(
                    wl.quiescent_sum(),
                    0,
                    "snapshot zero-sum invariant broken through the service"
                );
            }
        }
    }
}

/// Run one open-loop service benchmark on `engine`.
///
/// Arrival `n` is scheduled at `start + n/rate` regardless of completions
/// (catch-up bursts if the submitter falls behind — open-loop semantics);
/// after the window the service's close-then-drain shutdown finishes the
/// accepted backlog (`completed == submitted` by construction), so the
/// latency histogram covers every completed request. Requests travel as
/// pooled [`RunRequest`] records — the same allocation-free lifecycle the
/// wire server uses — and the outcome's [`PoolStats`] gauge proves the
/// recycling actually happened.
pub fn run_service_bench<E: TxnEngine>(engine: E, spec: &ServiceSpec) -> ServiceOutcome {
    assert!(spec.rate > 0.0, "rate must be positive");
    let mix = Mix::build(&engine, spec.kind, spec.placement);
    // Engines are cheap shared handles: keep one to sample the global
    // memory gauges after the drain.
    let mem_engine = engine.clone();
    let svc = TxnService::start(
        engine,
        ServiceConfig {
            workers: spec.workers,
            queue_depth: spec.queue_depth,
        },
    );
    let pool = job_pool::<E>(spec.workers, spec.queue_depth);
    let mut rng = FastRng::new(0x0af1_5e7e);

    let start = Instant::now();
    let mut offered = 0u64;
    let mut mid_scrape = None;
    while start.elapsed() < spec.duration {
        wait_until(start + Duration::from_secs_f64(offered as f64 / spec.rate));
        mix.submit_one(&svc, &mut rng, &pool);
        offered += 1;
        // Scrape the registry once at halftime, mid-load: proves the
        // sharded counters are readable while every worker is writing them.
        if mid_scrape.is_none() && start.elapsed() >= spec.duration / 2 {
            mid_scrape = Some(svc.metrics().snapshot_json());
        }
    }

    // Drain: shutdown closes admission and the workers finish every
    // accepted record before joining.
    let report = svc.shutdown();
    let elapsed = start.elapsed();
    mix.assert_quiescent();

    assert_eq!(
        report.completed, report.submitted,
        "close-then-drain must finish every accepted request"
    );
    let mut engine_stats = report.engine;
    engine_stats.memory = mem_engine.memory_stats();
    ServiceOutcome {
        offered,
        completed: report.completed,
        shed: report.shed,
        elapsed,
        latency: report.latency,
        engine: engine_stats,
        pool: pool.stats(),
        mid_scrape,
    }
}

/// Outcome of a [`run_memory_ceiling`] run: the per-round memory-gauge
/// samples plus the final service outcome.
#[derive(Debug)]
pub struct MemoryCeilingReport {
    /// One [`MemoryStats`] sample at the end of each submission round,
    /// taken on the live engine (mid-flight — a plateau check wants the
    /// trajectory, not just the quiesced endpoint).
    pub samples: Vec<MemoryStats>,
    /// The aggregate outcome over all rounds (final quiesced memory gauges
    /// included in `outcome.engine.memory`).
    pub outcome: ServiceOutcome,
}

impl MemoryCeilingReport {
    /// Whether the live-version and arena-byte gauges plateaued: the peak
    /// over the second half of the rounds must not exceed twice the peak
    /// over the first half (plus a small absolute slack for in-flight
    /// chains). An unbounded version store fails this by construction —
    /// under sustained load its live count grows linearly with the round
    /// index.
    pub fn plateaued(&self) -> bool {
        let half = self.samples.len() / 2;
        let peak =
            |s: &[MemoryStats], f: fn(&MemoryStats) -> u64| s.iter().map(f).max().unwrap_or(0);
        let (early, late) = self.samples.split_at(half);
        peak(late, |m| m.versions_live) <= 2 * peak(early, |m| m.versions_live) + 64
            && peak(late, |m| m.arena_bytes) <= 2 * peak(early, |m| m.arena_bytes) + 64 * 1024
    }
}

/// [`run_service_bench`] restructured as a memory-ceiling probe: one engine,
/// one workload instance, `rounds` successive open-loop submission windows
/// of `spec.duration` each, sampling the engine's global memory gauges
/// after every round. The CI smoke step drives this on a multi-version LSA
/// cell and asserts [`MemoryCeilingReport::plateaued`] — watermark pruning
/// must bound the live-version population under sustained load.
pub fn run_memory_ceiling<E: TxnEngine>(
    engine: E,
    spec: &ServiceSpec,
    rounds: usize,
) -> MemoryCeilingReport {
    assert!(spec.rate > 0.0, "rate must be positive");
    assert!(rounds >= 2, "a plateau needs at least two rounds");
    let mix = Mix::build(&engine, spec.kind, spec.placement);
    let mem_engine = engine.clone();
    let svc = TxnService::start(
        engine,
        ServiceConfig {
            workers: spec.workers,
            queue_depth: spec.queue_depth,
        },
    );
    let pool = job_pool::<E>(spec.workers, spec.queue_depth);
    let mut rng = FastRng::new(0x5eed_c0de);

    let start = Instant::now();
    let mut offered = 0u64;
    let mut samples = Vec::with_capacity(rounds);
    for round in 1..=rounds {
        let round_end = spec.duration * round as u32;
        while start.elapsed() < round_end {
            wait_until(start + Duration::from_secs_f64(offered as f64 / spec.rate));
            mix.submit_one(&svc, &mut rng, &pool);
            offered += 1;
        }
        samples.push(mem_engine.memory_stats());
    }

    let report = svc.shutdown();
    let elapsed = start.elapsed();
    mix.assert_quiescent();
    assert_eq!(report.completed, report.submitted);

    let mut engine_stats = report.engine;
    engine_stats.memory = mem_engine.memory_stats();
    MemoryCeilingReport {
        samples,
        outcome: ServiceOutcome {
            offered,
            completed: report.completed,
            shed: report.shed,
            elapsed,
            latency: report.latency,
            engine: engine_stats,
            pool: pool.stats(),
            mid_scrape: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_stm::{ShardedStm, Stm};
    use lsa_time::counter::SharedCounter;

    fn quick_spec(kind: RequestKind) -> ServiceSpec {
        ServiceSpec {
            kind,
            rate: 2_000.0,
            duration: Duration::from_millis(100),
            workers: 2,
            queue_depth: 128,
            placement: PlacementHint::Spread,
        }
    }

    #[test]
    fn open_loop_bank_completes_and_accounts() {
        let out = run_service_bench(
            Stm::new(SharedCounter::new()),
            &quick_spec(RequestKind::Bank),
        );
        assert!(out.offered > 50, "open loop must offer at the schedule");
        assert_eq!(out.completed + out.shed, out.offered);
        assert_eq!(out.latency.count(), out.completed);
        assert!(out.latency.p99() >= out.latency.p50());
        assert!(out.throughput() > 0.0);
        assert_eq!(out.engine.abort_reasons.overload, out.shed);
        assert!(
            out.engine.memory.versions_live >= 64,
            "memory gauges must be sampled after the drain: {:?}",
            out.engine.memory
        );
        // Every arrival takes exactly one record from the pool, and after
        // warm-up recycled records dominate fresh allocations.
        assert_eq!(out.pool.hits + out.pool.misses, out.offered);
        assert!(
            out.pool.hits > 0,
            "steady state must reuse recycled records: {:?}",
            out.pool
        );
        // The halftime scrape happened under live load and carries the
        // engine- and service-level metric names.
        let scrape = out.mid_scrape.expect("halftime registry scrape");
        assert!(scrape.contains("\"service.submitted\""));
        assert!(scrape.contains("\"service.queue_depth\""));
        assert!(scrape.contains("\"engine.commits\""));
        assert!(scrape.contains("\"time.commit_ts.shared\""));
    }

    #[test]
    fn memory_ceiling_samples_every_round_and_plateaus() {
        let report = run_memory_ceiling(
            Stm::with_config(
                SharedCounter::new(),
                lsa_stm::StmConfig::watermark_retention(),
            ),
            &ServiceSpec {
                duration: Duration::from_millis(40),
                ..quick_spec(RequestKind::Snapshot)
            },
            4,
        );
        assert_eq!(report.samples.len(), 4, "one sample per round");
        assert_eq!(
            report.outcome.completed + report.outcome.shed,
            report.outcome.offered
        );
        assert!(
            report.plateaued(),
            "watermark retention must bound live versions: {:?}",
            report.samples
        );
    }

    #[test]
    fn all_request_kinds_run_on_sharded_lsa() {
        for kind in RequestKind::ALL {
            let out = run_service_bench(
                ShardedStm::new(SharedCounter::new(), 4),
                &ServiceSpec {
                    placement: PlacementHint::Partitioned,
                    ..quick_spec(kind)
                },
            );
            assert!(out.completed > 0, "{} served nothing", kind.name());
        }
    }

    #[test]
    fn overload_sheds_instead_of_queueing_unboundedly() {
        // One worker, tiny queue, rate far above capacity of long audits:
        // admission control must shed rather than absorb the backlog.
        let out = run_service_bench(
            Stm::new(SharedCounter::new()),
            &ServiceSpec {
                kind: RequestKind::Snapshot,
                rate: 200_000.0,
                duration: Duration::from_millis(80),
                workers: 1,
                queue_depth: 8,
                placement: PlacementHint::Spread,
            },
        );
        assert!(
            out.shed > 0,
            "an offered rate far above capacity must shed ({} offered, {} done)",
            out.offered,
            out.completed
        );
        assert!(out.shed_rate() > 0.0 && out.shed_rate() <= 1.0);
        assert_eq!(out.engine.abort_reasons.overload, out.shed);
    }
}
