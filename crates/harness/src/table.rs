//! Aligned text tables and CSV output for the experiment binaries.
//!
//! The figure binaries print the same rows/series the paper plots;
//! EXPERIMENTS.md records paper-vs-measured from this output. Setting
//! `LSA_CSV=1` additionally emits machine-readable CSV after each table.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn to_text(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:>w$}  ", h, w = width[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, c) in row.iter().enumerate() {
                let _ = write!(line, "{:>w$}  ", c, w = width[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Render as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Print the text table (and CSV too when `LSA_CSV=1`).
    pub fn print(&self) {
        println!("{}", self.to_text());
        if std::env::var("LSA_CSV").map(|v| v == "1").unwrap_or(false) {
            println!("# csv: {}", self.title);
            println!("{}", self.to_csv());
        }
    }
}

/// Format a float with 3 significant decimals (figure output convention).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut t = Table::new("demo", &["threads", "mtx/s"]);
        t.row(vec!["1".into(), "0.55".into()]);
        t.row(vec!["16".into(), "6.10".into()]);
        let text = t.to_text();
        assert!(text.contains("== demo =="));
        assert!(text.contains("threads"));
        assert!(text.contains("6.10"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn renders_csv() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
    }
}
