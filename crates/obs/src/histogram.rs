//! HDR-style bucketed latency histogram.
//!
//! Per-request latencies are recorded in nanoseconds into
//! logarithmically-spaced buckets with linear sub-buckets (the
//! HdrHistogram layout): values below 2^5 are exact, every octave above is
//! split into 32 linear sub-buckets, bounding the relative quantization
//! error at ~3% across the full `u64` range — precise enough for p50/p99
//! tables at a fixed 15 KiB of memory, with O(1) recording (no allocation,
//! no sorting on the hot path, unlike keeping raw samples).
//!
//! Percentile queries scan the cumulative counts ([`LatencyHistogram::
//! percentile`] returns each bucket's upper bound, so reported values are
//! conservative); per-worker histograms merge by bucket-wise addition, and
//! [`LatencyHistogram::buckets`] iterates the non-empty buckets so scrapers
//! can export the full distribution, not just point quantiles.

use std::time::Duration;

/// log2 of the linear sub-bucket count per octave.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per octave (and size of the exact low range).
const SUB: usize = 1 << SUB_BITS;
/// Bucket count: the exact range plus 32 sub-buckets for each octave from
/// 2^5 up to 2^63.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// A fixed-size latency histogram (nanosecond domain).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let octave = (msb - SUB_BITS) as usize;
    // v >> (msb - SUB_BITS) lies in [SUB, 2*SUB); subtracting SUB yields
    // the linear sub-bucket. For msb == SUB_BITS this continues the exact
    // range seamlessly (bucket_index(32) == 32).
    let sub = ((v >> (msb - SUB_BITS)) as usize) - SUB;
    SUB + octave * SUB + sub
}

/// Largest value mapping into bucket `idx` — what percentile queries report.
fn bucket_upper_bound(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = (idx - SUB) / SUB;
    let sub = ((idx - SUB) % SUB) as u128;
    let unit = 1u128 << octave; // sub-bucket width in this octave
                                // u128 intermediate: the very top bucket's exclusive bound is 2^64.
    ((SUB as u128 + sub + 1) * unit - 1) as u64
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0u64; BUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one latency in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum += ns as u128;
        self.max = self.max.max(ns);
    }

    /// Record one latency as a [`Duration`] (saturating at `u64::MAX` ns).
    pub fn record(&mut self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum recorded value (ns).
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (ns); 0 when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value (ns) at quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q · count)` — i.e. at
    /// least a fraction `q` of samples are ≤ the returned value (within
    /// bucket resolution). Returns 0 when empty; `q >= 1` reports the exact
    /// maximum.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q.max(0.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the true maximum (coarse top buckets).
                return bucket_upper_bound(idx).min(self.max);
            }
        }
        self.max
    }

    /// Convenience accessors for the table columns.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }
    /// 90th percentile (ns).
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }
    /// 99th percentile (ns).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
    /// 99.9th percentile (ns) — the saturation knee shows up here first:
    /// under open-loop load the extreme tail inflates well before the p99
    /// does, so the sweep binaries print this column next to p99.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Iterate the non-empty buckets as `(upper_bound_ns, count)` pairs in
    /// ascending bucket order — the full recorded distribution, for
    /// exporters that need more than point quantiles (the metrics
    /// registry's JSON snapshots ship these as a sparse array). The upper
    /// bound is the same conservative per-bucket value
    /// [`LatencyHistogram::percentile`] reports.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(idx, &c)| (bucket_upper_bound(idx), c))
    }

    /// Bucket-wise merge of another histogram (per-worker → service-wide).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("p50_ns", &self.p50())
            .field("p90_ns", &self.p90())
            .field("p99_ns", &self.p99())
            .field("max_ns", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_values_are_exact() {
        for v in 0..SUB as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
        // The first octave bucket continues the exact range seamlessly.
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_upper_bound(32), 32);
    }

    #[test]
    fn indices_are_monotone_and_bounded() {
        let mut last = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 2 {
            let idx = bucket_index(v);
            assert!(idx >= last, "index must not decrease (v={v})");
            assert!(idx < BUCKETS);
            last = idx;
            v = v.wrapping_mul(3) + 1;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn upper_bound_inverts_index() {
        // Every bucket's upper bound must map back into that bucket, and
        // the next value into the next bucket — the pair defines the edge.
        for idx in 0..BUCKETS - 1 {
            let ub = bucket_upper_bound(idx);
            assert_eq!(bucket_index(ub), idx, "upper bound of bucket {idx}");
            assert_eq!(bucket_index(ub + 1), idx + 1);
        }
    }

    #[test]
    fn quantization_error_is_bounded() {
        // For any value, the reported bucket upper bound overshoots by at
        // most one sub-bucket width: ≤ value / 32 + 1.
        let mut v = 1u64;
        while v < 1 << 40 {
            let ub = bucket_upper_bound(bucket_index(v));
            assert!(ub >= v);
            assert!(
                ub - v <= v / SUB as u64 + 1,
                "error too large at {v}: reported {ub}"
            );
            v = v * 7 / 3 + 1;
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=10_000u64 {
            h.record_ns(ns * 1_000); // 1µs .. 10ms ramp
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.max_ns(), 10_000_000);
        let within = |got: u64, want: u64| {
            let err = got.abs_diff(want) as f64 / want as f64;
            assert!(err < 0.04, "got {got}, want ~{want} (err {err:.3})");
        };
        within(h.p50(), 5_000_000);
        within(h.p90(), 9_000_000);
        within(h.p99(), 9_900_000);
        within(h.p999(), 9_990_000);
        assert!(h.p999() >= h.p99(), "percentiles must be monotone");
        assert_eq!(h.percentile(1.0), 10_000_000, "p100 is the exact max");
        within(h.mean_ns() as u64, 5_000_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = (i * 97 + 13) * 1000;
            if i % 2 == 0 {
                a.record_ns(v);
            } else {
                b.record_ns(v);
            }
            all.record_ns(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max_ns(), all.max_ns());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.percentile(q), all.percentile(q));
        }
    }

    #[test]
    fn record_duration_saturates() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(250));
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_ns(), 250_000);
        h.record(Duration::from_secs(u64::MAX)); // > u64::MAX ns
        assert_eq!(h.max_ns(), u64::MAX);
    }

    #[test]
    fn buckets_iterate_the_full_distribution() {
        let mut h = LatencyHistogram::new();
        for ns in [3u64, 3, 100, 5_000, 1 << 40] {
            h.record_ns(ns);
        }
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        // Sparse: only buckets that were hit appear, in ascending order.
        assert_eq!(buckets.len(), 4);
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(buckets[0], (3, 2), "low range is exact");
        // Counts add back up to the total and every value is ≤ its bound.
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), h.count());
        assert!(buckets.iter().all(|&(ub, _)| ub <= 1 << 41));
        // Rebuilding a histogram from the exported buckets preserves every
        // reported quantile: the export is lossless at bucket resolution.
        let mut rebuilt = LatencyHistogram::new();
        for (ub, c) in h.buckets() {
            for _ in 0..c {
                rebuilt.record_ns(ub);
            }
        }
        // (Quantiles landing in the top bucket differ by max-clipping: the
        // original knows the true max, the rebuild only the bucket bound.)
        for q in [0.25, 0.5, 0.75] {
            assert_eq!(rebuilt.percentile(q), h.percentile(q));
        }
    }
}
