//! **lsa-obs** — observability for the TM serving stack, built around the
//! serving-path lesson that measurement contention destroys the hot path:
//! every instrument here is write-local and pays its aggregation cost only
//! when somebody actually looks.
//!
//! Two subsystems:
//!
//! - [`registry`]: a [`MetricsRegistry`] of named counters, gauges, and
//!   latency histograms. Counters and histograms are backed by cache-padded
//!   per-thread shards; writers touch only their own shard (one relaxed
//!   `fetch_add`, or one uncontended mutex for histograms) and shards are
//!   merged only at scrape time ([`MetricsRegistry::snapshot`]). Gauges come
//!   in two flavours: set-style atomics and *sampled* gauges
//!   ([`MetricsRegistry::gauge_fn`]) whose closure runs only when a snapshot
//!   is taken — queue depths and pool occupancy cost nothing between
//!   scrapes.
//! - [`trace`]: a process-wide flight recorder — fixed-size per-thread rings
//!   of compact transaction lifecycle events (begin, extend/validate, abort
//!   with its [`AbortClass`]-style reason, commit, commit-ts arbitration
//!   outcome, enqueue/dequeue/shed) with configurable sampling
//!   (`off` → 1-in-N → `all`, `LSA_TRACE`). Recording a sampled event is
//!   two relaxed atomic stores into the thread's own ring; unsampled
//!   transactions pay one TLS flag check per event site.
//!
//! [`LatencyHistogram`] (HDR-style bucketed, ≲3% relative quantization
//! error) lives here so every layer — service workers, wire lanes, the
//! registry — shares one latency type; `lsa-service` re-exports it for
//! compatibility.
//!
//! [`AbortClass`]: trace::TraceEvent

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod histogram;
pub mod registry;
pub mod trace;

pub use histogram::LatencyHistogram;
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, Snapshot};
