//! Sharded metrics registry: named counters, gauges, and latency
//! histograms whose hot path is write-local and whose aggregation cost is
//! paid only at scrape time.
//!
//! # Why shards, and why merge at scrape
//!
//! A "global counter" instrumented naively is a contended `fetch_add` on
//! one cache line — exactly the shared-RMW pattern whose cost the paper's
//! time-base analysis (and this repo's serving-path work) is about
//! removing. The registry instead gives every counter and histogram a
//! small array of cache-padded shards; a writer indexes by its *thread*
//! (a process-wide monotone thread index, modulo the shard count), so on
//! the steady-state worker pool each shard has exactly one writer and a
//! `Relaxed` `fetch_add` never bounces a line. Readers pay instead:
//! [`MetricsRegistry::snapshot`] sums shards, locks each histogram shard
//! in turn, and runs the sampled-gauge closures — all costs that scale
//! with scrape *rate*, which is Hz, not with request rate, which is MHz.
//!
//! # Memory ordering
//!
//! All counter traffic is `Relaxed`: a snapshot is a *statistical* view,
//! not a synchronization point. A scrape that races a writer may miss the
//! writer's latest increments (they are observed by the next scrape — no
//! increment is ever lost, shards are append-only accumulators) and may
//! see metric A ahead of metric B even if B was incremented first. That
//! is the documented contract; anything needing cross-metric consistency
//! (e.g. `submitted == completed + shed` exactly) must quiesce first,
//! which is what the service's shutdown path does before its final report.
//!
//! # Gauges
//!
//! Set-style [`Gauge`]s are single atomics (they are written rarely —
//! per-connection, per-round — not per-request). Sampled gauges
//! ([`MetricsRegistry::gauge_fn`]) invert the cost entirely: nothing is
//! maintained between scrapes, the closure reads live structures (queue
//! depth, pool occupancy, in-flight windows) only when a snapshot runs.
//! Closures must therefore capture [`Weak`] references to the structures
//! they sample, both to avoid keeping torn-down services alive and to
//! break the `Arc` cycle registry ↔ owner; a dead sampler reports 0.

use crate::histogram::LatencyHistogram;
use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Process-wide monotone thread index used to pick a shard. Not reused
/// after thread exit — shards are accumulators, a stale shard just stops
/// growing.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_IX: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// Shards per instrument: enough that the service's worker pool plus the
/// wire's reader/writer threads rarely collide, capped so a registry full
/// of counters stays small (each shard is one padded cache line).
fn shard_count() -> usize {
    static SHARDS: OnceLock<usize> = OnceLock::new();
    *SHARDS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8)
            .next_power_of_two()
            .clamp(1, 64)
    })
}

fn my_shard(n: usize) -> usize {
    THREAD_IX.with(|&ix| ix & (n - 1))
}

struct CounterInner {
    name: Arc<str>,
    shards: Box<[CachePadded<AtomicU64>]>,
}

/// Handle to a named monotone counter. Cloning is cheap (`Arc`); `add` is
/// one `Relaxed` `fetch_add` on the calling thread's own shard.
#[derive(Clone)]
pub struct Counter(Arc<CounterInner>);

impl Counter {
    fn new(name: &str) -> Self {
        let shards = (0..shard_count())
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect();
        Counter(Arc::new(CounterInner {
            name: name.into(),
            shards,
        }))
    }

    /// Add `n` to the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        let shards = &self.0.shards;
        shards[my_shard(shards.len())].fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sum of all shards — the scrape-side read.
    pub fn value(&self) -> u64 {
        self.0
            .shards
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .sum()
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.0.name
    }
}

struct GaugeInner {
    name: Arc<str>,
    value: AtomicI64,
}

/// Handle to a named set-style gauge (single atomic — gauges are written
/// per-connection or per-round, not per-request; use
/// [`MetricsRegistry::gauge_fn`] for anything sampled from live state).
#[derive(Clone)]
pub struct Gauge(Arc<GaugeInner>);

impl Gauge {
    fn new(name: &str) -> Self {
        Gauge(Arc::new(GaugeInner {
            name: name.into(),
            value: AtomicI64::new(0),
        }))
    }

    /// Overwrite the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.value.store(v, Ordering::Relaxed);
    }

    /// Adjust the gauge by `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.0.name
    }
}

struct HistInner {
    name: Arc<str>,
    shards: Box<[CachePadded<Mutex<LatencyHistogram>>]>,
}

/// Handle to a named sharded latency histogram: `record_ns` locks only the
/// calling thread's shard (uncontended on a steady worker pool), the full
/// distribution exists only after [`Histogram::merged`] at scrape time.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    fn new(name: &str) -> Self {
        let shards = (0..shard_count())
            .map(|_| CachePadded::new(Mutex::new(LatencyHistogram::new())))
            .collect();
        Histogram(Arc::new(HistInner {
            name: name.into(),
            shards,
        }))
    }

    /// Record one latency in nanoseconds into the thread's shard.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let shards = &self.0.shards;
        shards[my_shard(shards.len())]
            .lock()
            .expect("histogram shard poisoned")
            .record_ns(ns);
    }

    /// Record one latency as a [`Duration`] (saturating at `u64::MAX` ns).
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Merge all shards into one histogram — the scrape-side read.
    pub fn merged(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for shard in self.0.shards.iter() {
            out.merge(&shard.lock().expect("histogram shard poisoned"));
        }
        out
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.0.name
    }
}

struct Sampler {
    name: Arc<str>,
    f: Box<dyn Fn() -> i64 + Send + Sync>,
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<Vec<Counter>>,
    gauges: Mutex<Vec<Gauge>>,
    samplers: Mutex<Vec<Sampler>>,
    hists: Mutex<Vec<Histogram>>,
}

/// A namespace of instruments. Cloning shares the underlying registry;
/// each service/server instance owns one (instruments are per-instance,
/// not process-global, so parallel benches and tests never cross-talk).
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`. Idempotent: a second call with
    /// the same name returns a handle to the same counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut v = self.inner.counters.lock().expect("registry poisoned");
        if let Some(c) = v.iter().find(|c| c.name() == name) {
            return c.clone();
        }
        let c = Counter::new(name);
        v.push(c.clone());
        c
    }

    /// Get or create the set-style gauge `name` (idempotent).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut v = self.inner.gauges.lock().expect("registry poisoned");
        if let Some(g) = v.iter().find(|g| g.name() == name) {
            return g.clone();
        }
        let g = Gauge::new(name);
        v.push(g.clone());
        g
    }

    /// Register (or replace) a sampled gauge: `f` runs only when a
    /// snapshot is taken. `f` must capture [`std::sync::Weak`] references
    /// to whatever it samples and report 0 when the owner is gone — a
    /// sampler must never keep a torn-down service alive.
    pub fn gauge_fn(&self, name: &str, f: impl Fn() -> i64 + Send + Sync + 'static) {
        let mut v = self.inner.samplers.lock().expect("registry poisoned");
        let s = Sampler {
            name: name.into(),
            f: Box::new(f),
        };
        match v.iter_mut().find(|s| &*s.name == name) {
            Some(slot) => *slot = s,
            None => v.push(s),
        }
    }

    /// Get or create the sharded histogram `name` (idempotent).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut v = self.inner.hists.lock().expect("registry poisoned");
        if let Some(h) = v.iter().find(|h| h.name() == name) {
            return h.clone();
        }
        let h = Histogram::new(name);
        v.push(h.clone());
        h
    }

    /// Merge every instrument into a point-in-time [`Snapshot`]
    /// (statistically consistent only — see the module docs).
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<(String, u64)> = self
            .inner
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|c| (c.name().to_string(), c.value()))
            .collect();
        let mut gauges: Vec<(String, i64)> = self
            .inner
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|g| (g.name().to_string(), g.value()))
            .collect();
        gauges.extend(
            self.inner
                .samplers
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|s| (s.name.to_string(), (s.f)())),
        );
        let mut histograms: Vec<(String, LatencyHistogram)> = self
            .inner
            .hists
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|h| (h.name().to_string(), h.merged()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Shorthand: snapshot and render as JSON.
    pub fn snapshot_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// A merged point-in-time view of every instrument in a registry, sorted
/// by name within each kind.
pub struct Snapshot {
    /// `(name, summed value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, set-style and sampled alike.
    pub gauges: Vec<(String, i64)>,
    /// `(name, merged histogram)` for every histogram.
    pub histograms: Vec<(String, LatencyHistogram)>,
}

impl Snapshot {
    /// Value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Merged histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Render as a self-contained JSON document:
    ///
    /// ```json
    /// {"counters":{"engine.commits":42, ...},
    ///  "gauges":{"service.queue_depth":0, ...},
    ///  "histograms":{"service.latency_ns":{"count":42,"mean_ns":..,
    ///     "max_ns":..,"p50_ns":..,"p90_ns":..,"p99_ns":..,"p999_ns":..,
    ///     "buckets":[[upper_bound_ns,count], ...]}}}
    /// ```
    ///
    /// Histograms ship their full sparse bucket array
    /// ([`LatencyHistogram::buckets`]), so a scraper can recompute any
    /// quantile, not just the point quantiles included for convenience.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", esc(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", esc(name)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"mean_ns\":{:.1},\"max_ns\":{},\
                 \"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\
                 \"buckets\":[",
                esc(name),
                h.count(),
                h.mean_ns(),
                h.max_ns(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.p999(),
            ));
            for (j, (ub, c)) in h.buckets().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{ub},{c}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Minimal JSON string escaping (instrument names are ASCII identifiers in
/// practice, but the snapshot must stay well-formed for any input).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shard_and_sum() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("test.ops");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
        assert_eq!(reg.snapshot().counter("test.ops"), Some(80_000));
    }

    #[test]
    fn handles_are_idempotent_per_name() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(3);
        reg.counter("a").add(4);
        assert_eq!(reg.counter("a").value(), 7);
        reg.gauge("g").set(9);
        assert_eq!(reg.gauge("g").value(), 9);
        reg.histogram("h").record_ns(5);
        reg.histogram("h").record_ns(6);
        assert_eq!(reg.histogram("h").merged().count(), 2);
    }

    #[test]
    fn sampled_gauges_run_at_snapshot_and_survive_owner_death() {
        let reg = MetricsRegistry::new();
        let owner = Arc::new(AtomicI64::new(17));
        let weak = Arc::downgrade(&owner);
        reg.gauge_fn("live.depth", move || {
            weak.upgrade()
                .map(|o| o.load(Ordering::Relaxed))
                .unwrap_or(0)
        });
        assert_eq!(reg.snapshot().gauge("live.depth"), Some(17));
        owner.store(23, Ordering::Relaxed);
        assert_eq!(reg.snapshot().gauge("live.depth"), Some(23));
        drop(owner);
        assert_eq!(reg.snapshot().gauge("live.depth"), Some(0));
    }

    #[test]
    fn histograms_merge_across_threads() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record_ns((t * 1000 + i) * 100);
                    }
                });
            }
        });
        let m = h.merged();
        assert_eq!(m.count(), 4000);
        assert_eq!(m.max_ns(), 3999 * 100);
    }

    #[test]
    fn snapshot_json_is_well_formed_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count").add(2);
        reg.counter("a.count").add(1);
        reg.gauge("z.gauge").set(-5);
        reg.histogram("lat").record_ns(100);
        let json = reg.snapshot_json();
        assert!(json.starts_with("{\"counters\":{"));
        // Sorted: a.count before b.count.
        let a = json.find("\"a.count\":1").expect("a.count");
        let b = json.find("\"b.count\":2").expect("b.count");
        assert!(a < b);
        assert!(json.contains("\"z.gauge\":-5"));
        assert!(json.contains("\"lat\":{\"count\":1"));
        assert!(json.contains("\"buckets\":[["));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn names_are_escaped() {
        assert_eq!(esc("plain.name"), "plain.name");
        assert_eq!(esc("q\"uote\\s"), "q\\\"uote\\\\s");
        assert_eq!(esc("tab\there"), "tab\\u0009here");
    }
}
