//! Flight-recorder transaction tracer: fixed-size per-thread rings of
//! compact lifecycle events, sampled, dumpable on demand or on anomaly.
//!
//! # Recording model
//!
//! Every thread that emits events lazily registers one ring of
//! [`RING_SLOTS`] slots; a slot is two `AtomicU64`s (packed
//! kind/class/payload word + nanosecond timestamp). Recording is two
//! `Relaxed` stores into the thread's **own** ring — no shared cache line
//! is ever written by two threads, which is what keeps `all`-sampling
//! usable on the serving path and 1-in-N sampling within noise.
//!
//! # Overwrite semantics
//!
//! The ring never blocks and never grows: slot `head % RING_SLOTS` is
//! overwritten unconditionally, so each ring always holds the *most
//! recent* ~[`RING_SLOTS`] events of its thread — a flight recorder, not a
//! log. [`dump`] reads rings with `Relaxed` loads while writers may still
//! be appending; a dump that races a writer can observe a torn slot (new
//! packed word with the previous timestamp, or vice versa) or miss the
//! in-flight event. That is the documented trade: dumps are a forensic
//! best-effort view, the hot path pays nothing for them.
//!
//! # Sampling
//!
//! Controlled by `LSA_TRACE` (read once, overridable via
//! [`set_sampling`]): `off`/`0` disables, `all`/`1` records every
//! transaction, `N` records one transaction in `N`. The default (unset) is
//! 1-in-[`DEFAULT_ONE_IN`] — tracing is *on* by default; `obs_bench` and
//! the CI overhead smoke exist to prove that is affordable. The
//! per-transaction decision is made once at [`txn_begin`] and cached in
//! TLS, so every later event site in a non-sampled transaction costs one
//! thread-local flag read. Events outside a transaction (queue
//! enqueue/dequeue) sample independently via [`event_sampled`]; rare
//! anomalies (sheds) use [`event`], which records whenever tracing is
//! enabled at all — anomalies are exactly what a flight recorder is for.

use std::cell::{Cell, OnceCell};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Slots per thread ring (~64 KiB per thread: 2 words × 4096).
pub const RING_SLOTS: usize = 4096;

/// Default sampling rate when `LSA_TRACE` is unset: one transaction in 64.
pub const DEFAULT_ONE_IN: u32 = 64;

/// Compact transaction / serving-path lifecycle event kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A sampled transaction attempt started (payload: txn id).
    TxnBegin = 1,
    /// A full read-set (re)validation ran (payload: txn id).
    Validate = 2,
    /// A snapshot extension ran (payload: txn id).
    Extend = 3,
    /// The attempt aborted (class: the engine's abort-reason index — for
    /// the lsa engines, `AbortReason::ALL` order: 0 no-version, 1 snapshot,
    /// 2 validation, 3 cm-loser, 4 killed, 5 explicit; payload: txn id).
    /// Admission-control sheds are [`EventKind::Shed`], not aborts.
    Abort = 4,
    /// The attempt committed (class: 1 if read-only; payload: txn id).
    Commit = 5,
    /// The time base arbitrated an exclusively-owned commit timestamp
    /// (payload: the timestamp, low 48 bits).
    CtsExclusive = 6,
    /// The time base arbitrated a shared commit timestamp — GV4 adoption,
    /// GV5 read-derived (payload: the timestamp, low 48 bits).
    CtsShared = 7,
    /// A request was admitted into a service queue (payload: queue index).
    Enqueue = 8,
    /// A worker dequeued a batch (payload: batch length).
    Dequeue = 9,
    /// Admission control shed a request (payload: queue index).
    Shed = 10,
}

impl EventKind {
    fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::TxnBegin,
            2 => EventKind::Validate,
            3 => EventKind::Extend,
            4 => EventKind::Abort,
            5 => EventKind::Commit,
            6 => EventKind::CtsExclusive,
            7 => EventKind::CtsShared,
            8 => EventKind::Enqueue,
            9 => EventKind::Dequeue,
            10 => EventKind::Shed,
            _ => return None,
        })
    }
}

/// Tracer sampling mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sampling {
    /// Record nothing; event sites cost one relaxed atomic load.
    Off,
    /// Record every transaction.
    All,
    /// Record one transaction in `N` (`N >= 2`).
    OneIn(u32),
}

/// A decoded trace event, as returned by [`dump`].
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Nanoseconds since the process trace epoch (first traced event).
    pub ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific class byte (abort reason, read-only flag).
    pub class: u8,
    /// Kind-specific payload (txn id, timestamp, queue index), 48 bits.
    pub payload: u64,
    /// Ring (≈ thread) index the event was recorded on.
    pub thread: usize,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>12} ns  t{:<3} {:?} class={} payload={}",
            self.ns, self.thread, self.kind, self.class, self.payload
        )
    }
}

/// Sampling mode encoding in one atomic: `u32::MAX` = uninitialized (read
/// `LSA_TRACE` on first use), 0 = off, 1 = all, n = one-in-n.
static MODE: AtomicU32 = AtomicU32::new(u32::MAX);

fn parse_env() -> u32 {
    match std::env::var("LSA_TRACE") {
        Err(_) => DEFAULT_ONE_IN,
        Ok(v) => match v.trim() {
            "off" | "0" => 0,
            "all" | "1" => 1,
            n => n.parse::<u32>().ok().filter(|&n| n >= 2).unwrap_or(0),
        },
    }
}

#[inline]
fn mode() -> u32 {
    let m = MODE.load(Ordering::Relaxed);
    if m != u32::MAX {
        return m;
    }
    let parsed = parse_env();
    // Racing initializers agree (env is stable); last store wins harmlessly.
    let _ = MODE.compare_exchange(u32::MAX, parsed, Ordering::Relaxed, Ordering::Relaxed);
    MODE.load(Ordering::Relaxed)
}

/// Current sampling mode (initializing from `LSA_TRACE` on first use).
pub fn sampling() -> Sampling {
    match mode() {
        0 => Sampling::Off,
        1 => Sampling::All,
        n => Sampling::OneIn(n),
    }
}

/// Override the sampling mode process-wide (benches, tests, ops).
pub fn set_sampling(s: Sampling) {
    let m = match s {
        Sampling::Off => 0,
        Sampling::All => 1,
        Sampling::OneIn(n) => n.max(2),
    };
    MODE.store(m, Ordering::Relaxed);
}

/// Whether tracing is enabled at any rate.
#[inline]
pub fn enabled() -> bool {
    mode() != 0
}

struct Slot {
    packed: AtomicU64,
    ns: AtomicU64,
}

struct ThreadRing {
    id: usize,
    slots: Box<[Slot]>,
    /// Total events written; only this ring's owner thread stores it.
    head: AtomicU64,
}

static RING_IDS: AtomicUsize = AtomicUsize::new(0);

fn rings() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static MY_RING: OnceCell<Arc<ThreadRing>> = const { OnceCell::new() };
    static TXN_SAMPLED: Cell<bool> = const { Cell::new(false) };
    static TXN_TICK: Cell<u32> = const { Cell::new(0) };
    static EV_TICK: Cell<u32> = const { Cell::new(0) };
}

const PAYLOAD_MASK: u64 = (1 << 48) - 1;

fn emit_raw(kind: EventKind, class: u8, payload: u64) {
    let ns = epoch().elapsed().as_nanos() as u64;
    let packed = ((kind as u64) << 56) | ((class as u64) << 48) | (payload & PAYLOAD_MASK);
    MY_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(ThreadRing {
                id: RING_IDS.fetch_add(1, Ordering::Relaxed),
                slots: (0..RING_SLOTS)
                    .map(|_| Slot {
                        packed: AtomicU64::new(0),
                        ns: AtomicU64::new(0),
                    })
                    .collect(),
                head: AtomicU64::new(0),
            });
            rings()
                .lock()
                .expect("trace rings poisoned")
                .push(Arc::clone(&ring));
            ring
        });
        // Single-writer ring: load+store, no RMW. Dumps may race (torn
        // slots are documented flight-recorder semantics).
        let head = ring.head.load(Ordering::Relaxed);
        let slot = &ring.slots[(head as usize) % RING_SLOTS];
        slot.ns.store(ns, Ordering::Relaxed);
        slot.packed.store(packed, Ordering::Relaxed);
        ring.head.store(head + 1, Ordering::Relaxed);
    });
}

/// Per-transaction sampling decision, made once per attempt. Emits
/// [`EventKind::TxnBegin`] and returns `true` when this attempt is
/// sampled; all later [`txn_event`] calls on this thread are recorded
/// until the next `txn_begin` decides otherwise.
#[inline]
pub fn txn_begin(id: u64) -> bool {
    let m = mode();
    let hit = match m {
        0 => false,
        1 => true,
        n => TXN_TICK.with(|t| {
            let v = t.get().wrapping_add(1);
            t.set(v);
            v % n == 0
        }),
    };
    TXN_SAMPLED.with(|s| s.set(hit));
    if hit {
        emit_raw(EventKind::TxnBegin, 0, id);
    }
    hit
}

/// Record a lifecycle event iff the current transaction attempt was
/// sampled by [`txn_begin`] — one TLS flag read when it was not.
#[inline]
pub fn txn_event(kind: EventKind, class: u8, payload: u64) {
    if TXN_SAMPLED.with(|s| s.get()) {
        emit_raw(kind, class, payload);
    }
}

/// Record a non-transactional event (enqueue/dequeue) with its own
/// independent 1-in-N decision.
#[inline]
pub fn event_sampled(kind: EventKind, class: u8, payload: u64) {
    match mode() {
        0 => {}
        1 => emit_raw(kind, class, payload),
        n => EV_TICK.with(|t| {
            let v = t.get().wrapping_add(1);
            t.set(v);
            if v % n == 0 {
                emit_raw(kind, class, payload);
            }
        }),
    }
}

/// Record an anomaly-class event (shed) whenever tracing is enabled at
/// all — rare events are recorded at every sampling rate.
#[inline]
pub fn event(kind: EventKind, class: u8, payload: u64) {
    if mode() != 0 {
        emit_raw(kind, class, payload);
    }
}

/// Decode every ring into a single time-sorted event list (best-effort:
/// concurrent writers may tear the slots they are overwriting).
pub fn dump() -> Vec<TraceEvent> {
    let rings = rings().lock().expect("trace rings poisoned");
    let mut out = Vec::new();
    for ring in rings.iter() {
        let head = ring.head.load(Ordering::Relaxed) as usize;
        let (start, len) = if head > RING_SLOTS {
            (head, RING_SLOTS)
        } else {
            (0, head)
        };
        for i in 0..len {
            let slot = &ring.slots[(start + i) % RING_SLOTS];
            let packed = slot.packed.load(Ordering::Relaxed);
            let ns = slot.ns.load(Ordering::Relaxed);
            let Some(kind) = EventKind::from_u8((packed >> 56) as u8) else {
                continue;
            };
            out.push(TraceEvent {
                ns,
                kind,
                class: ((packed >> 48) & 0xff) as u8,
                payload: packed & PAYLOAD_MASK,
                thread: ring.id,
            });
        }
    }
    out.sort_by_key(|e| e.ns);
    out
}

/// Zero every registered ring (benches and tests; racy against concurrent
/// writers, like everything else on the dump side).
pub fn clear() {
    let rings = rings().lock().expect("trace rings poisoned");
    for ring in rings.iter() {
        for slot in ring.slots.iter() {
            slot.packed.store(0, Ordering::Relaxed);
            slot.ns.store(0, Ordering::Relaxed);
        }
        ring.head.store(0, Ordering::Relaxed);
    }
}

/// Anomaly hook: when tracing is enabled *and* `LSA_TRACE_DUMP` is set in
/// the environment, dump the most recent `max` events to stderr tagged
/// with `reason`. Callers invoke this on shutdown-with-sheds or tail-
/// latency blow-ups; with `LSA_TRACE_DUMP` unset it is a no-op beyond the
/// enabled check, so production runs decide explicitly to be noisy.
pub fn anomaly(reason: &str, max: usize) {
    if !enabled() || std::env::var_os("LSA_TRACE_DUMP").is_none() {
        return;
    }
    let events = dump();
    let skip = events.len().saturating_sub(max);
    eprintln!(
        "[lsa-obs] anomaly ({reason}): dumping last {} of {} trace events",
        events.len() - skip,
        events.len()
    );
    for e in &events[skip..] {
        eprintln!("[lsa-obs]   {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracer is process-global; tests that flip sampling serialize.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn all_sampling_records_the_lifecycle() {
        let _g = lock();
        set_sampling(Sampling::All);
        let marker = 0x00C0FFEE;
        assert!(txn_begin(marker));
        txn_event(EventKind::Extend, 0, marker);
        txn_event(EventKind::Commit, 1, marker);
        let ours: Vec<_> = dump().into_iter().filter(|e| e.payload == marker).collect();
        assert!(ours.iter().any(|e| e.kind == EventKind::TxnBegin));
        assert!(ours.iter().any(|e| e.kind == EventKind::Extend));
        assert!(ours
            .iter()
            .any(|e| e.kind == EventKind::Commit && e.class == 1));
        // Time-sorted within the dump.
        assert!(ours.windows(2).all(|w| w[0].ns <= w[1].ns));
        set_sampling(Sampling::Off);
    }

    #[test]
    fn off_records_nothing_and_one_in_n_downsamples() {
        let _g = lock();
        set_sampling(Sampling::Off);
        let marker = 0x00BEEF00;
        assert!(!txn_begin(marker));
        txn_event(EventKind::Commit, 0, marker);
        event_sampled(EventKind::Enqueue, 0, marker);
        assert!(dump().iter().all(|e| e.payload != marker));

        set_sampling(Sampling::OneIn(8));
        let mut sampled = 0u32;
        for _ in 0..800 {
            if txn_begin(marker + 1) {
                sampled += 1;
            }
        }
        assert_eq!(sampled, 100, "1-in-8 is deterministic per thread");
        set_sampling(Sampling::Off);
    }

    #[test]
    fn ring_overwrites_keep_the_most_recent_events() {
        let _g = lock();
        set_sampling(Sampling::All);
        // The payload namespace marks our events; overfill the ring.
        let base = 0x0A000000u64;
        for i in 0..(RING_SLOTS as u64 + 500) {
            assert!(txn_begin(base + i));
        }
        let ours: Vec<_> = dump()
            .into_iter()
            .filter(|e| e.payload >= base && e.payload < base + RING_SLOTS as u64 + 500)
            .collect();
        assert!(ours.len() <= RING_SLOTS);
        // The newest event survived; the oldest were overwritten.
        assert!(ours
            .iter()
            .any(|e| e.payload == base + RING_SLOTS as u64 + 499));
        assert!(ours.iter().all(|e| e.payload >= base + 500));
        set_sampling(Sampling::Off);
    }

    #[test]
    fn anomaly_events_record_at_any_enabled_rate() {
        let _g = lock();
        set_sampling(Sampling::OneIn(1_000_000));
        let marker = 0x0051ED00;
        event(EventKind::Shed, 0, marker);
        assert!(dump()
            .iter()
            .any(|e| e.kind == EventKind::Shed && e.payload == marker));
        set_sampling(Sampling::Off);
    }
}
