//! Property witnesses for the histogram's two load-bearing claims:
//!
//! 1. **Quantization error bound**: for any recorded value, any reported
//!    quantile overshoots the true (sorted-sample) quantile by at most one
//!    sub-bucket width — ≲3% relative error (1/32 plus one), across the
//!    full nanosecond domain. The service's p50/p99 tables and the knee
//!    detector's `p99 > 4×baseline` rule both assume this.
//! 2. **Merge is associative and commutative**: per-worker and per-lane
//!    histograms are merged in whatever order threads exit; the merge
//!    order must not change any reported quantile, count, or max.

use lsa_obs::LatencyHistogram;
use proptest::collection::vec;
use proptest::prelude::*;

/// The exact quantile the histogram approximates: the rank-`ceil(q·n)`
/// order statistic of the recorded values.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

fn build(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record_ns(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Every reported quantile is ≥ the exact one (bucket upper bounds are
    /// conservative) and overshoots by at most one sub-bucket width:
    /// `reported ≤ exact + exact/32 + 1` — the ≤~3% error claim.
    #[test]
    fn quantile_error_is_within_one_sub_bucket(
        values in vec(any::<u64>(), 1..200),
        q_mil in 0u32..1001u32,
    ) {
        let q = q_mil as f64 / 1000.0;
        let h = build(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = exact_percentile(&sorted, q);
        let got = h.percentile(q);
        prop_assert!(got >= exact,
            "reported quantile must not undershoot: got {got}, exact {exact} (q={q})");
        let bound = exact.saturating_add(exact / 32).saturating_add(1);
        prop_assert!(got <= bound,
            "reported {got} exceeds exact {exact} by more than a sub-bucket (q={q})");
    }

    /// Merge order is irrelevant: (a ∪ b) ∪ c and a ∪ (b ∪ c) and any
    /// permutation report identical counts, maxima, and quantiles — and
    /// they all equal recording every value into one histogram.
    #[test]
    fn merge_is_associative_and_commutative(
        a in vec(any::<u64>(), 0..60),
        b in vec(any::<u64>(), 0..60),
        c in vec(any::<u64>(), 0..60),
    ) {
        let mut left = build(&a);          // (a ∪ b) ∪ c
        left.merge(&build(&b));
        left.merge(&build(&c));

        let mut right = build(&b);         // a ∪ (b ∪ c), built b-first
        right.merge(&build(&c));
        right.merge(&build(&a));

        let mut one = LatencyHistogram::new();
        for &v in a.iter().chain(&b).chain(&c) {
            one.record_ns(v);
        }

        for h in [&left, &right] {
            prop_assert_eq!(h.count(), one.count());
            prop_assert_eq!(h.max_ns(), one.max_ns());
            for q_mil in [0u32, 100, 250, 500, 900, 990, 999, 1000] {
                let q = q_mil as f64 / 1000.0;
                prop_assert_eq!(h.percentile(q), one.percentile(q),
                    "quantile q={} changed under merge order", q);
            }
        }
        // The exported bucket arrays agree exactly, not just the quantiles.
        let lb: Vec<_> = left.buckets().collect();
        let rb: Vec<_> = right.buckets().collect();
        let ob: Vec<_> = one.buckets().collect();
        prop_assert_eq!(&lb, &ob);
        prop_assert_eq!(&rb, &ob);
    }

    /// Merging an empty histogram is the identity.
    #[test]
    fn merge_with_empty_is_identity(values in vec(any::<u64>(), 0..100)) {
        let mut h = build(&values);
        let before: Vec<_> = h.buckets().collect();
        h.merge(&LatencyHistogram::new());
        prop_assert_eq!(h.count(), values.len() as u64);
        let after: Vec<_> = h.buckets().collect();
        prop_assert_eq!(before, after);
    }
}
