//! Service-driven conformance: the engine-generic correctness suite of
//! `lsa_engine::conformance`, re-expressed as *concurrent request
//! submissions* through [`TxnService`].
//!
//! The engine suite certifies that an engine serializes transactions run
//! from dedicated per-thread handles. The serving layer changes the
//! topology — many clients multiplex onto few worker handles, requests
//! cross a queue, and a client's next request may run on a different
//! worker — so the same witnesses are re-checked end to end *through* the
//! service: the value-chain check certifies that concurrent submissions
//! commit a serializable history, the audit check that no request observes
//! a torn snapshot, and both assert the service's own accounting
//! (`completed == submitted`, nothing lost in the queues).
//!
//! Objects are placed with [`TxnEngine::new_var_on`] and requests routed
//! with the matching shard hint, so on sharded engines the suite exercises
//! the shard-affine path; on unsharded engines the hints are inert and the
//! same code certifies round-robin routing.

use crate::service::{ServiceConfig, SubmitError, TxnService};
use crate::Completion;
use lsa_engine::{EngineHandle, EngineVar, TxnEngine, TxnOps};
use std::sync::Arc;

/// Tiny deterministic generator (splitmix-style), mirroring the engine
/// suite's — no external dependency, identical behaviour on every engine.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0 >> 11
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Submit with retry-on-shed: conformance clients are closed-loop, so a
/// shed just means "try again" (the load generator, by contrast, *counts*
/// sheds — that is the open-loop difference).
fn submit_retrying<E, R, F>(svc: &TxnService<E>, shard: Option<usize>, body: F) -> Completion<R>
where
    E: TxnEngine,
    R: Send + 'static,
    F: Fn(&mut E::Handle) -> R + Send + Clone + 'static,
{
    loop {
        match svc.submit_to(shard, body.clone()) {
            Ok(c) => return c,
            Err(SubmitError::Overloaded) => std::thread::yield_now(),
            Err(SubmitError::Closed) => panic!("service closed during conformance"),
        }
    }
}

/// Concurrent increment chains through the service: `clients` threads each
/// submit `per_client` read-increment-write requests over `objects`
/// variables; afterwards each object's observed read values must form the
/// gapless chain `0..n` — the committed history equals a sequential one
/// even though requests crossed queues and worker handles.
pub fn service_counter_chain<E: TxnEngine>(
    engine: &E,
    clients: usize,
    per_client: usize,
    objects: usize,
) {
    let name = engine.engine_name();
    let shards = engine.shards();
    let vars: Vec<EngineVar<E, u64>> = (0..objects)
        .map(|i| engine.new_var_on(i % shards.max(1), 0u64))
        .collect();
    let svc = Arc::new(TxnService::start(
        engine.clone(),
        ServiceConfig {
            workers: 3,
            queue_depth: 64,
        },
    ));

    let log: Vec<(usize, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                let svc = Arc::clone(&svc);
                let vars = vars.clone();
                s.spawn(move || {
                    let mut rng = Lcg(t as u64 + 1);
                    let mut local = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let object = rng.below(vars.len());
                        let var = vars[object].clone();
                        let completion = submit_retrying(
                            &svc,
                            Some(object % shards.max(1)),
                            move |h: &mut E::Handle| {
                                let var = var.clone();
                                h.atomically(move |tx| {
                                    let read = *tx.read(&var)?;
                                    tx.write(&var, read + 1)?;
                                    Ok(read)
                                })
                            },
                        );
                        let read = completion.wait().expect("service canceled a request").value;
                        local.push((object, read));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    let svc = Arc::into_inner(svc).expect("all clients joined");
    let report = svc.shutdown();
    assert_eq!(
        report.completed, report.submitted,
        "{name}: service lost accepted requests"
    );
    assert_eq!(
        report.completed as usize,
        clients * per_client,
        "{name}: completion count diverges from client count"
    );
    assert_eq!(
        report.latency.count(),
        report.completed,
        "{name}: every completion must be latency-accounted"
    );

    let mut log = log;
    log.sort_unstable();
    for (object, var) in vars.iter().enumerate() {
        let reads: Vec<u64> = log
            .iter()
            .filter(|&&(o, _)| o == object)
            .map(|&(_, r)| r)
            .collect();
        for (pos, &read) in reads.iter().enumerate() {
            assert_eq!(
                read, pos as u64,
                "{name}: object {object} read-chain has a gap or duplicate at \
                 position {pos} — service-committed history is not serializable"
            );
        }
        assert_eq!(
            *E::peek(var),
            reads.len() as u64,
            "{name}: object {object} final value diverges from its chain"
        );
    }
}

/// Concurrent transfers plus read-only audits through the service: no audit
/// request may ever observe a sum off the invariant total, and the
/// quiescent total must be conserved exactly.
pub fn service_audit_snapshot<E: TxnEngine>(
    engine: &E,
    writers: usize,
    auditors: usize,
    steps: usize,
) {
    const ACCOUNTS: usize = 6;
    const INITIAL: i64 = 200;
    let name = engine.engine_name();
    let shards = engine.shards();
    let vars: Vec<EngineVar<E, i64>> = (0..ACCOUNTS)
        .map(|i| engine.new_var_on(i % shards.max(1), INITIAL))
        .collect();
    let expected = ACCOUNTS as i64 * INITIAL;
    let svc = Arc::new(TxnService::start(
        engine.clone(),
        ServiceConfig {
            workers: 3,
            queue_depth: 32,
        },
    ));

    std::thread::scope(|s| {
        for t in 0..writers {
            let svc = Arc::clone(&svc);
            let vars = vars.clone();
            s.spawn(move || {
                let mut rng = Lcg(0xBEE5 + t as u64);
                for _ in 0..steps {
                    let from = rng.below(ACCOUNTS);
                    let to = (from + 1 + rng.below(ACCOUNTS - 1)) % ACCOUNTS;
                    let amount = (rng.next() % 7) as i64 - 3;
                    let (a, b) = (vars[from].clone(), vars[to].clone());
                    let c = submit_retrying(&svc, None, move |h: &mut E::Handle| {
                        let (a, b) = (a.clone(), b.clone());
                        h.atomically(move |tx| {
                            let va = *tx.read(&a)?;
                            let vb = *tx.read(&b)?;
                            tx.write(&a, va - amount)?;
                            tx.write(&b, vb + amount)?;
                            Ok(())
                        })
                    });
                    c.wait().expect("transfer canceled");
                }
            });
        }
        for _ in 0..auditors {
            let svc = Arc::clone(&svc);
            let vars = vars.clone();
            let name = name.clone();
            s.spawn(move || {
                for _ in 0..steps {
                    let vars2 = vars.clone();
                    let c = submit_retrying(&svc, None, move |h: &mut E::Handle| {
                        let vars = vars2.clone();
                        h.atomically(move |tx| {
                            let mut sum = 0i64;
                            for v in &vars {
                                sum += *tx.read(v)?;
                            }
                            Ok(sum)
                        })
                    });
                    let total = c.wait().expect("audit canceled").value;
                    assert_eq!(
                        total, expected,
                        "{name}: audit request observed a torn snapshot"
                    );
                }
            });
        }
    });

    let svc = Arc::into_inner(svc).expect("all clients joined");
    let report = svc.shutdown();
    assert_eq!(
        report.completed, report.submitted,
        "{name}: service lost accepted requests"
    );
    let total: i64 = vars.iter().map(|v| *E::peek(v)).sum();
    assert_eq!(total, expected, "{name}: quiescent total not conserved");
}

/// The whole service-driven suite at test-friendly sizes — the per-engine
/// hook the harness registry exposes next to the engine-level
/// `lsa_engine::conformance::full_suite`.
pub fn service_suite<E: TxnEngine>(engine: &E) {
    service_counter_chain(engine, 3, 120, 4);
    service_audit_snapshot(engine, 2, 2, 120);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_baseline::{NorecStm, Tl2Stm};
    use lsa_stm::{ShardedStm, Stm};
    use lsa_time::counter::SharedCounter;

    #[test]
    fn lsa_passes_the_service_suite() {
        service_suite(&Stm::new(SharedCounter::new()));
    }

    #[test]
    fn sharded_lsa_passes_the_service_suite_shard_affinely() {
        service_suite(&ShardedStm::new(SharedCounter::new(), 4));
    }

    #[test]
    fn tl2_passes_the_service_suite() {
        service_suite(&Tl2Stm::new(SharedCounter::new()));
    }

    #[test]
    fn norec_passes_the_service_suite() {
        service_suite(&NorecStm::new());
    }
}
