//! A small multi-threaded future executor, hand-rolled from `std`.
//!
//! The workspace builds offline (no tokio — see `crates/shims/*`), so the
//! async side of the service is driven by this: a fixed pool of worker
//! threads polling tasks from a shared run queue. Wakers re-enqueue their
//! task ([`std::task::Wake`] over the task's `Arc`), with a `scheduled` flag
//! so a task is queued at most once however many times it is woken.
//!
//! The open-loop load generator spawns one completion task per in-flight
//! request and uses [`Executor::wait_idle`] to drain them before reading
//! results; [`block_on`] serves callers that want to await a single future
//! on the current thread (park/unpark waker), with no executor at all.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::JoinHandle;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

struct ExecState {
    run_queue: VecDeque<Arc<Task>>,
    /// Spawned tasks that have not completed yet (includes parked ones).
    live: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<ExecState>,
    cv: Condvar,
}

struct Task {
    /// The future, consumed (set to `None`) on completion. The mutex also
    /// serializes polls: a wake landing *during* a poll can legally cause a
    /// second worker to pick the task up; it then blocks here until the
    /// first poll finishes (a spurious but harmless re-poll).
    future: Mutex<Option<BoxFuture>>,
    /// True while the task sits in the run queue — wakes are idempotent.
    scheduled: AtomicBool,
    shared: Arc<Shared>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if self.scheduled.swap(true, Ordering::AcqRel) {
            return; // already queued
        }
        let shared = Arc::clone(&self.shared);
        let mut st = shared.state.lock().unwrap();
        st.run_queue.push_back(self);
        drop(st);
        // notify_all, not notify_one: the condvar is shared between idle
        // workers and `wait_idle` waiters, so a single notification could
        // be consumed by a `wait_idle` thread (which re-checks `live` and
        // goes back to sleep) while the queued task starves — a real
        // deadlock observed on single-CPU hosts.
        shared.cv.notify_all();
    }
}

/// A fixed-size thread-pool executor for `Future<Output = ()>` tasks.
pub struct Executor {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Executor {
    /// Start `threads` polling threads.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1);
        let shared = Arc::new(Shared {
            state: Mutex::new(ExecState {
                run_queue: VecDeque::new(),
                live: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let threads = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        Executor { shared, threads }
    }

    /// Queue `future` for execution.
    pub fn spawn<F>(&self, future: F)
    where
        F: Future<Output = ()> + Send + 'static,
    {
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(future))),
            scheduled: AtomicBool::new(true),
            shared: Arc::clone(&self.shared),
        });
        let mut st = self.shared.state.lock().unwrap();
        assert!(!st.shutdown, "spawn on a shut-down executor");
        st.live += 1;
        st.run_queue.push_back(task);
        drop(st);
        // See Task::wake for why this must be notify_all.
        self.shared.cv.notify_all();
    }

    /// Block until every spawned task has completed. Tasks parked on wakers
    /// count as live — this returns only when all of them resolved.
    pub fn wait_idle(&self) {
        let mut st = self.shared.state.lock().unwrap();
        while st.live > 0 {
            st = self.shared.cv.wait(st).unwrap();
        }
    }

    /// Number of tasks spawned but not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.shared.state.lock().unwrap().live
    }

    /// Stop the pool and join its threads. Pending tasks are dropped.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    fn begin_shutdown(&self) {
        let mut st = self.shared.state.lock().unwrap();
        st.shutdown = true;
        st.run_queue.clear();
        drop(st);
        self.shared.cv.notify_all();
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let task = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(t) = st.run_queue.pop_front() {
                    break t;
                }
                st = shared.cv.wait(st).unwrap();
            }
        };
        // Clear `scheduled` *before* polling: a wake arriving mid-poll must
        // re-queue the task or the wake-up would be lost.
        task.scheduled.store(false, Ordering::Release);
        let waker: Waker = Arc::clone(&task).into();
        let mut cx = Context::from_waker(&waker);
        let mut slot = task.future.lock().unwrap();
        let done = match slot.as_mut() {
            Some(fut) => fut.as_mut().poll(&mut cx).is_ready(),
            None => false, // spurious re-poll after completion
        };
        if done {
            *slot = None;
            drop(slot);
            let mut st = shared.state.lock().unwrap();
            st.live -= 1;
            drop(st);
            shared.cv.notify_all(); // wait_idle watchers
        }
    }
}

struct ParkWaker {
    thread: std::thread::Thread,
    notified: AtomicBool,
}

impl Wake for ParkWaker {
    fn wake(self: Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

/// Drive `future` to completion on the calling thread (park/unpark waker).
/// Pins by boxing once — the crate denies `unsafe`, so stack pinning is out.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = Box::pin(future);
    let parker = Arc::new(ParkWaker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker: Waker = Arc::clone(&parker).into();
    let mut cx = Context::from_waker(&waker);
    loop {
        if let Poll::Ready(v) = future.as_mut().poll(&mut cx) {
            return v;
        }
        // Park until woken; the flag absorbs wake-ups that land before the
        // park (unpark "tokens" do not otherwise accumulate across loops).
        while !parker.notified.swap(false, Ordering::Acquire) {
            std::thread::park();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    /// A future that stays pending `remaining` times, handing its waker to a
    /// helper thread that wakes it after a delay — exercises the real
    /// park/wake path rather than immediate-ready polls.
    struct CountDown {
        remaining: usize,
        polls: Arc<AtomicUsize>,
    }

    impl Future for CountDown {
        type Output = usize;

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<usize> {
            self.polls.fetch_add(1, Ordering::SeqCst);
            if self.remaining == 0 {
                return Poll::Ready(self.polls.load(Ordering::SeqCst));
            }
            self.remaining -= 1;
            let waker = cx.waker().clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(1));
                waker.wake();
            });
            Poll::Pending
        }
    }

    #[test]
    fn block_on_drives_wakeups() {
        let polls = Arc::new(AtomicUsize::new(0));
        let got = block_on(CountDown {
            remaining: 3,
            polls: Arc::clone(&polls),
        });
        assert_eq!(got, 4, "3 pending polls + 1 ready poll");
    }

    #[test]
    fn spawned_tasks_all_run_and_idle_drains() {
        let ex = Executor::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..50 {
            let counter = Arc::clone(&counter);
            let polls = Arc::new(AtomicUsize::new(0));
            ex.spawn(async move {
                // Mix immediately-ready and genuinely-parking tasks.
                if i % 2 == 0 {
                    CountDown {
                        remaining: 2,
                        polls,
                    }
                    .await;
                }
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        ex.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
        assert_eq!(ex.live_tasks(), 0);
        ex.shutdown();
    }

    #[test]
    fn redundant_wakes_poll_once_per_schedule() {
        // A future whose first poll hands out its waker, which the test
        // then wakes many times concurrently: the task must complete and
        // must not be polled once per wake.
        struct WakeStorm {
            slot: Arc<Mutex<Option<Waker>>>,
            armed: bool,
            polls: Arc<AtomicUsize>,
        }
        impl Future for WakeStorm {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                self.polls.fetch_add(1, Ordering::SeqCst);
                if self.armed {
                    return Poll::Ready(());
                }
                self.armed = true;
                *self.slot.lock().unwrap() = Some(cx.waker().clone());
                Poll::Pending
            }
        }
        let ex = Executor::new(2);
        let slot = Arc::new(Mutex::new(None));
        let polls = Arc::new(AtomicUsize::new(0));
        ex.spawn(WakeStorm {
            slot: Arc::clone(&slot),
            armed: false,
            polls: Arc::clone(&polls),
        });
        // Wait for the first poll to park the task.
        let waker = loop {
            if let Some(w) = slot.lock().unwrap().clone() {
                break w;
            }
            std::thread::yield_now();
        };
        std::thread::scope(|s| {
            for _ in 0..8 {
                let w = waker.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        w.wake_by_ref();
                    }
                });
            }
        });
        ex.wait_idle();
        let total = polls.load(Ordering::SeqCst);
        assert!(
            (2..=10).contains(&total),
            "800 wakes must coalesce into a handful of polls, got {total}"
        );
        ex.shutdown();
    }

    #[test]
    fn drop_joins_threads() {
        let ex = Executor::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&ran);
        ex.spawn(async move {
            r2.fetch_add(1, Ordering::SeqCst);
        });
        ex.wait_idle();
        drop(ex);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }
}
