//! Latency histogram — re-exported from `lsa-obs`, its home since the
//! observability layer unified latency accounting across the service
//! workers, the wire lanes, and the metrics registry. The type (and its
//! HDR-style bucket layout) is unchanged; see [`lsa_obs::histogram`] for
//! the implementation and its property tests.

pub use lsa_obs::LatencyHistogram;
