//! # lsa-service — an async transaction-service front-end over any engine
//!
//! The paper's scalable time bases exist to make commit-time arbitration
//! cheap enough that an STM can serve *many concurrent clients*. This crate
//! supplies the serving layer: requests submitted from any thread are
//! scheduled onto a pool of workers — each holding one long-lived registered
//! [`EngineHandle`](lsa_engine::EngineHandle) of any
//! [`TxnEngine`](lsa_engine::TxnEngine) — and completions come back through
//! futures, so the request topology (thousands of clients, few STM threads)
//! is decoupled from the engine's thread registration model.
//!
//! The workspace builds offline (no tokio — see `crates/shims/*`), so the
//! runtime is hand-rolled from `std` + `core::future`:
//!
//! * [`service`] — [`TxnService`]: worker pool, bounded per-worker
//!   submission queues with admission control (typed
//!   [`SubmitError::Overloaded`] sheds past the depth limit), shard-affine
//!   routing on sharded engines, per-request latency capture, and a merged
//!   [`ServiceReport`] whose shed accounting lands in the cross-engine
//!   [`AbortClass::Overload`](lsa_engine::AbortClass) taxonomy,
//! * [`oneshot`] — the completion channel: a future-and-blocking receiver,
//!   poolable through [`oneshot::OneshotPool`] so hot request paths reuse
//!   the channel allocation,
//! * [`queue`] — the lock-free bounded MPSC submission ring (memory
//!   ordering argument in DESIGN.md §13); the previous mutex
//!   implementation survives as [`MutexQueue`] for the `queue_bench`
//!   old-vs-new comparison,
//! * [`pool`] — the lock-free object [`Pool`] behind the allocation-free
//!   request lifecycle (request records, oneshots, reply buffers), with
//!   the hit/miss gauge `service_bench` prints,
//! * [`executor`] — a small multi-threaded future executor plus
//!   [`block_on`], driving completion futures without an async framework,
//! * [`histogram`] — HDR-style bucketed latency histogram (p50/p90/p99/max
//!   at ~3% resolution, O(1) recording),
//! * [`conformance`] — the engine-generic correctness suite re-expressed as
//!   concurrent request submissions *through* the service.
//!
//! Why open-loop latency is the right lens for the paper's claims, and the
//! backpressure policy, are written up in `DESIGN.md` §10; the harness's
//! `service_bench` binary drives this crate across the engine registry.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod conformance;
pub mod executor;
pub mod histogram;
pub mod oneshot;
pub mod pool;
pub mod queue;
pub mod service;

pub use executor::{block_on, Executor};
pub use histogram::LatencyHistogram;
pub use pool::{Pool, PoolStats};
pub use queue::{BoundedQueue, MutexQueue, PushError};
pub use service::{
    Completion, Response, RunRequest, ServiceConfig, ServiceHandle, ServiceReport, SubmitError,
    TxnService,
};
