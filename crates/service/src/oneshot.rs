//! A hand-rolled oneshot channel: the completion path of the service.
//!
//! One value travels from the worker that executed a request to the client
//! that submitted it. The receiving side is *both* a [`Future`] (so async
//! clients — the open-loop load generator's completion tasks — can `await`
//! it on the [`crate::executor`]) and a blocking [`Receiver::wait`] (so
//! plain threads — the conformance clients — need no executor at all).
//!
//! The workspace builds offline with no tokio/futures dependency (see
//! `crates/shims/*`), so this is `std` + `core::task` only: a mutex-guarded
//! slot holding either the parked consumer's [`Waker`]/condvar or the value.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};

/// Error returned when the sender was dropped without sending — for the
/// service this means the worker pool shut down before running the request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Canceled;

impl std::fmt::Display for Canceled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("oneshot sender dropped without sending")
    }
}

impl std::error::Error for Canceled {}

enum Slot<T> {
    /// Nothing sent yet; holds the consumer's waker if it polled.
    Empty(Option<Waker>),
    /// Value delivered, not yet taken.
    Value(T),
    /// Sender dropped without sending.
    Closed,
    /// Value already handed to the consumer.
    Taken,
}

struct Inner<T> {
    slot: Mutex<Slot<T>>,
    cv: Condvar,
}

/// Create a connected sender/receiver pair.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        slot: Mutex::new(Slot::Empty(None)),
        cv: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
            sent: false,
        },
        Receiver { inner },
    )
}

/// The producing half; consumed by [`Sender::send`].
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
    sent: bool,
}

impl<T> Sender<T> {
    /// Deliver `value`, waking the consumer if it is parked. Delivery into a
    /// dropped receiver is not an error — the value is simply discarded
    /// (the service must not panic because a client gave up on a request).
    pub fn send(mut self, value: T) {
        self.sent = true;
        let waker = {
            let mut slot = self.inner.slot.lock().unwrap();
            let prev = std::mem::replace(&mut *slot, Slot::Value(value));
            match prev {
                Slot::Empty(w) => w,
                // Receiver-side states are unreachable while we exist and
                // `send` consumes the only sender.
                _ => None,
            }
        };
        self.inner.cv.notify_all();
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.sent {
            return;
        }
        let waker = {
            let mut slot = self.inner.slot.lock().unwrap();
            match std::mem::replace(&mut *slot, Slot::Closed) {
                Slot::Empty(w) => w,
                other => {
                    *slot = other;
                    None
                }
            }
        };
        self.inner.cv.notify_all();
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// The consuming half: a [`Future`] resolving to `Result<T, Canceled>`.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Receiver<T> {
    /// Non-blocking probe: `None` while nothing happened yet.
    pub fn try_recv(&mut self) -> Option<Result<T, Canceled>> {
        let mut slot = self.inner.slot.lock().unwrap();
        match std::mem::replace(&mut *slot, Slot::Taken) {
            Slot::Value(v) => Some(Ok(v)),
            Slot::Closed => Some(Err(Canceled)),
            other @ Slot::Empty(_) => {
                *slot = other;
                None
            }
            Slot::Taken => panic!("oneshot value already taken"),
        }
    }

    /// Block the calling thread until the value (or cancellation) arrives.
    pub fn wait(self) -> Result<T, Canceled> {
        let mut slot = self.inner.slot.lock().unwrap();
        loop {
            match std::mem::replace(&mut *slot, Slot::Taken) {
                Slot::Value(v) => return Ok(v),
                Slot::Closed => return Err(Canceled),
                other @ Slot::Empty(_) => {
                    *slot = other;
                    slot = self.inner.cv.wait(slot).unwrap();
                }
                Slot::Taken => panic!("oneshot value already taken"),
            }
        }
    }
}

impl<T> Future for Receiver<T> {
    type Output = Result<T, Canceled>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut slot = this.inner.slot.lock().unwrap();
        match std::mem::replace(&mut *slot, Slot::Taken) {
            Slot::Value(v) => Poll::Ready(Ok(v)),
            Slot::Closed => Poll::Ready(Err(Canceled)),
            Slot::Empty(_) => {
                // (Re)register the latest waker — the task may migrate
                // between executor threads across polls.
                *slot = Slot::Empty(Some(cx.waker().clone()));
                Poll::Pending
            }
            Slot::Taken => panic!("oneshot polled after completion"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::task::Wake;

    struct CountingWaker(AtomicUsize);

    impl Wake for CountingWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn value_flows_through() {
        let (tx, rx) = channel();
        tx.send(42u64);
        assert_eq!(rx.wait(), Ok(42));
    }

    #[test]
    fn try_recv_sees_pending_then_value() {
        let (tx, mut rx) = channel();
        assert!(rx.try_recv().is_none());
        tx.send(7i32);
        assert_eq!(rx.try_recv(), Some(Ok(7)));
    }

    #[test]
    fn dropped_sender_cancels() {
        let (tx, rx) = channel::<u8>();
        drop(tx);
        assert_eq!(rx.wait(), Err(Canceled));
    }

    #[test]
    fn blocking_wait_crosses_threads() {
        let (tx, rx) = channel();
        let j = std::thread::spawn(move || rx.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send("done");
        assert_eq!(j.join().unwrap(), Ok("done"));
    }

    /// Wake correctness: a send after a pending poll must invoke the stored
    /// waker exactly once; the woken poll then observes the value.
    #[test]
    fn send_wakes_pending_poll() {
        let (tx, mut rx) = channel();
        let counter = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let waker: Waker = Arc::clone(&counter).into();
        let mut cx = Context::from_waker(&waker);
        assert!(Pin::new(&mut rx).poll(&mut cx).is_pending());
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);
        tx.send(5u8);
        assert_eq!(counter.0.load(Ordering::SeqCst), 1, "send must wake");
        match Pin::new(&mut rx).poll(&mut cx) {
            Poll::Ready(Ok(5)) => {}
            other => panic!("expected ready value, got {other:?}"),
        }
    }

    /// Drop correctness: cancelling wakes a parked consumer too, and the
    /// waker registered last is the one woken.
    #[test]
    fn cancel_wakes_latest_waker() {
        let (tx, mut rx) = channel::<u8>();
        let stale = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let fresh = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let w1: Waker = Arc::clone(&stale).into();
        let w2: Waker = Arc::clone(&fresh).into();
        assert!(Pin::new(&mut rx)
            .poll(&mut Context::from_waker(&w1))
            .is_pending());
        assert!(Pin::new(&mut rx)
            .poll(&mut Context::from_waker(&w2))
            .is_pending());
        drop(tx);
        assert_eq!(stale.0.load(Ordering::SeqCst), 0, "stale waker replaced");
        assert_eq!(fresh.0.load(Ordering::SeqCst), 1, "latest waker woken");
        assert!(matches!(
            Pin::new(&mut rx).poll(&mut Context::from_waker(&w2)),
            Poll::Ready(Err(Canceled))
        ));
    }

    /// A send into a dropped receiver must not panic or leak the lock.
    #[test]
    fn send_to_dropped_receiver_is_quiet() {
        let (tx, rx) = channel();
        drop(rx);
        tx.send(9usize);
    }
}
