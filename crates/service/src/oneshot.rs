//! A hand-rolled oneshot channel: the completion path of the service.
//!
//! One value travels from the worker that executed a request to the client
//! that submitted it. The receiving side is *both* a [`Future`] (so async
//! clients — the open-loop load generator's completion tasks — can `await`
//! it on the [`crate::executor`]) and a blocking [`Receiver::wait`] (so
//! plain threads — the conformance clients — need no executor at all).
//!
//! The workspace builds offline with no tokio/futures dependency (see
//! `crates/shims/*`), so this is `std` + `core::task` only: a mutex-guarded
//! slot holding either the parked consumer's [`Waker`]/condvar or the value.
//!
//! Channels can be *pooled*: an [`OneshotPool`] recycles the shared
//! allocation behind a channel once both halves are done with it, so a hot
//! request path (the wire client's pending-reply correlation) pays no heap
//! allocation per request at steady state. [`channel`] remains the
//! unpooled constructor.

use crate::pool::{Pool, PoolStats, WeakPool};
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};

/// Error returned when the sender was dropped without sending — for the
/// service this means the worker pool shut down before running the request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Canceled;

impl std::fmt::Display for Canceled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("oneshot sender dropped without sending")
    }
}

impl std::error::Error for Canceled {}

enum Slot<T> {
    /// Nothing sent yet; holds the consumer's waker if it polled.
    Empty(Option<Waker>),
    /// Value delivered, not yet taken.
    Value(T),
    /// Sender dropped without sending.
    Closed,
    /// Value already handed to the consumer.
    Taken,
}

struct Inner<T> {
    slot: Mutex<Slot<T>>,
    cv: Condvar,
    /// Where the shared allocation goes when both halves are done with it.
    /// Dangling (never upgrades) for unpooled channels.
    home: WeakPool<Arc<Inner<T>>>,
}

/// Create a connected, unpooled sender/receiver pair (one allocation per
/// channel). Hot paths should prefer an [`OneshotPool`].
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    pair(Arc::new(Inner {
        slot: Mutex::new(Slot::Empty(None)),
        cv: Condvar::new(),
        home: WeakPool::new(),
    }))
}

fn pair<T>(inner: Arc<Inner<T>>) -> (Sender<T>, Receiver<T>) {
    (
        Sender {
            inner: Some(Arc::clone(&inner)),
        },
        Receiver { inner: Some(inner) },
    )
}

/// A pool of oneshot channels: [`OneshotPool::channel`] hands out recycled
/// channel allocations, and whichever half of a pair is relinquished *last*
/// (sent/waited/dropped) resets the slot and returns the allocation to the
/// pool. At steady state a request/reply hot loop pays zero allocations for
/// its completion plumbing; [`stats`](OneshotPool::stats) exposes the
/// hit/miss gauge that proves it.
pub struct OneshotPool<T> {
    pool: Pool<Arc<Inner<T>>>,
}

impl<T> Clone for OneshotPool<T> {
    fn clone(&self) -> Self {
        OneshotPool {
            pool: self.pool.clone(),
        }
    }
}

impl<T> OneshotPool<T> {
    /// A pool retaining at most `capacity` free channels. Size it past the
    /// expected number of concurrently in-flight requests.
    pub fn new(capacity: usize) -> Self {
        OneshotPool {
            pool: Pool::new(capacity),
        }
    }

    /// A connected pair backed by a recycled allocation when one is
    /// available (pool hit), or a fresh one otherwise (miss).
    pub fn channel(&self) -> (Sender<T>, Receiver<T>) {
        let inner = self.pool.get().unwrap_or_else(|| {
            Arc::new(Inner {
                slot: Mutex::new(Slot::Empty(None)),
                cv: Condvar::new(),
                home: self.pool.downgrade(),
            })
        });
        pair(inner)
    }

    /// Hit/miss traffic of [`channel`](OneshotPool::channel).
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }
}

/// Relinquish one half's reference. The last half out (sole owner of the
/// `Arc`) resets the slot and recycles the allocation to its home pool.
/// Both halves hold independent clones, so a concurrent double-drop can at
/// worst *miss* a recycle (both see a count of 2 — the allocation frees
/// normally), never recycle twice or recycle a live channel.
fn release<T>(arc: Arc<Inner<T>>) {
    if Arc::strong_count(&arc) == 1 {
        if let Some(pool) = arc.home.upgrade() {
            *arc.slot.lock().unwrap() = Slot::Empty(None);
            pool.put(arc);
        }
    }
}

/// The producing half; consumed by [`Sender::send`].
pub struct Sender<T> {
    /// `Some` until the half is relinquished (send or drop).
    inner: Option<Arc<Inner<T>>>,
}

impl<T> Sender<T> {
    /// Deliver `value`, waking the consumer if it is parked. Delivery into a
    /// dropped receiver is not an error — the value is simply discarded
    /// (the service must not panic because a client gave up on a request).
    pub fn send(mut self, value: T) {
        let inner = self.inner.take().expect("send consumes the live sender");
        let waker = {
            let mut slot = inner.slot.lock().unwrap();
            let prev = std::mem::replace(&mut *slot, Slot::Value(value));
            match prev {
                Slot::Empty(w) => w,
                // Receiver-side states are unreachable while we exist and
                // `send` consumes the only sender.
                _ => None,
            }
        };
        inner.cv.notify_all();
        if let Some(w) = waker {
            w.wake();
        }
        release(inner);
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return; // sent: the channel was relinquished there
        };
        let waker = {
            let mut slot = inner.slot.lock().unwrap();
            match std::mem::replace(&mut *slot, Slot::Closed) {
                Slot::Empty(w) => w,
                other => {
                    *slot = other;
                    None
                }
            }
        };
        inner.cv.notify_all();
        if let Some(w) = waker {
            w.wake();
        }
        release(inner);
    }
}

/// The consuming half: a [`Future`] resolving to `Result<T, Canceled>`.
pub struct Receiver<T> {
    /// `Some` until the half is relinquished (wait or drop).
    inner: Option<Arc<Inner<T>>>,
}

impl<T> Receiver<T> {
    fn live(&self) -> &Inner<T> {
        self.inner.as_ref().expect("receiver relinquished")
    }

    /// Non-blocking probe: `None` while nothing happened yet.
    pub fn try_recv(&mut self) -> Option<Result<T, Canceled>> {
        let inner = self.live();
        let mut slot = inner.slot.lock().unwrap();
        match std::mem::replace(&mut *slot, Slot::Taken) {
            Slot::Value(v) => Some(Ok(v)),
            Slot::Closed => Some(Err(Canceled)),
            other @ Slot::Empty(_) => {
                *slot = other;
                None
            }
            Slot::Taken => panic!("oneshot value already taken"),
        }
    }

    /// Block the calling thread until the value (or cancellation) arrives.
    pub fn wait(mut self) -> Result<T, Canceled> {
        let inner = self.inner.take().expect("wait consumes the live receiver");
        let result = {
            let mut slot = inner.slot.lock().unwrap();
            loop {
                match std::mem::replace(&mut *slot, Slot::Taken) {
                    Slot::Value(v) => break Ok(v),
                    Slot::Closed => break Err(Canceled),
                    other @ Slot::Empty(_) => {
                        *slot = other;
                        slot = inner.cv.wait(slot).unwrap();
                    }
                    Slot::Taken => panic!("oneshot value already taken"),
                }
            }
        };
        release(inner);
        result
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            release(inner);
        }
    }
}

impl<T> Future for Receiver<T> {
    type Output = Result<T, Canceled>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut slot = this.live().slot.lock().unwrap();
        match std::mem::replace(&mut *slot, Slot::Taken) {
            Slot::Value(v) => Poll::Ready(Ok(v)),
            Slot::Closed => Poll::Ready(Err(Canceled)),
            Slot::Empty(_) => {
                // (Re)register the latest waker — the task may migrate
                // between executor threads across polls.
                *slot = Slot::Empty(Some(cx.waker().clone()));
                Poll::Pending
            }
            Slot::Taken => panic!("oneshot polled after completion"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::task::Wake;

    struct CountingWaker(AtomicUsize);

    impl Wake for CountingWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn value_flows_through() {
        let (tx, rx) = channel();
        tx.send(42u64);
        assert_eq!(rx.wait(), Ok(42));
    }

    #[test]
    fn try_recv_sees_pending_then_value() {
        let (tx, mut rx) = channel();
        assert!(rx.try_recv().is_none());
        tx.send(7i32);
        assert_eq!(rx.try_recv(), Some(Ok(7)));
    }

    #[test]
    fn dropped_sender_cancels() {
        let (tx, rx) = channel::<u8>();
        drop(tx);
        assert_eq!(rx.wait(), Err(Canceled));
    }

    #[test]
    fn blocking_wait_crosses_threads() {
        let (tx, rx) = channel();
        let j = std::thread::spawn(move || rx.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send("done");
        assert_eq!(j.join().unwrap(), Ok("done"));
    }

    /// Wake correctness: a send after a pending poll must invoke the stored
    /// waker exactly once; the woken poll then observes the value.
    #[test]
    fn send_wakes_pending_poll() {
        let (tx, mut rx) = channel();
        let counter = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let waker: Waker = Arc::clone(&counter).into();
        let mut cx = Context::from_waker(&waker);
        assert!(Pin::new(&mut rx).poll(&mut cx).is_pending());
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);
        tx.send(5u8);
        assert_eq!(counter.0.load(Ordering::SeqCst), 1, "send must wake");
        match Pin::new(&mut rx).poll(&mut cx) {
            Poll::Ready(Ok(5)) => {}
            other => panic!("expected ready value, got {other:?}"),
        }
    }

    /// Drop correctness: cancelling wakes a parked consumer too, and the
    /// waker registered last is the one woken.
    #[test]
    fn cancel_wakes_latest_waker() {
        let (tx, mut rx) = channel::<u8>();
        let stale = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let fresh = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let w1: Waker = Arc::clone(&stale).into();
        let w2: Waker = Arc::clone(&fresh).into();
        assert!(Pin::new(&mut rx)
            .poll(&mut Context::from_waker(&w1))
            .is_pending());
        assert!(Pin::new(&mut rx)
            .poll(&mut Context::from_waker(&w2))
            .is_pending());
        drop(tx);
        assert_eq!(stale.0.load(Ordering::SeqCst), 0, "stale waker replaced");
        assert_eq!(fresh.0.load(Ordering::SeqCst), 1, "latest waker woken");
        assert!(matches!(
            Pin::new(&mut rx).poll(&mut Context::from_waker(&w2)),
            Poll::Ready(Err(Canceled))
        ));
    }

    /// A send into a dropped receiver must not panic or leak the lock.
    #[test]
    fn send_to_dropped_receiver_is_quiet() {
        let (tx, rx) = channel();
        drop(rx);
        tx.send(9usize);
    }

    /// Pooled channels: the first pair misses (fresh allocation), completes
    /// normally, and its allocation comes back reset for the next pair.
    #[test]
    fn pooled_channel_recycles_after_both_halves() {
        let pool = OneshotPool::new(4);
        let (tx, rx) = pool.channel(); // cold: miss
        tx.send(1u32);
        assert_eq!(rx.wait(), Ok(1));
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (0, 1));

        let (tx, rx) = pool.channel(); // recycled: hit
        assert_eq!(pool.stats().hits, 1);
        drop(tx); // cancellation also recycles once both halves are gone
        assert_eq!(rx.wait(), Err(Canceled));

        let (_tx, mut rx) = pool.channel();
        assert_eq!(pool.stats().hits, 2);
        assert!(rx.try_recv().is_none(), "recycled slot comes back empty");
    }

    /// An unconsumed sent value must not leak into the next user of the
    /// recycled allocation.
    #[test]
    fn recycled_slot_never_leaks_a_stale_value() {
        let pool = OneshotPool::new(2);
        let (tx, rx) = pool.channel();
        tx.send(7u8);
        drop(rx); // value never taken; slot reset on recycle
        let (_tx, mut rx) = pool.channel();
        assert_eq!(pool.stats().hits, 1, "allocation was recycled");
        assert!(rx.try_recv().is_none(), "stale value must be gone");
    }

    /// Pooled channels work across threads like unpooled ones.
    #[test]
    fn pooled_channel_crosses_threads() {
        let pool = OneshotPool::new(8);
        for round in 0..8u64 {
            let (tx, rx) = pool.channel();
            let j = std::thread::spawn(move || rx.wait());
            tx.send(round);
            assert_eq!(j.join().unwrap(), Ok(round));
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 8);
        assert!(s.hits >= 6, "steady state must mostly hit, got {s:?}");
    }
}
