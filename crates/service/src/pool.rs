//! A lock-free object pool: the allocation-free request lifecycle's
//! recycling station.
//!
//! The serving hot loop used to pay one heap allocation per request for the
//! boxed request record, one for the completion channel, and one for the
//! reply-encode buffer. A [`Pool`] closes that loop: finished objects are
//! [`put`](Pool::put) back and the next request [`get`](Pool::get)s a
//! recycled one — at steady state (pool warmed past the in-flight high-water
//! mark) the allocator is out of the per-request picture entirely.
//!
//! Misses are not errors: a miss means the caller allocates a fresh object
//! (cold start or an in-flight burst beyond the pool's depth), and an
//! overflowing `put` simply drops the object. Both sides stay lock-free —
//! the pool is a [`BoundedQueue`] ring used in its non-blocking mode — and
//! the hit/miss counters are cache-line padded so the gauge itself does not
//! become the contention point it is meant to expose. `service_bench`
//! prints the resulting hit rate, which is how the "no per-request heap
//! allocation at steady state" claim is demonstrated rather than asserted.

use crate::queue::BoundedQueue;
use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Pool traffic counters: how often [`Pool::get`] was served from the pool
/// (`hits`) versus falling back to a fresh allocation (`misses`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `get` calls served by a recycled object.
    pub hits: u64,
    /// `get` calls that found the pool empty (caller allocates).
    pub misses: u64,
}

impl PoolStats {
    /// Hits as a fraction of all `get` calls; 1.0 for an untouched pool so
    /// a cold gauge reads "nothing allocated" rather than "everything
    /// missed".
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fold another pool's traffic into this one (report aggregation).
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

struct PoolInner<T> {
    free: BoundedQueue<T>,
    hits: CachePadded<AtomicU64>,
    misses: CachePadded<AtomicU64>,
}

/// A bounded lock-free pool of recycled `T`s. Cloning shares the pool.
pub struct Pool<T> {
    inner: Arc<PoolInner<T>>,
}

impl<T> Clone for Pool<T> {
    fn clone(&self) -> Self {
        Pool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Pool<T> {
    /// An empty pool holding at most `capacity` free objects. Size it past
    /// the expected in-flight high-water mark (e.g. workers × queue depth)
    /// so steady-state traffic never overflows it.
    pub fn new(capacity: usize) -> Self {
        Pool {
            inner: Arc::new(PoolInner {
                free: BoundedQueue::new(capacity.max(1)),
                hits: CachePadded::new(AtomicU64::new(0)),
                misses: CachePadded::new(AtomicU64::new(0)),
            }),
        }
    }

    /// Take a recycled object, or `None` (counted as a miss) when the pool
    /// is empty — the caller allocates fresh. Never blocks.
    pub fn get(&self) -> Option<T> {
        match self.inner.free.try_pop() {
            Some(v) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Return an object for reuse. A full pool drops it (bounded memory
    /// beats a perfect hit rate). Never blocks.
    pub fn put(&self, value: T) {
        let _ = self.inner.free.try_push(value);
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
        }
    }

    /// Objects currently available for reuse.
    pub fn available(&self) -> usize {
        self.inner.free.len()
    }

    /// A non-owning handle to this pool. Pooled objects that carry a way
    /// back to their home pool should carry one of these: a strong `Pool`
    /// inside a pooled object would form a reference cycle (pool → free
    /// object → pool) and leak the pool at shutdown.
    pub fn downgrade(&self) -> WeakPool<T> {
        WeakPool {
            inner: Arc::downgrade(&self.inner),
        }
    }
}

/// A non-owning [`Pool`] handle; see [`Pool::downgrade`].
pub struct WeakPool<T> {
    inner: Weak<PoolInner<T>>,
}

impl<T> Clone for WeakPool<T> {
    fn clone(&self) -> Self {
        WeakPool {
            inner: Weak::clone(&self.inner),
        }
    }
}

impl<T> Default for WeakPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WeakPool<T> {
    /// A dangling handle that never upgrades — for objects created outside
    /// any pool (they recycle to nowhere and simply drop).
    pub fn new() -> Self {
        WeakPool { inner: Weak::new() }
    }

    /// The pool, if it is still alive.
    pub fn upgrade(&self) -> Option<Pool<T>> {
        self.inner.upgrade().map(|inner| Pool { inner })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_recycle_then_hit() {
        let pool: Pool<Vec<u8>> = Pool::new(4);
        assert!(pool.get().is_none(), "cold pool misses");
        pool.put(Vec::with_capacity(64));
        let v = pool.get().expect("recycled object is a hit");
        assert_eq!(v.capacity(), 64, "same object comes back");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn overflow_drops_instead_of_growing() {
        let pool: Pool<u32> = Pool::new(2);
        pool.put(1);
        pool.put(2);
        pool.put(3); // full: dropped
        assert_eq!(pool.available(), 2);
        assert!(pool.get().is_some());
        assert!(pool.get().is_some());
        assert!(pool.get().is_none());
    }

    #[test]
    fn cold_gauge_reads_full_hit_rate() {
        assert_eq!(PoolStats::default().hit_rate(), 1.0);
        let mut a = PoolStats { hits: 3, misses: 1 };
        a.merge(&PoolStats { hits: 1, misses: 3 });
        assert_eq!(a, PoolStats { hits: 4, misses: 4 });
    }

    #[test]
    fn shared_across_threads() {
        let pool: Pool<u64> = Pool::new(64);
        std::thread::scope(|s| {
            for t in 0..4 {
                let pool = pool.clone();
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        let v = pool.get().unwrap_or(t * 10_000 + i);
                        pool.put(v);
                    }
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 4_000, "every get accounted");
    }
}
