//! Bounded MPSC submission queues with admission control.
//!
//! Each service worker owns one of these. Producers never block: past the
//! configured depth [`BoundedQueue::try_push`] *sheds* the item with a typed
//! [`PushError::Overloaded`] — backpressure surfaces to the client as an
//! explicit admission decision instead of an unbounded queue silently
//! absorbing latency (the open-loop lens: under overload you want a shed
//! rate, not a queue whose wait time grows without bound).
//!
//! The consumer side blocks ([`BoundedQueue::pop`]) until an item arrives or
//! the queue is closed *and* drained — close-then-drain is what lets the
//! service shut down without dropping accepted requests.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Why a push was refused. Both variants hand the item back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — admission control sheds the request.
    Overloaded(T),
    /// The queue was closed (service shutting down).
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    pop_cv: Condvar,
}

/// A bounded multi-producer single-consumer (by convention) queue.
pub struct BoundedQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for BoundedQueue<T> {
    fn clone(&self) -> Self {
        BoundedQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> BoundedQueue<T> {
    /// New queue admitting at most `capacity` queued items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue depth must be at least 1");
        BoundedQueue {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    items: VecDeque::with_capacity(capacity.min(1024)),
                    closed: false,
                }),
                capacity,
                pop_cv: Condvar::new(),
            }),
        }
    }

    /// Admit `item` if there is room; shed it otherwise. Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.inner.state.lock().unwrap();
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.items.len() >= self.inner.capacity {
            return Err(PushError::Overloaded(item));
        }
        st.items.push_back(item);
        drop(st);
        self.inner.pop_cv.notify_one();
        Ok(())
    }

    /// Blocking pop: `Some(item)` in FIFO order, or `None` once the queue is
    /// closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.inner.pop_cv.wait(st).unwrap();
        }
    }

    /// Blocking batch pop: waits like [`pop`](BoundedQueue::pop) until work
    /// arrives, then drains up to `max` queued items into `out` in FIFO
    /// order. Returns the number appended; `0` means the queue is closed and
    /// fully drained. One lock acquisition (and at most one park/unpark
    /// cycle) amortizes over the whole burst, instead of the consumer waking
    /// once per item under backlog.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        assert!(max >= 1, "batch size must be at least 1");
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if !st.items.is_empty() {
                let n = st.items.len().min(max);
                out.extend(st.items.drain(..n));
                return n;
            }
            if st.closed {
                return 0;
            }
            st = self.inner.pop_cv.wait(st).unwrap();
        }
    }

    /// Close the queue: future pushes fail, consumers drain then observe
    /// `None`.
    pub fn close(&self) {
        self.inner.state.lock().unwrap().closed = true;
        self.inner.pop_cv.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn sheds_past_capacity_and_recovers() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        // Admission control: the third push is shed, item handed back.
        assert_eq!(q.try_push(3), Err(PushError::Overloaded(3)));
        assert_eq!(q.len(), 2);
        // Draining one slot re-opens admission.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn pop_batch_drains_bursts_in_fifo_order() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        // Capped at `max`, FIFO prefix first.
        assert_eq!(q.pop_batch(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        // The rest comes in one call when the backlog fits.
        assert_eq!(q.pop_batch(&mut out, 64), 6);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        q.close();
        assert_eq!(q.pop_batch(&mut out, 4), 0, "closed + drained ends");
    }

    #[test]
    fn pop_batch_blocks_until_work_or_close() {
        let q = BoundedQueue::<u8>::new(4);
        let q2 = q.clone();
        let j = std::thread::spawn(move || {
            let mut out = Vec::new();
            let n = q2.pop_batch(&mut out, 8);
            (n, out)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.try_push(7).unwrap();
        let (n, out) = j.join().unwrap();
        assert_eq!((n, out), (1, vec![7]));

        let q2 = q.clone();
        let j = std::thread::spawn(move || q2.pop_batch(&mut Vec::new(), 8));
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(j.join().unwrap(), 0, "close releases a blocked batch pop");
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(8);
        q.try_push("a").unwrap();
        q.close();
        assert_eq!(q.try_push("b"), Err(PushError::Closed("b")));
        assert_eq!(q.pop(), Some("a"), "accepted items survive close");
        assert_eq!(q.pop(), None, "then the consumer sees the end");
    }

    #[test]
    fn close_releases_blocked_consumer() {
        let q = BoundedQueue::<u8>::new(1);
        let q2 = q.clone();
        let j = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(j.join().unwrap(), None);
    }

    #[test]
    fn producers_race_consumer() {
        let q = BoundedQueue::new(64);
        let total: usize = std::thread::scope(|s| {
            for t in 0..4 {
                let q = q.clone();
                s.spawn(move || {
                    let mut pushed = 0;
                    while pushed < 100 {
                        if q.try_push(t).is_ok() {
                            pushed += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let q = q.clone();
            s.spawn(move || {
                let mut n = 0;
                while n < 400 {
                    if q.pop().is_some() {
                        n += 1;
                    }
                }
                n
            })
            .join()
            .unwrap()
        });
        assert_eq!(total, 400);
    }
}
