//! Bounded MPSC submission queues with admission control.
//!
//! Each service worker owns one of these. Producers never block: past the
//! configured depth [`BoundedQueue::try_push`] *sheds* the item with a typed
//! [`PushError::Overloaded`] — backpressure surfaces to the client as an
//! explicit admission decision instead of an unbounded queue silently
//! absorbing latency (the open-loop lens: under overload you want a shed
//! rate, not a queue whose wait time grows without bound).
//!
//! The consumer side blocks ([`BoundedQueue::pop`]) until an item arrives or
//! the queue is closed *and* drained — close-then-drain is what lets the
//! service shut down without dropping accepted requests.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Why a push was refused. Both variants hand the item back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — admission control sheds the request.
    Overloaded(T),
    /// The queue was closed (service shutting down).
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    pop_cv: Condvar,
}

/// A bounded multi-producer single-consumer (by convention) queue.
pub struct BoundedQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for BoundedQueue<T> {
    fn clone(&self) -> Self {
        BoundedQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> BoundedQueue<T> {
    /// New queue admitting at most `capacity` queued items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue depth must be at least 1");
        BoundedQueue {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    items: VecDeque::with_capacity(capacity.min(1024)),
                    closed: false,
                }),
                capacity,
                pop_cv: Condvar::new(),
            }),
        }
    }

    /// Admit `item` if there is room; shed it otherwise. Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.inner.state.lock().unwrap();
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.items.len() >= self.inner.capacity {
            return Err(PushError::Overloaded(item));
        }
        st.items.push_back(item);
        drop(st);
        self.inner.pop_cv.notify_one();
        Ok(())
    }

    /// Blocking pop: `Some(item)` in FIFO order, or `None` once the queue is
    /// closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.inner.pop_cv.wait(st).unwrap();
        }
    }

    /// Close the queue: future pushes fail, consumers drain then observe
    /// `None`.
    pub fn close(&self) {
        self.inner.state.lock().unwrap().closed = true;
        self.inner.pop_cv.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn sheds_past_capacity_and_recovers() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        // Admission control: the third push is shed, item handed back.
        assert_eq!(q.try_push(3), Err(PushError::Overloaded(3)));
        assert_eq!(q.len(), 2);
        // Draining one slot re-opens admission.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(8);
        q.try_push("a").unwrap();
        q.close();
        assert_eq!(q.try_push("b"), Err(PushError::Closed("b")));
        assert_eq!(q.pop(), Some("a"), "accepted items survive close");
        assert_eq!(q.pop(), None, "then the consumer sees the end");
    }

    #[test]
    fn close_releases_blocked_consumer() {
        let q = BoundedQueue::<u8>::new(1);
        let q2 = q.clone();
        let j = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(j.join().unwrap(), None);
    }

    #[test]
    fn producers_race_consumer() {
        let q = BoundedQueue::new(64);
        let total: usize = std::thread::scope(|s| {
            for t in 0..4 {
                let q = q.clone();
                s.spawn(move || {
                    let mut pushed = 0;
                    while pushed < 100 {
                        if q.try_push(t).is_ok() {
                            pushed += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let q = q.clone();
            s.spawn(move || {
                let mut n = 0;
                while n < 400 {
                    if q.pop().is_some() {
                        n += 1;
                    }
                }
                n
            })
            .join()
            .unwrap()
        });
        assert_eq!(total, 400);
    }
}
