//! Bounded MPSC submission queues with admission control.
//!
//! Each service worker owns one of these. Producers never block: past the
//! configured depth [`BoundedQueue::try_push`] *sheds* the item with a typed
//! [`PushError::Overloaded`] — backpressure surfaces to the client as an
//! explicit admission decision instead of an unbounded queue silently
//! absorbing latency (the open-loop lens: under overload you want a shed
//! rate, not a queue whose wait time grows without bound).
//!
//! The consumer side blocks ([`BoundedQueue::pop`]) until an item arrives or
//! the queue is closed *and* drained — close-then-drain is what lets the
//! service shut down without dropping accepted requests.
//!
//! # Implementation: a lock-free bounded ring
//!
//! The hot paths (`try_push`, the non-empty cases of `pop`/`pop_batch`) are
//! lock-free: an array of slots, each carrying a `stamp` word that encodes
//! which *lap* of the ring the slot is in (Vyukov's bounded MPMC scheme).
//! Stamps are double-spaced — `2·pos` means free for the producer claiming
//! position `pos`, `2·pos + 1` means published for the consumer at `pos` —
//! so the two states can never alias across laps at any capacity (with
//! single-spaced stamps, "published at `pos`" equals "free at `pos + 1`"
//! when the capacity is 1). A producer claims `pos` by CAS-advancing the
//! shared `tail` counter when `stamp == 2·pos`, writes the value, then
//! *publishes* with `stamp = 2·pos + 1`. The consumer takes a published
//! slot (`stamp == 2·head + 1`), reads the value, and frees it for the next
//! lap with `stamp = 2·(head + cap)`. Shedding needs no lock either: a slot
//! whose stamp is a full lap behind means the ring is full — confirmed
//! against `head` so a stale `tail` read cannot shed spuriously.
//!
//! Close is a single `fetch_or` of a high bit into the `tail` word, which
//! makes it linearize against producer claims: any producer that loaded
//! `tail` before the close fails its CAS (the word changed) and observes
//! `Closed` on reload. A successful `try_push` therefore *happened before*
//! the close and its item is guaranteed to be drained — the
//! completed==submitted shutdown invariant holds with no lock.
//!
//! Blocking is confined to the empty queue: the consumer parks on a
//! `Mutex`+`Condvar` pair only after registering itself in a `waiting`
//! counter and re-checking emptiness; a producer, after publishing, checks
//! `waiting` behind a `SeqCst` fence and takes the park lock only when a
//! consumer is actually parked — the empty→non-empty transition is the only
//! time the lock is touched. The full memory-ordering argument is written
//! up in DESIGN.md §13.

// The ring's value slots are `UnsafeCell<MaybeUninit<T>>`: initialization is
// hand-tracked through the stamp protocol, which the crate-wide
// `deny(unsafe_code)` cannot express. This module is the one audited
// exception; everything it exports is a safe interface.
#![allow(unsafe_code)]

use crossbeam_utils::CachePadded;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Why a push was refused. Both variants hand the item back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — admission control sheds the request.
    Overloaded(T),
    /// The queue was closed (service shutting down).
    Closed(T),
}

/// High bit of the `tail` word: the queue is closed. Keeping the flag in
/// the same word producers CAS on is what makes close linearizable against
/// concurrent pushes (see module docs).
const CLOSED: u64 = 1 << 63;
/// Low bits of the `tail` word: the producer position counter.
const POS_MASK: u64 = CLOSED - 1;

/// Stamp of a slot that is free for the producer claiming `pos`.
fn free(pos: u64) -> u64 {
    pos.wrapping_mul(2)
}

/// Stamp of a slot published for the consumer at `pos`.
fn published(pos: u64) -> u64 {
    pos.wrapping_mul(2).wrapping_add(1)
}

/// One ring slot: the lap stamp plus the (manually initialization-tracked)
/// value cell. `stamp == 2·pos` ⇒ free for the producer claiming `pos`;
/// `stamp == 2·pos + 1` ⇒ published, ready for the consumer at `pos`. The
/// doubling keeps the states distinct across laps at every capacity.
struct Slot<T> {
    stamp: AtomicU64,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct Inner<T> {
    /// Ring storage; length is the queue capacity.
    buf: Box<[Slot<T>]>,
    /// Capacity as the stamp lap increment.
    cap: u64,
    /// Producer cursor (low bits) + the [`CLOSED`] flag (high bit). Padded:
    /// producers hammer this word while the consumer hammers `head`.
    tail: CachePadded<AtomicU64>,
    /// Consumer cursor.
    head: CachePadded<AtomicU64>,
    /// Number of consumers parked (0 or 1 in MPSC use). Producers read this
    /// after publishing to decide whether the park lock must be touched.
    waiting: CachePadded<AtomicU64>,
    /// Park point for an empty-queue consumer. Never on the push fast path.
    park: Mutex<()>,
    cv: Condvar,
}

// SAFETY: the stamp protocol hands each slot to exactly one thread at a
// time (the claiming producer until publish, then the taking consumer), so
// sharing `Inner` across threads moves `T` values but never aliases them.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Drop any published-but-unconsumed items. `&mut self`: no
        // concurrent access, plain loads suffice.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut() & POS_MASK;
        for pos in head..tail {
            let slot = &self.buf[(pos % self.cap) as usize];
            if slot.stamp.load(Ordering::Relaxed) == published(pos) {
                // SAFETY: the published stamp marks the slot's value for
                // lap `pos` as written and not yet taken — initialized
                // and owned by nobody else.
                unsafe { (*slot.value.get()).assume_init_read() };
            }
        }
    }
}

/// A bounded multi-producer single-consumer (by convention) queue.
pub struct BoundedQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for BoundedQueue<T> {
    fn clone(&self) -> Self {
        BoundedQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Outcome of one non-blocking take attempt.
enum Take<T> {
    /// Got an item.
    Item(T),
    /// Nothing published and the queue is open.
    Empty,
    /// Closed and fully drained.
    Ended,
}

impl<T> BoundedQueue<T> {
    /// New queue admitting at most `capacity` queued items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue depth must be at least 1");
        let buf: Box<[Slot<T>]> = (0..capacity as u64)
            .map(|i| Slot {
                stamp: AtomicU64::new(free(i)),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        BoundedQueue {
            inner: Arc::new(Inner {
                buf,
                cap: capacity as u64,
                tail: CachePadded::new(AtomicU64::new(0)),
                head: CachePadded::new(AtomicU64::new(0)),
                waiting: CachePadded::new(AtomicU64::new(0)),
                park: Mutex::new(()),
                cv: Condvar::new(),
            }),
        }
    }

    /// Admit `item` if there is room; shed it otherwise. Never blocks and
    /// takes no lock — a full or closed queue is decided purely from the
    /// `tail`/`stamp` words (the wakeup lock is touched only when a
    /// consumer is parked, i.e. on an empty→non-empty transition).
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let inner = &*self.inner;
        loop {
            let tail = inner.tail.load(Ordering::Acquire);
            if tail & CLOSED != 0 {
                return Err(PushError::Closed(item));
            }
            let pos = tail;
            let slot = &inner.buf[(pos % inner.cap) as usize];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == free(pos) {
                // Slot free for this lap: claim the position. A concurrent
                // `close` flips the high bit of `tail`, so this CAS also
                // fails (and the reload observes Closed) — a successful
                // push strictly precedes any close.
                if inner
                    .tail
                    .compare_exchange_weak(tail, pos + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
                {
                    // SAFETY: the CAS made `pos` ours alone; the slot is
                    // free (stamp == free(pos)) until we publish below.
                    unsafe { (*slot.value.get()).write(item) };
                    slot.stamp.store(published(pos), Ordering::Release);
                    // Empty→non-empty wakeup, Dekker-style: publish, fence,
                    // then read `waiting`; the parking side registers in
                    // `waiting`, fences, then re-checks emptiness. One of
                    // the two must see the other's write (both are SeqCst-
                    // fenced), so a parked consumer is never missed.
                    fence(Ordering::SeqCst);
                    if inner.waiting.load(Ordering::Relaxed) > 0 {
                        drop(inner.park.lock().unwrap());
                        inner.cv.notify_one();
                    }
                    return Ok(());
                }
                // Lost the race; reload and retry.
            } else if stamp == published(pos.wrapping_sub(inner.cap)) {
                // The slot still holds last lap's item: ring full — unless
                // our `tail` read was stale. Confirm against `head` (the
                // fence orders the two loads): still a full lap apart ⇒
                // genuinely full ⇒ shed, lock-free.
                fence(Ordering::SeqCst);
                let head = inner.head.load(Ordering::Relaxed);
                if head.wrapping_add(inner.cap) == pos {
                    return Err(PushError::Overloaded(item));
                }
                std::hint::spin_loop();
            } else {
                // Another producer is mid-claim or our reads raced; retry.
                std::hint::spin_loop();
            }
        }
    }

    /// One non-blocking take attempt. Spins through the transient window in
    /// which a producer has claimed a position but not yet published it —
    /// the publish is a handful of instructions away, and waiting for it is
    /// what makes close-then-drain complete (a claimed item *will* appear).
    fn try_take(&self) -> Take<T> {
        let inner = &*self.inner;
        let mut spins = 0u32;
        loop {
            let head = inner.head.load(Ordering::Acquire);
            let slot = &inner.buf[(head % inner.cap) as usize];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == published(head) {
                // Published: claim it. (CAS, not a plain store, so the
                // internal `try_pop` stays safe under concurrent callers
                // even though the service uses one consumer per queue.)
                if inner
                    .head
                    .compare_exchange_weak(head, head + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
                {
                    // SAFETY: the CAS made `head` ours alone and the stamp
                    // says the value is initialized.
                    let value = unsafe { (*slot.value.get()).assume_init_read() };
                    slot.stamp
                        .store(free(head.wrapping_add(inner.cap)), Ordering::Release);
                    return Take::Item(value);
                }
            } else if stamp == free(head) {
                // Nothing published at `head`. Either the queue is empty, or
                // a producer has claimed this position (tail advanced past
                // `head`) and is about to publish.
                fence(Ordering::SeqCst);
                let tail = inner.tail.load(Ordering::Acquire);
                if tail & POS_MASK == head {
                    return if tail & CLOSED != 0 {
                        Take::Ended
                    } else {
                        Take::Empty
                    };
                }
                // Claimed but unpublished: the producer already won its CAS
                // (even against a close), so the item is coming — spin for
                // it rather than reporting empty or ended.
                spins += 1;
                if spins > 64 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            } else {
                // Stale `head` (another taker advanced it); retry.
                std::hint::spin_loop();
            }
        }
    }

    /// Park until the queue might have work (or was closed). The `waiting`
    /// registration + re-check under the lock pairs with the producer's
    /// publish + fence + `waiting` read: whichever side's fenced operation
    /// comes second sees the other's write, so the consumer never sleeps
    /// through a publish (see module docs).
    fn park_if_empty(&self) {
        let inner = &*self.inner;
        let guard = inner.park.lock().unwrap();
        inner.waiting.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let head = inner.head.load(Ordering::SeqCst);
        let tail = inner.tail.load(Ordering::SeqCst);
        if tail & POS_MASK == head && tail & CLOSED == 0 {
            // Genuinely empty and open: sleep until a publisher or closer
            // takes the lock and notifies. Spurious wakeups are fine — the
            // caller loops on `try_take`.
            let _guard = inner.cv.wait(guard).unwrap();
        }
        inner.waiting.fetch_sub(1, Ordering::SeqCst);
    }

    /// Blocking pop: `Some(item)` in FIFO order, or `None` once the queue is
    /// closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        loop {
            match self.try_take() {
                Take::Item(v) => return Some(v),
                Take::Ended => return None,
                Take::Empty => self.park_if_empty(),
            }
        }
    }

    /// Non-blocking pop: `Some(item)` if one is ready, `None` if the queue
    /// is empty *or* closed-and-drained. The lock-free fast path of
    /// [`pop`](BoundedQueue::pop) without the parking — what an object pool
    /// wants (a miss falls back to allocation, never to sleeping).
    pub fn try_pop(&self) -> Option<T> {
        match self.try_take() {
            Take::Item(v) => Some(v),
            Take::Empty | Take::Ended => None,
        }
    }

    /// Blocking batch pop: waits like [`pop`](BoundedQueue::pop) until work
    /// arrives, then drains up to `max` queued items into `out` in FIFO
    /// order. Returns the number appended; `0` means the queue is closed and
    /// fully drained. Under backlog the consumer takes items back-to-back
    /// with no park/unpark cycle between them.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        assert!(max >= 1, "batch size must be at least 1");
        loop {
            let mut n = 0;
            loop {
                match self.try_take() {
                    Take::Item(v) => {
                        out.push(v);
                        n += 1;
                        if n == max {
                            return n;
                        }
                    }
                    Take::Empty => {
                        if n > 0 {
                            return n;
                        }
                        self.park_if_empty();
                        break; // re-enter the drain loop
                    }
                    Take::Ended => return n,
                }
            }
        }
    }

    /// Close the queue: future pushes fail, consumers drain then observe
    /// `None`. One atomic `fetch_or` into the word producers CAS on — any
    /// push that succeeded happened strictly before the close and will be
    /// drained.
    pub fn close(&self) {
        self.inner.tail.fetch_or(CLOSED, Ordering::SeqCst);
        // Acquire the park lock before notifying so a consumer between its
        // emptiness re-check and `cv.wait` cannot miss the close: the
        // re-check happens under this lock, so it either sees the flag or
        // is already parked when the notification fires.
        drop(self.inner.park.lock().unwrap());
        self.inner.cv.notify_all();
    }

    /// Items currently queued (claimed positions included).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::SeqCst) & POS_MASK;
        let head = self.inner.head.load(Ordering::SeqCst);
        tail.saturating_sub(head) as usize
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The previous `Mutex`+`Condvar` implementation of the same contract,
/// retained as the baseline side of the `queue_bench` old-vs-new
/// comparison. Not used by the service.
pub struct MutexQueue<T> {
    inner: Arc<MutexInner<T>>,
}

struct MutexState<T> {
    items: VecDeque<T>,
    closed: bool,
}

struct MutexInner<T> {
    state: Mutex<MutexState<T>>,
    capacity: usize,
    pop_cv: Condvar,
}

impl<T> Clone for MutexQueue<T> {
    fn clone(&self) -> Self {
        MutexQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> MutexQueue<T> {
    /// New queue admitting at most `capacity` queued items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue depth must be at least 1");
        MutexQueue {
            inner: Arc::new(MutexInner {
                state: Mutex::new(MutexState {
                    items: VecDeque::with_capacity(capacity.min(1024)),
                    closed: false,
                }),
                capacity,
                pop_cv: Condvar::new(),
            }),
        }
    }

    /// Admit `item` if there is room; shed it otherwise. Never blocks (but
    /// does take the queue lock — the cost `queue_bench` measures).
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.inner.state.lock().unwrap();
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.items.len() >= self.inner.capacity {
            return Err(PushError::Overloaded(item));
        }
        st.items.push_back(item);
        drop(st);
        self.inner.pop_cv.notify_one();
        Ok(())
    }

    /// Blocking pop: `Some(item)` in FIFO order, or `None` once closed and
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.inner.pop_cv.wait(st).unwrap();
        }
    }

    /// Blocking batch pop; see [`BoundedQueue::pop_batch`].
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        assert!(max >= 1, "batch size must be at least 1");
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if !st.items.is_empty() {
                let n = st.items.len().min(max);
                out.extend(st.items.drain(..n));
                return n;
            }
            if st.closed {
                return 0;
            }
            st = self.inner.pop_cv.wait(st).unwrap();
        }
    }

    /// Close the queue: future pushes fail, consumers drain then end.
    pub fn close(&self) {
        self.inner.state.lock().unwrap().closed = true;
        self.inner.pop_cv.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn sheds_past_capacity_and_recovers() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        // Admission control: the third push is shed, item handed back.
        assert_eq!(q.try_push(3), Err(PushError::Overloaded(3)));
        assert_eq!(q.len(), 2);
        // Draining one slot re-opens admission.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn pop_batch_drains_bursts_in_fifo_order() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        // Capped at `max`, FIFO prefix first.
        assert_eq!(q.pop_batch(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        // The rest comes in one call when the backlog fits.
        assert_eq!(q.pop_batch(&mut out, 64), 6);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        q.close();
        assert_eq!(q.pop_batch(&mut out, 4), 0, "closed + drained ends");
    }

    #[test]
    fn pop_batch_blocks_until_work_or_close() {
        let q = BoundedQueue::<u8>::new(4);
        let q2 = q.clone();
        let j = std::thread::spawn(move || {
            let mut out = Vec::new();
            let n = q2.pop_batch(&mut out, 8);
            (n, out)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.try_push(7).unwrap();
        let (n, out) = j.join().unwrap();
        assert_eq!((n, out), (1, vec![7]));

        let q2 = q.clone();
        let j = std::thread::spawn(move || q2.pop_batch(&mut Vec::new(), 8));
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(j.join().unwrap(), 0, "close releases a blocked batch pop");
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(8);
        q.try_push("a").unwrap();
        q.close();
        assert_eq!(q.try_push("b"), Err(PushError::Closed("b")));
        assert_eq!(q.pop(), Some("a"), "accepted items survive close");
        assert_eq!(q.pop(), None, "then the consumer sees the end");
    }

    #[test]
    fn close_releases_blocked_consumer() {
        let q = BoundedQueue::<u8>::new(1);
        let q2 = q.clone();
        let j = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(j.join().unwrap(), None);
    }

    #[test]
    fn producers_race_consumer() {
        let q = BoundedQueue::new(64);
        let total: usize = std::thread::scope(|s| {
            for t in 0..4 {
                let q = q.clone();
                s.spawn(move || {
                    let mut pushed = 0;
                    while pushed < 100 {
                        if q.try_push(t).is_ok() {
                            pushed += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let q = q.clone();
            s.spawn(move || {
                let mut n = 0;
                while n < 400 {
                    if q.pop().is_some() {
                        n += 1;
                    }
                }
                n
            })
            .join()
            .unwrap()
        });
        assert_eq!(total, 400);
    }

    #[test]
    fn try_pop_never_blocks() {
        let q = BoundedQueue::<u8>::new(2);
        assert_eq!(q.try_pop(), None, "empty: miss, no park");
        q.try_push(9).unwrap();
        assert_eq!(q.try_pop(), Some(9));
        q.close();
        assert_eq!(q.try_pop(), None, "closed+drained: miss");
    }

    /// Regression: at capacity 1 a single-spaced stamp scheme aliases
    /// "published at pos" with "free at pos+1", letting a producer overwrite
    /// an unconsumed item and wedging the consumer. The double-spaced stamps
    /// must keep a depth-1 queue shedding and round-tripping correctly.
    #[test]
    fn capacity_one_sheds_and_round_trips() {
        let q = BoundedQueue::new(1);
        for i in 0..100 {
            q.try_push(i).unwrap();
            assert_eq!(
                q.try_push(999),
                Err(PushError::Overloaded(999)),
                "a depth-1 queue holding an item must shed"
            );
            assert_eq!(q.pop(), Some(i));
        }
        q.close();
        assert_eq!(q.pop(), None);
    }

    /// Capacity-1 under racing producers: the tightest ring still loses and
    /// duplicates nothing.
    #[test]
    fn capacity_one_survives_producer_races() {
        const PRODUCERS: u64 = 2;
        const PER: u64 = 1_000;
        let q = BoundedQueue::<u64>::new(1);
        let drained = std::thread::scope(|s| {
            for t in 0..PRODUCERS {
                let q = q.clone();
                s.spawn(move || {
                    for seq in 0..PER {
                        while q.try_push(t * 1_000_000 + seq).is_err() {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let q = q.clone();
            s.spawn(move || {
                let mut all = Vec::new();
                while (all.len() as u64) < PRODUCERS * PER {
                    if let Some(v) = q.pop() {
                        all.push(v);
                    }
                }
                all
            })
            .join()
            .unwrap()
        });
        let set: std::collections::HashSet<u64> = drained.iter().copied().collect();
        assert_eq!(set.len() as u64, PRODUCERS * PER, "no loss, no duplicates");
    }

    // -- stress witnesses for the lock-free ring ---------------------------

    /// Multi-producer FIFO-per-producer: with interleaved producers the
    /// global order is arbitrary, but each producer's own items must come
    /// out in the order it pushed them.
    #[test]
    fn stress_fifo_per_producer() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 2_000;
        let q = BoundedQueue::<(u64, u64)>::new(32);
        let got = std::thread::scope(|s| {
            for t in 0..PRODUCERS {
                let q = q.clone();
                s.spawn(move || {
                    for seq in 0..PER {
                        loop {
                            match q.try_push((t, seq)) {
                                Ok(()) => break,
                                Err(PushError::Overloaded(_)) => std::thread::yield_now(),
                                Err(PushError::Closed(_)) => panic!("queue closed mid-test"),
                            }
                        }
                    }
                });
            }
            let q = q.clone();
            s.spawn(move || {
                let mut got: Vec<Vec<u64>> = vec![Vec::new(); PRODUCERS as usize];
                for _ in 0..PRODUCERS * PER {
                    let (t, seq) = q.pop().expect("open queue with pending producers");
                    got[t as usize].push(seq);
                }
                got
            })
            .join()
            .unwrap()
        });
        for (t, seqs) in got.iter().enumerate() {
            assert_eq!(seqs.len() as u64, PER, "producer {t} count");
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "producer {t} order violated"
            );
        }
    }

    /// Shed-at-capacity exactness: a full ring sheds every push until a
    /// take frees a slot, and never admits past the configured depth.
    #[test]
    fn stress_shed_at_capacity_is_exact() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        for _ in 0..100 {
            assert!(matches!(q.try_push(99), Err(PushError::Overloaded(99))));
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some(0));
        q.try_push(4).unwrap();
        assert!(matches!(q.try_push(99), Err(PushError::Overloaded(99))));
        for i in 1..5 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    /// Close-then-drain completeness under concurrent pushers: every push
    /// that returned `Ok` before the close lands at the consumer — no
    /// accepted item is ever lost, no shed item ever appears.
    #[test]
    fn stress_close_then_drain_loses_nothing() {
        for _round in 0..20 {
            let q = BoundedQueue::<u64>::new(16);
            let (accepted, drained) = std::thread::scope(|s| {
                let producers: Vec<_> = (0..4)
                    .map(|t| {
                        let q = q.clone();
                        s.spawn(move || {
                            let mut oks = 0u64;
                            let mut seq = 0u64;
                            loop {
                                match q.try_push(t * 1_000_000 + seq) {
                                    Ok(()) => {
                                        oks += 1;
                                        seq += 1;
                                    }
                                    Err(PushError::Overloaded(_)) => std::thread::yield_now(),
                                    Err(PushError::Closed(_)) => return oks,
                                }
                            }
                        })
                    })
                    .collect();
                let consumer = {
                    let q = q.clone();
                    s.spawn(move || {
                        let mut n = 0u64;
                        while q.pop().is_some() {
                            n += 1;
                        }
                        n
                    })
                };
                std::thread::sleep(std::time::Duration::from_millis(2));
                q.close();
                let accepted: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
                (accepted, consumer.join().unwrap())
            });
            assert_eq!(
                drained, accepted,
                "push-Ok must imply drained, even racing close"
            );
        }
    }

    /// `pop_batch` under concurrent producers never loses or duplicates an
    /// item: the union of all drained batches is exactly the pushed set.
    #[test]
    fn stress_pop_batch_no_loss_no_dup() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 2_000;
        let q = BoundedQueue::<u64>::new(32);
        let drained = std::thread::scope(|s| {
            for t in 0..PRODUCERS {
                let q = q.clone();
                s.spawn(move || {
                    for seq in 0..PER {
                        let id = t * 1_000_000 + seq;
                        while q.try_push(id).is_err() {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let q = q.clone();
            s.spawn(move || {
                let mut all = Vec::new();
                let mut batch = Vec::new();
                while (all.len() as u64) < PRODUCERS * PER {
                    batch.clear();
                    let n = q.pop_batch(&mut batch, 7);
                    assert!(n > 0, "open queue: pop_batch must return work");
                    all.extend_from_slice(&batch);
                }
                all
            })
            .join()
            .unwrap()
        });
        assert_eq!(drained.len() as u64, PRODUCERS * PER, "no loss");
        let set: std::collections::HashSet<u64> = drained.iter().copied().collect();
        assert_eq!(set.len(), drained.len(), "no duplicates");
    }

    // -- the retained mutex baseline honors the same contract --------------

    #[test]
    fn mutex_queue_matches_the_contract() {
        let q = MutexQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Overloaded(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 8), 1);
        assert_eq!(out, vec![2]);
        q.close();
        assert_eq!(q.try_push(4), Err(PushError::Closed(4)));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
