//! The transaction service: a worker pool over any [`TxnEngine`].
//!
//! Clients on any thread [`submit`](TxnService::submit) transactional work;
//! the service routes it through bounded per-worker submission queues to a
//! pool of threads, each holding one long-lived registered
//! [`EngineHandle`] — the paper's "many concurrent clients, few STM
//! threads" serving shape. Completions come back through oneshot futures
//! ([`Completion`]), so clients can block ([`Completion::wait`]), poll, or
//! `await` on the [`crate::executor`].
//!
//! Admission control is explicit: a full queue sheds the request with a
//! typed [`SubmitError::Overloaded`] instead of queueing unboundedly —
//! under open-loop load you want a shed rate and bounded queueing delay,
//! not a latency curve that grows with the backlog. Sheds are accounted as
//! [`lsa_engine::AbortClass::Overload`] in the service's merged statistics.
//!
//! Requests are routed round-robin, or *shard-affinely* when the engine is
//! sharded ([`TxnEngine::shards`] > 1) and the client passes a shard hint:
//! all requests for one shard land on one worker, so single-shard
//! transactions from different clients stop colliding across the pool.

use crate::histogram::LatencyHistogram;
use crate::oneshot;
use crate::queue::{BoundedQueue, PushError};
use crossbeam_utils::CachePadded;
use lsa_engine::{EngineHandle, EngineRequest, EngineStats, TxnEngine};
use lsa_obs::registry::{Counter, MetricsRegistry};
use lsa_obs::trace::{self, EventKind};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Jobs a worker claims from its queue per wakeup (see the batched run loop
/// in [`TxnService::start`]).
const WORKER_BATCH: usize = 32;

/// Service construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads (each registers one engine handle).
    pub workers: usize,
    /// Bounded depth of each worker's submission queue; pushes past it shed
    /// with [`SubmitError::Overloaded`].
    pub queue_depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(2),
            queue_depth: 1024,
        }
    }
}

/// Why a submission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control shed the request: the target worker's queue is at
    /// capacity. Counted in [`ServiceReport::shed`] and as
    /// [`lsa_engine::AbortClass::Overload`].
    Overloaded,
    /// The service is shutting down; no new work is accepted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => f.write_str("request shed: submission queue full"),
            SubmitError::Closed => f.write_str("service closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A completed request: the body's return value plus the end-to-end
/// latency (submission to completion, queueing included).
#[derive(Clone, Copy, Debug)]
pub struct Response<R> {
    /// What the request body returned.
    pub value: R,
    /// Submission-to-completion latency as the worker measured it.
    pub latency: Duration,
}

/// The client's handle on an in-flight request: a future resolving to
/// `Result<Response<R>, Canceled>` (canceled only if the service shuts
/// down before running the request).
pub struct Completion<R> {
    rx: oneshot::Receiver<Response<R>>,
}

impl<R> Completion<R> {
    /// Block the calling thread until the response arrives.
    pub fn wait(self) -> Result<Response<R>, oneshot::Canceled> {
        self.rx.wait()
    }

    /// Non-blocking probe.
    pub fn try_take(&mut self) -> Option<Result<Response<R>, oneshot::Canceled>> {
        self.rx.try_recv()
    }
}

impl<R> std::future::Future for Completion<R> {
    type Output = Result<Response<R>, oneshot::Canceled>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        std::pin::Pin::new(&mut self.get_mut().rx).poll(cx)
    }
}

/// A poolable request record: the allocation-free alternative to the boxed
/// closure + oneshot submission path.
///
/// A record is submitted with [`TxnService::submit_record`], executed once
/// on a worker's engine handle, and then handed back to wherever it came
/// from via [`recycle`](RunRequest::recycle) — the concrete type typically
/// pushes itself into a [`Pool`](crate::Pool) it carries a handle to, so at
/// steady state the serving path performs no per-request heap allocation.
/// There is no completion future on this path: the record's `run` body is
/// responsible for delivering its own result (the wire server's records
/// encode the reply and push it onto the connection's out queue).
pub trait RunRequest<E: TxnEngine>: Send {
    /// Execute the request on a worker's registered engine handle. Called
    /// exactly once per submission.
    fn run(&mut self, handle: &mut E::Handle);

    /// Return the record to its home pool (or just drop it). Called after
    /// `run` returns normally. (Records caught in a panic teardown are
    /// dropped, not recycled — the pool refills from fresh allocations.)
    fn recycle(self: Box<Self>);
}

/// What a queued job executes: the legacy closure path (one allocation per
/// request, carries its own oneshot) or a pooled record (allocation-free at
/// steady state).
enum JobRun<E: TxnEngine> {
    /// Type-erased request closure + its captured completion sender.
    Closure(EngineRequest<E>),
    /// Pooled, recyclable request record.
    Record(Box<dyn RunRequest<E>>),
}

/// One queued unit of work: the submission timestamp (for the worker-side
/// latency capture) plus what to run.
struct Job<E: TxnEngine> {
    submitted: Instant,
    run: JobRun<E>,
}

impl<E: TxnEngine> Job<E> {
    /// Extract the record from a refused record submission so the caller
    /// can recycle it.
    fn into_record(self) -> Box<dyn RunRequest<E>> {
        match self.run {
            JobRun::Record(r) => r,
            JobRun::Closure(_) => unreachable!("refused record job holds a record"),
        }
    }
}

/// Registry handles for the per-batch engine-stat fold: workers diff their
/// handle's cheap local [`EngineStats`] once per drained batch and add the
/// deltas to these sharded counters, so a mid-run scrape sees live engine
/// and time-base numbers without any per-transaction shared write.
struct EngineCounters {
    commits: Counter,
    ro_commits: Counter,
    aborts_validation: Counter,
    aborts_no_version: Counter,
    aborts_contention: Counter,
    retries: Counter,
    reads: Counter,
    writes: Counter,
    validations: Counter,
    cts_shared: Counter,
    cts_exclusive: Counter,
    cross_shard_commits: Counter,
}

impl EngineCounters {
    fn new(metrics: &MetricsRegistry) -> Self {
        EngineCounters {
            commits: metrics.counter("engine.commits"),
            ro_commits: metrics.counter("engine.ro_commits"),
            aborts_validation: metrics.counter("engine.aborts.validation"),
            aborts_no_version: metrics.counter("engine.aborts.no_version"),
            aborts_contention: metrics.counter("engine.aborts.contention"),
            retries: metrics.counter("engine.retries"),
            reads: metrics.counter("engine.reads"),
            writes: metrics.counter("engine.writes"),
            validations: metrics.counter("engine.validations"),
            cts_shared: metrics.counter("time.commit_ts.shared"),
            cts_exclusive: metrics.counter("time.commit_ts.exclusive"),
            cross_shard_commits: metrics.counter("engine.cross_shard_commits"),
        }
    }

    /// Add `now - prev` to every counter. Exclusive commit timestamps are
    /// derived: every update commit acquired one commit timestamp from the
    /// time base, and the engine counts the shared-class arbitrations
    /// ([`EngineStats::shared_commit_ts`]), so exclusive = commits − shared.
    fn fold_delta(&self, prev: &EngineStats, now: &EngineStats) {
        let d = |n: u64, p: u64| n.saturating_sub(p);
        self.commits.add(d(now.commits, prev.commits));
        self.ro_commits.add(d(now.ro_commits, prev.ro_commits));
        self.aborts_validation.add(d(
            now.abort_reasons.validation,
            prev.abort_reasons.validation,
        ));
        self.aborts_no_version.add(d(
            now.abort_reasons.no_version,
            prev.abort_reasons.no_version,
        ));
        self.aborts_contention.add(d(
            now.abort_reasons.contention,
            prev.abort_reasons.contention,
        ));
        self.retries.add(d(now.retries, prev.retries));
        self.reads.add(d(now.reads, prev.reads));
        self.writes.add(d(now.writes, prev.writes));
        self.validations.add(d(now.validations, prev.validations));
        self.cts_shared
            .add(d(now.shared_commit_ts, prev.shared_commit_ts));
        self.cts_exclusive.add(
            d(now.commits, prev.commits)
                .saturating_sub(d(now.shared_commit_ts, prev.shared_commit_ts)),
        );
        self.cross_shard_commits
            .add(d(now.cross_shard_commits, prev.cross_shard_commits));
    }
}

struct Shared<E: TxnEngine> {
    queues: Vec<BoundedQueue<Job<E>>>,
    // The round-robin cursor on its own cache line: it is hammered by
    // every submitting thread, and without padding it false-shares with
    // the queue vector's metadata across sockets. The admission counters
    // that used to sit beside it are now registry counters — sharded
    // per-thread, so they never bounce a line at all.
    rr: CachePadded<AtomicUsize>,
    submitted: Counter,
    shed: Counter,
    metrics: MetricsRegistry,
    /// Shard-affine routing enabled (engine reports > 1 shard).
    shard_affine: bool,
}

impl<E: TxnEngine> Shared<E> {
    /// Worker a request is routed to: shard-affine when the engine is
    /// sharded and the client hinted a shard, round-robin otherwise.
    fn route(&self, shard: Option<usize>) -> usize {
        let n = self.queues.len();
        match shard {
            Some(s) if self.shard_affine => s % n,
            _ => self.rr.fetch_add(1, Ordering::Relaxed) % n,
        }
    }

    fn submit_to<R, F>(&self, shard: Option<usize>, body: F) -> Result<Completion<R>, SubmitError>
    where
        R: Send + 'static,
        F: FnOnce(&mut E::Handle) -> R + Send + 'static,
    {
        let (tx, rx) = oneshot::channel();
        let submitted = Instant::now();
        let job = Job {
            submitted,
            run: JobRun::Closure(Box::new(move |handle: &mut E::Handle| {
                let value = body(handle);
                tx.send(Response {
                    value,
                    latency: submitted.elapsed(),
                });
            })),
        };
        let qix = self.route(shard);
        match self.queues[qix].try_push(job) {
            Ok(()) => {
                self.submitted.inc();
                trace::event_sampled(EventKind::Enqueue, 0, qix as u64);
                Ok(Completion { rx })
            }
            Err(PushError::Overloaded(_)) => {
                self.shed.inc();
                trace::event(EventKind::Shed, 0, qix as u64);
                Err(SubmitError::Overloaded)
            }
            Err(PushError::Closed(_)) => Err(SubmitError::Closed),
        }
    }

    /// Submit a pooled record (see [`RunRequest`]). On refusal the record
    /// comes back with the typed error so the caller can recycle it — a
    /// shed must not cost the allocation the pool exists to avoid.
    fn submit_record(
        &self,
        shard: Option<usize>,
        record: Box<dyn RunRequest<E>>,
    ) -> Result<(), (SubmitError, Box<dyn RunRequest<E>>)> {
        let job = Job {
            submitted: Instant::now(),
            run: JobRun::Record(record),
        };
        let qix = self.route(shard);
        match self.queues[qix].try_push(job) {
            Ok(()) => {
                self.submitted.inc();
                trace::event_sampled(EventKind::Enqueue, 0, qix as u64);
                Ok(())
            }
            Err(PushError::Overloaded(job)) => {
                self.shed.inc();
                trace::event(EventKind::Shed, 0, qix as u64);
                Err((SubmitError::Overloaded, job.into_record()))
            }
            Err(PushError::Closed(job)) => Err((SubmitError::Closed, job.into_record())),
        }
    }
}

/// A cloneable submission surface onto a running [`TxnService`] — what
/// external front-ends (the `lsa-wire` TCP server's per-connection reader
/// threads) hold instead of the service itself. Handles share the service's
/// queues, routing and shed accounting; they do not keep the workers alive
/// and every submission fails with [`SubmitError::Closed`] once the owning
/// service shuts down.
pub struct ServiceHandle<E: TxnEngine> {
    shared: Arc<Shared<E>>,
}

impl<E: TxnEngine> Clone for ServiceHandle<E> {
    fn clone(&self) -> Self {
        ServiceHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<E: TxnEngine> ServiceHandle<E> {
    /// [`TxnService::submit`] through the handle.
    pub fn submit<R, F>(&self, body: F) -> Result<Completion<R>, SubmitError>
    where
        R: Send + 'static,
        F: FnOnce(&mut E::Handle) -> R + Send + 'static,
    {
        self.shared.submit_to(None, body)
    }

    /// [`TxnService::submit_to`] through the handle.
    pub fn submit_to<R, F>(
        &self,
        shard: Option<usize>,
        body: F,
    ) -> Result<Completion<R>, SubmitError>
    where
        R: Send + 'static,
        F: FnOnce(&mut E::Handle) -> R + Send + 'static,
    {
        self.shared.submit_to(shard, body)
    }

    /// [`TxnService::submit_record`] through the handle.
    pub fn submit_record(
        &self,
        shard: Option<usize>,
        record: Box<dyn RunRequest<E>>,
    ) -> Result<(), (SubmitError, Box<dyn RunRequest<E>>)> {
        self.shared.submit_record(shard, record)
    }

    /// [`TxnService::metrics`] through the handle — front-ends scrape (and
    /// extend) the same registry the service instruments into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }
}

/// What each worker thread hands back at shutdown. (Latency lives in the
/// metrics registry's sharded `service.latency_ns` histogram, recorded by
/// each worker into its own shard and merged only at scrape/shutdown.)
struct WorkerReport {
    completed: u64,
    stats: EngineStats,
}

/// Aggregated outcome of a service's lifetime, produced by
/// [`TxnService::shutdown`].
#[derive(Debug)]
pub struct ServiceReport {
    /// Requests admitted into a queue (every one of them was executed).
    pub submitted: u64,
    /// Requests executed to completion (equals `submitted`: accepted work
    /// is always drained, even during shutdown).
    pub completed: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Submission-to-completion latency over all completed requests.
    pub latency: LatencyHistogram,
    /// Merged engine statistics of all workers; sheds appear as
    /// `abort_reasons.overload` (they are rejected requests, not
    /// transaction attempts, so `aborts` does not include them).
    pub engine: EngineStats,
}

/// An async transaction-service front-end over any [`TxnEngine`].
pub struct TxnService<E: TxnEngine> {
    shared: Arc<Shared<E>>,
    workers: Vec<JoinHandle<WorkerReport>>,
}

impl<E: TxnEngine> TxnService<E> {
    /// Start the worker pool on `engine`, instrumenting into a fresh
    /// [`MetricsRegistry`] (see [`metrics`](TxnService::metrics)).
    pub fn start(engine: E, cfg: ServiceConfig) -> Self {
        Self::start_with_metrics(engine, cfg, MetricsRegistry::new())
    }

    /// [`start`](TxnService::start) instrumenting into a caller-supplied
    /// registry, so an embedding front-end (the wire server) can serve one
    /// namespace spanning its own metrics and the service's.
    pub fn start_with_metrics(engine: E, cfg: ServiceConfig, metrics: MetricsRegistry) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        let shard_affine = engine.shards() > 1;
        let queues: Vec<BoundedQueue<Job<E>>> = (0..cfg.workers)
            .map(|_| BoundedQueue::new(cfg.queue_depth))
            .collect();
        let shared = Arc::new(Shared {
            queues,
            rr: CachePadded::new(AtomicUsize::new(0)),
            submitted: metrics.counter("service.submitted"),
            shed: metrics.counter("service.shed"),
            metrics: metrics.clone(),
            shard_affine,
        });
        // Queue depth is a sampled gauge: nothing is maintained between
        // scrapes, and the Weak capture means a torn-down service costs
        // (and reports) nothing.
        let depth_src = Arc::downgrade(&shared);
        metrics.gauge_fn("service.queue_depth", move || {
            depth_src
                .upgrade()
                .map(|s| s.queues.iter().map(|q| q.len()).sum::<usize>() as i64)
                .unwrap_or(0)
        });
        let workers = (0..cfg.workers)
            .map(|w| {
                let queue = shared.queues[w].clone();
                let engine = engine.clone();
                let latency = metrics.histogram("service.latency_ns");
                let engine_counters = EngineCounters::new(&metrics);
                std::thread::spawn(move || {
                    // One long-lived registered handle per worker: requests
                    // from many clients multiplex onto few STM threads.
                    let mut handle = engine.register();
                    let mut completed = 0u64;
                    let mut folded = EngineStats::default();
                    // Batched run loop: drain a burst per wakeup instead of
                    // one job per park/unpark cycle — under backlog the
                    // queue lock and condvar are touched once per
                    // `WORKER_BATCH` jobs.
                    let mut batch = Vec::with_capacity(WORKER_BATCH);
                    loop {
                        let n = queue.pop_batch(&mut batch, WORKER_BATCH);
                        if n == 0 {
                            break;
                        }
                        trace::event_sampled(EventKind::Dequeue, 0, n as u64);
                        for job in batch.drain(..) {
                            let Job { submitted, run } = job;
                            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                || match run {
                                    JobRun::Closure(f) => f(&mut handle),
                                    JobRun::Record(mut r) => {
                                        r.run(&mut handle);
                                        r.recycle();
                                    }
                                },
                            ));
                            if let Err(payload) = outcome {
                                // A request body panicked (e.g. an invariant
                                // assert fired). Fail loudly, not silently:
                                // close and drain the queue so every pending
                                // completion cancels (dropped senders,
                                // including the rest of this batch when it
                                // unwinds) instead of leaving clients
                                // blocked forever, then surface the original
                                // panic through join().
                                queue.close();
                                while queue.pop().is_some() {}
                                std::panic::resume_unwind(payload);
                            }
                            latency.record(submitted.elapsed());
                            completed += 1;
                        }
                        // Per-batch fold of the handle's cheap local stats
                        // into the registry, so mid-run scrapes see live
                        // engine/time-base counters.
                        let now = handle.engine_stats();
                        engine_counters.fold_delta(&folded, &now);
                        folded = now;
                    }
                    let stats = handle.engine_stats();
                    engine_counters.fold_delta(&folded, &stats);
                    WorkerReport { completed, stats }
                })
            })
            .collect();
        TxnService { shared, workers }
    }

    /// Submit `body` for execution on some worker's engine handle.
    ///
    /// Returns immediately: `Ok` carries the [`Completion`] future, `Err`
    /// the typed admission decision. The body runs exactly once (its
    /// `atomically` loop retries internally as usual).
    pub fn submit<R, F>(&self, body: F) -> Result<Completion<R>, SubmitError>
    where
        R: Send + 'static,
        F: FnOnce(&mut E::Handle) -> R + Send + 'static,
    {
        self.shared.submit_to(None, body)
    }

    /// [`submit`](TxnService::submit) with a shard-affinity hint: on sharded
    /// engines all requests hinting the same shard execute on the same
    /// worker. Unsharded engines ignore the hint.
    pub fn submit_to<R, F>(
        &self,
        shard: Option<usize>,
        body: F,
    ) -> Result<Completion<R>, SubmitError>
    where
        R: Send + 'static,
        F: FnOnce(&mut E::Handle) -> R + Send + 'static,
    {
        self.shared.submit_to(shard, body)
    }

    /// Submit a pooled, recyclable request record — the allocation-free
    /// fast path (see [`RunRequest`]). No completion future: the record
    /// delivers its own result from `run`, and the worker still captures
    /// submission-to-completion latency in the service report. On refusal
    /// the record is handed back with the typed error for recycling.
    pub fn submit_record(
        &self,
        shard: Option<usize>,
        record: Box<dyn RunRequest<E>>,
    ) -> Result<(), (SubmitError, Box<dyn RunRequest<E>>)> {
        self.shared.submit_record(shard, record)
    }

    /// A cloneable [`ServiceHandle`] sharing this service's queues — the
    /// submission surface handed to external front-ends (one per wire-server
    /// connection thread) so the service itself can stay solely owned for
    /// [`shutdown`](TxnService::shutdown).
    pub fn handle(&self) -> ServiceHandle<E> {
        ServiceHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Requests shed so far by admission control.
    pub fn shed_count(&self) -> u64 {
        self.shared.shed.value()
    }

    /// Requests admitted so far.
    pub fn submitted_count(&self) -> u64 {
        self.shared.submitted.value()
    }

    /// The service's metrics registry: admission counters, live queue
    /// depth, the sharded latency histogram, and the engine/time-base
    /// counters the workers fold per batch. Scrape it any time with
    /// [`MetricsRegistry::snapshot`] — mid-run scrapes are the point.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Close admission, drain every queue, join the workers and return the
    /// aggregated [`ServiceReport`].
    pub fn shutdown(mut self) -> ServiceReport {
        for q in &self.shared.queues {
            q.close();
        }
        let mut report = ServiceReport {
            submitted: self.shared.submitted.value(),
            completed: 0,
            shed: self.shared.shed.value(),
            latency: LatencyHistogram::new(),
            engine: EngineStats::default(),
        };
        for w in self.workers.drain(..) {
            let wr = w.join().expect("service worker panicked");
            report.completed += wr.completed;
            report.engine.merge(&wr.stats);
        }
        // The workers have quiesced: the registry histogram now holds
        // exactly the completed requests' latencies.
        report.latency = self.shared.metrics.histogram("service.latency_ns").merged();
        // Shed accounting on the shared taxonomy: admission-control drops
        // are overload "aborts" of the serving layer.
        report.engine.abort_reasons.overload += report.shed;
        if report.shed > 0 {
            // A run that shed is exactly what the flight recorder is for.
            trace::anomaly("service shutdown with sheds", 256);
        }
        report
    }
}

impl<E: TxnEngine> Drop for TxnService<E> {
    fn drop(&mut self) {
        for q in &self.shared.queues {
            q.close();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_stm::{ShardedStm, Stm};
    use lsa_time::counter::SharedCounter;
    use std::sync::atomic::AtomicU64;
    use std::sync::{Condvar, Mutex};

    fn small_cfg(workers: usize, depth: usize) -> ServiceConfig {
        ServiceConfig {
            workers,
            queue_depth: depth,
        }
    }

    #[test]
    fn submits_complete_with_latency() {
        let engine = Stm::new(SharedCounter::new());
        let var = engine.new_var(0u64);
        let svc = TxnService::start(engine, small_cfg(2, 64));
        let mut completions = Vec::new();
        for _ in 0..32 {
            let var = var.clone();
            completions.push(
                svc.submit(move |h| h.atomically(|tx| tx.modify(&var, |v| v + 1)))
                    .unwrap(),
            );
        }
        for c in completions {
            let resp = c.wait().unwrap();
            assert!(resp.latency > Duration::ZERO);
        }
        let report = svc.shutdown();
        assert_eq!(report.submitted, 32);
        assert_eq!(report.completed, 32);
        assert_eq!(report.shed, 0);
        assert_eq!(report.engine.commits, 32);
        assert_eq!(report.latency.count(), 32);
        assert_eq!(*<Stm<SharedCounter> as TxnEngine>::peek(&var), 32);
    }

    #[test]
    fn completions_carry_typed_values() {
        let engine = Stm::new(SharedCounter::new());
        let var = engine.new_var(5i64);
        let svc = TxnService::start(engine, small_cfg(1, 8));
        let v2 = var.clone();
        let c = svc
            .submit(move |h| h.atomically(|tx| tx.read(&v2).map(|v| *v * 2)))
            .unwrap();
        assert_eq!(c.wait().unwrap().value, 10);
        drop(svc);
    }

    /// Admission control: with one worker wedged on a gate, a depth-2 queue
    /// admits exactly two more requests and sheds the rest with the typed
    /// error; accepted work still completes after the gate opens, and the
    /// report counts the sheds as overload.
    #[test]
    fn bounded_queue_sheds_with_typed_error() {
        let engine = Stm::new(SharedCounter::new());
        let svc = TxnService::start(engine, small_cfg(1, 2));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));

        let g = Arc::clone(&gate);
        let blocker = svc
            .submit(move |_h| {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
            .unwrap();
        // Wait until the worker has dequeued the blocker (queue empty).
        while !svc.shared.queues[0].is_empty() {
            std::thread::yield_now();
        }
        let a = svc.submit(|_h| 1).unwrap();
        let b = svc.submit(|_h| 2).unwrap();
        // Queue full (depth 2): admission control must shed.
        match svc.submit(|_h| 3) {
            Err(SubmitError::Overloaded) => {}
            Err(e) => panic!("expected Overloaded, got {e:?}"),
            Ok(_) => panic!("expected the submission to be shed"),
        }
        assert_eq!(svc.shed_count(), 1);
        // Open the gate; everything accepted completes.
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        blocker.wait().unwrap();
        assert_eq!(a.wait().unwrap().value, 1);
        assert_eq!(b.wait().unwrap().value, 2);
        let report = svc.shutdown();
        assert_eq!(report.submitted, 3);
        assert_eq!(report.completed, 3);
        assert_eq!(report.shed, 1);
        assert_eq!(report.engine.abort_reasons.overload, 1);
    }

    #[test]
    fn shutdown_drains_accepted_work() {
        let engine = Stm::new(SharedCounter::new());
        let var = engine.new_var(0u64);
        let svc = TxnService::start(engine, small_cfg(2, 256));
        for _ in 0..100 {
            let var = var.clone();
            svc.submit(move |h| h.atomically(|tx| tx.modify(&var, |v| v + 1)))
                .unwrap();
        }
        // Shut down immediately: accepted requests must still run.
        let report = svc.shutdown();
        assert_eq!(report.completed, 100);
        assert_eq!(*<Stm<SharedCounter> as TxnEngine>::peek(&var), 100);
    }

    #[test]
    fn dropped_completion_does_not_wedge_the_worker() {
        let engine = Stm::new(SharedCounter::new());
        let var = engine.new_var(0u64);
        let svc = TxnService::start(engine, small_cfg(1, 16));
        let v = var.clone();
        let c = svc
            .submit(move |h| h.atomically(|tx| tx.modify(&v, |x| x + 1)))
            .unwrap();
        drop(c); // client gave up; worker must still run and move on
        let v = var.clone();
        let c2 = svc
            .submit(move |h| h.atomically(|tx| tx.modify(&v, |x| x + 1)))
            .unwrap();
        c2.wait().unwrap();
        assert_eq!(*<Stm<SharedCounter> as TxnEngine>::peek(&var), 2);
        drop(svc);
    }

    /// A panicking request body must not leave clients hanging: the worker
    /// cancels everything still queued (senders drop → `Canceled`) and the
    /// panic resurfaces when the service is joined.
    #[test]
    fn worker_panic_cancels_pending_completions() {
        let engine = Stm::new(SharedCounter::new());
        let svc = TxnService::start(engine, small_cfg(1, 16));
        let bomb = svc
            .submit(|_h: &mut _| panic!("request body invariant fired"))
            .unwrap();
        let pending = svc.submit(|_h| 42u8).unwrap();
        assert!(matches!(bomb.wait(), Err(oneshot::Canceled)));
        assert!(
            matches!(pending.wait(), Err(oneshot::Canceled)),
            "queued work behind a panicking request must cancel, not hang"
        );
        // Joining the worker resurfaces the original panic.
        let joined = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| svc.shutdown()));
        assert!(joined.is_err(), "shutdown must propagate the worker panic");
    }

    #[test]
    fn shard_hints_pin_to_workers_on_sharded_engines() {
        let engine = ShardedStm::new(SharedCounter::new(), 4);
        let svc = TxnService::start(engine, small_cfg(3, 64));
        // Same hint → same worker, always.
        for shard in 0..4usize {
            let first = svc.shared.route(Some(shard));
            for _ in 0..10 {
                assert_eq!(svc.shared.route(Some(shard)), first);
            }
        }
        // Distinct hints spread over workers modulo the pool size.
        assert_ne!(svc.shared.route(Some(0)), svc.shared.route(Some(1)));
        drop(svc);

        // Unsharded engines round-robin even with hints.
        let engine = Stm::new(SharedCounter::new());
        let svc = TxnService::start(engine, small_cfg(2, 8));
        let a = svc.shared.route(Some(3));
        let b = svc.shared.route(Some(3));
        assert_ne!(a, b, "round-robin must rotate");
        drop(svc);
    }

    /// The cloneable handle is a full submission surface: it routes through
    /// the same queues and accounting, and turns into typed `Closed` errors
    /// once the owning service has shut down.
    #[test]
    fn service_handle_submits_and_closes_with_the_service() {
        let engine = Stm::new(SharedCounter::new());
        let var = engine.new_var(0u64);
        let svc = TxnService::start(engine, small_cfg(2, 64));
        let h1 = svc.handle();
        let h2 = h1.clone();
        let v = var.clone();
        let a = h1
            .submit(move |h| h.atomically(|tx| tx.modify(&v, |x| x + 1)))
            .unwrap();
        let v = var.clone();
        let b = h2
            .submit_to(Some(0), move |h| {
                h.atomically(|tx| tx.modify(&v, |x| x + 1))
            })
            .unwrap();
        a.wait().unwrap();
        b.wait().unwrap();
        let report = svc.shutdown();
        assert_eq!(report.submitted, 2);
        assert_eq!(report.completed, 2);
        assert_eq!(*<Stm<SharedCounter> as TxnEngine>::peek(&var), 2);
        // The service is gone; handles must refuse with the typed error.
        match h1.submit(|_h| ()) {
            Err(SubmitError::Closed) => {}
            Err(e) => panic!("expected Closed after shutdown, got {e:?}"),
            Ok(_) => panic!("expected Closed after shutdown, got an admission"),
        }
    }

    #[test]
    fn completion_awaits_on_the_executor() {
        let engine = Stm::new(SharedCounter::new());
        let var = engine.new_var(0u64);
        let svc = Arc::new(TxnService::start(engine, small_cfg(2, 64)));
        let ex = crate::executor::Executor::new(2);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..20 {
            let var = var.clone();
            let c = svc
                .submit(move |h| h.atomically(|tx| tx.modify(&var, |v| v + 1)))
                .unwrap();
            let done = Arc::clone(&done);
            ex.spawn(async move {
                let resp = c.await.unwrap();
                assert!(resp.latency > Duration::ZERO);
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        ex.wait_idle();
        assert_eq!(done.load(Ordering::SeqCst), 20);
        ex.shutdown();
        assert_eq!(*<Stm<SharedCounter> as TxnEngine>::peek(&var), 20);
    }
}
