//! Workspace-local shim with the `core_affinity` crate's API surface.
//!
//! The harness pins measurement threads for the registry's `numa-altix`
//! cells so the modeled per-node time-base state lines up with stable OS
//! scheduling (a thread migrating mid-run would smear the modeled NUMA
//! cache-line ownership across cores and add scheduler noise to the latency
//! tails). The real `core_affinity` crate is not vendored; this shim talks
//! to `sched_getaffinity`/`sched_setaffinity` directly on Linux and degrades
//! to an honest no-op everywhere else — [`set_for_current`] then returns
//! `false` and callers keep running unpinned.
//!
//! Only the subset this repo uses is provided: [`get_core_ids`] and
//! [`set_for_current`].

/// Identifier of one logical CPU, as reported by [`get_core_ids`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId {
    /// The OS CPU index.
    pub id: usize,
}

/// CPU-set words for `sched_{get,set}affinity`: 1024 bits, the kernel's
/// default `cpu_set_t` size.
const MASK_WORDS: usize = 16;

#[cfg(target_os = "linux")]
mod imp {
    use super::{CoreId, MASK_WORDS};

    extern "C" {
        fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut u64) -> i32;
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    pub fn get_core_ids() -> Option<Vec<CoreId>> {
        let mut mask = [0u64; MASK_WORDS];
        // pid 0 = the calling thread.
        let rc = unsafe { sched_getaffinity(0, std::mem::size_of_val(&mask), mask.as_mut_ptr()) };
        if rc != 0 {
            return None;
        }
        let ids: Vec<CoreId> = (0..MASK_WORDS * 64)
            .filter(|i| mask[i / 64] & (1u64 << (i % 64)) != 0)
            .map(|id| CoreId { id })
            .collect();
        if ids.is_empty() {
            None
        } else {
            Some(ids)
        }
    }

    pub fn set_for_current(core: CoreId) -> bool {
        if core.id >= MASK_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[core.id / 64] = 1u64 << (core.id % 64);
        let rc = unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
        rc == 0
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::CoreId;

    pub fn get_core_ids() -> Option<Vec<CoreId>> {
        None
    }

    pub fn set_for_current(_core: CoreId) -> bool {
        false
    }
}

/// The logical CPUs the calling thread may run on, or `None` when the
/// platform gives no answer.
pub fn get_core_ids() -> Option<Vec<CoreId>> {
    imp::get_core_ids()
}

/// Pin the calling thread to `core`. Returns whether the kernel accepted
/// the affinity mask; `false` (invalid core, unsupported platform) leaves
/// the thread unpinned — callers treat pinning as best-effort.
pub fn set_for_current(core: CoreId) -> bool {
    imp::set_for_current(core)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_at_least_one_core_on_linux() {
        if cfg!(target_os = "linux") {
            let ids = get_core_ids().expect("linux must report an affinity mask");
            assert!(!ids.is_empty());
            // Monotonic, unique OS indices.
            for w in ids.windows(2) {
                assert!(w[0].id < w[1].id);
            }
        }
    }

    #[test]
    fn pins_to_each_allowed_core() {
        // Each #[test] runs on its own thread, so narrowing this thread's
        // mask cannot leak into other tests.
        let Some(ids) = get_core_ids() else { return };
        for &core in ids.iter().take(4) {
            assert!(set_for_current(core), "pinning to an allowed core");
            let now = get_core_ids().expect("mask readable after pin");
            assert_eq!(now, vec![core], "mask must be exactly the pinned core");
        }
    }

    #[test]
    fn rejects_out_of_range_core() {
        assert!(!set_for_current(CoreId {
            id: MASK_WORDS * 64 + 1
        }));
    }
}
