//! Workspace-local stand-in for the `criterion` crate.
//!
//! This build environment is offline, so the real `criterion` cannot be
//! fetched. This shim keeps the workspace's `benches/` targets compiling and
//! producing useful numbers: it implements [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros, measuring median
//! ns/iteration over timed batches. No statistical analysis, HTML reports or
//! baselines — swap in the real crate when the environment has network
//! access.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver: holds the measurement configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(900),
            samples: 20,
        }
    }
}

impl Criterion {
    /// Set the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(2);
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, &id.into().label, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(self.c, &label, &mut f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(self.c, &label, &mut |b| f(b, input));
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {}
}

/// Identifies one benchmark (a function name plus an optional parameter).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Compose `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { label: s.clone() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to benchmark closures; its [`iter`](Bencher::iter) runs the
/// measured routine.
pub struct Bencher {
    batch: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine`, preventing its result from being optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(c: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate the batch size so one sample lasts roughly
    // measurement / samples.
    let mut b = Bencher {
        batch: 1,
        elapsed: Duration::ZERO,
    };
    let warm_deadline = Instant::now() + c.warm_up;
    loop {
        f(&mut b);
        if Instant::now() >= warm_deadline {
            break;
        }
        if b.elapsed * 50 < c.warm_up {
            b.batch = b.batch.saturating_mul(2);
        }
    }
    let per_iter = b.elapsed.as_nanos().max(1) as u64 / b.batch;
    let target_sample = (c.measurement / c.samples as u32).as_nanos().max(1) as u64;
    b.batch = (target_sample / per_iter.max(1)).clamp(1, u64::MAX / 2);

    let mut samples_ns: Vec<f64> = Vec::with_capacity(c.samples);
    for _ in 0..c.samples {
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / b.batch as f64);
    }
    samples_ns.sort_by(|a, x| a.partial_cmp(x).expect("ns are finite"));
    let median = samples_ns[samples_ns.len() / 2];
    let (lo, hi) = (samples_ns[0], samples_ns[samples_ns.len() - 1]);
    println!("{label:<56} {median:>12.1} ns/iter  [{lo:.1} .. {hi:.1}]");
}

/// Define a benchmark group function (both the plain and the
/// `name/config/targets` form of the real macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c: $crate::Criterion = $cfg;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(3);
        let mut count = 0u64;
        c.bench_function("shim/self-test", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(6))
            .sample_size(2);
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
