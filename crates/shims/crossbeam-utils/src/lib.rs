//! Workspace-local stand-in for the `crossbeam-utils` crate.
//!
//! This build environment is offline; the workspace only uses
//! [`CachePadded`], so that is all this shim provides. The alignment (128
//! bytes) matches crossbeam's choice for x86_64 (two 64-byte lines, covering
//! adjacent-line prefetchers) and is a correct, if occasionally conservative,
//! choice elsewhere.

#![deny(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so that it occupies its own cache
/// line(s), preventing false sharing between adjacent atomics.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value` to its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consume the padding wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn is_aligned_and_derefs() {
        let p = CachePadded::new(AtomicU64::new(7));
        assert_eq!(std::mem::align_of_val(&p), 128);
        assert_eq!(p.load(Ordering::Relaxed), 7);
        p.store(9, Ordering::Relaxed);
        assert_eq!(p.into_inner().into_inner(), 9);
    }
}
