//! Workspace-local stand-in for the `parking_lot` crate.
//!
//! This build environment is offline, so the real `parking_lot` cannot be
//! fetched. This shim wraps `std::sync` primitives behind the (subset of the)
//! `parking_lot` API the workspace uses: infallible `lock`/`read`/`write`
//! that recover from poisoning instead of returning `Result`s. Semantics are
//! the same except for fairness/perf details no test relies on.

#![deny(missing_docs)]

use std::sync::{self, PoisonError};

/// Re-exported guard type of [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Re-exported guard type of [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Re-exported guard type of [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with an infallible `lock` (parking_lot style).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Poisoning (a panic while
    /// the lock was held) is ignored, matching parking_lot semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with infallible `read`/`write` (parking_lot style).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Poisoning is ignored.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard. Poisoning is ignored.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
