//! The `any::<T>()` entry point: whole-domain strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// Build the whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy over the full domain of `T` (see [`Arbitrary`] impls).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = Any<$t>;

            fn arbitrary() -> Any<$t> {
                Any(PhantomData)
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;

    fn arbitrary() -> Any<bool> {
        Any(PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::for_test("any");
        let s = any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b, "astronomically unlikely collision");
        let sb = any::<bool>();
        let mut seen = (false, false);
        for _ in 0..64 {
            if sb.generate(&mut rng) {
                seen.0 = true;
            } else {
                seen.1 = true;
            }
        }
        assert!(seen.0 && seen.1);
    }
}
