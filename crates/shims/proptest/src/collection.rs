//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A length range for generated collections.
#[derive(Clone, Debug)]
pub struct SizeRange(Range<usize>);

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty collection size range");
        SizeRange(r)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

/// Strategy producing `Vec`s of values from `element` with a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.0.end - self.size.0.start) as u64;
        let len = self.size.0.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_and_element_ranges() {
        let mut rng = TestRng::for_test("vec");
        let s = vec(2u64..5, 1..4);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&e| (2..5).contains(&e)));
        }
    }

    #[test]
    fn nested_vecs_work() {
        let mut rng = TestRng::for_test("nested");
        let s = vec(vec(0u32..2, 1..3), 2..4);
        let v = s.generate(&mut rng);
        assert!((2..4).contains(&v.len()));
    }

    #[test]
    fn fixed_size_from_usize() {
        let mut rng = TestRng::for_test("fixed");
        let s = vec(0u8..10, 3usize);
        assert_eq!(s.generate(&mut rng).len(), 3);
    }
}
