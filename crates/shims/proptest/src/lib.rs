//! Workspace-local stand-in for the `proptest` crate.
//!
//! This build environment is offline, so the real `proptest` cannot be
//! fetched. This shim implements the subset the workspace's property tests
//! use: the [`proptest!`] macro (both `arg: Type` and `arg in strategy`
//! parameter forms, with an optional `#![proptest_config(..)]` header),
//! [`Strategy`](strategy::Strategy) with `prop_map`, range / tuple /
//! [`Just`](strategy::Just) / [`prop_oneof!`] / `prop::collection::vec`
//! strategies, `any::<T>()`, and the `prop_assert!` / `prop_assert_eq!`
//! macros.
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test seed (override with `PROPTEST_SEED`), and failing cases are
//! reported but **not shrunk**.

#![deny(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The crate re-exported under the name `prop`, so `prop::collection::…`
    /// paths work exactly like with the real crate.
    pub mod prop {
        pub use crate::collection;
    }
}

/// The test-defining macro. Wraps each contained `fn` into a `#[test]` that
/// runs the body over `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: munches one `fn` at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    // `arg in strategy` form.
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..cfg.cases {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { { $body } ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, cfg.cases, e
                    );
                }
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    // `arg: Type` form (sugar for `arg in any::<Type>()`).
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident : $ty:ty),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = ($cfg);
            $(#[$meta])*
            fn $name($($arg in $crate::arbitrary::any::<$ty>()),+) $body
            $($rest)*
        }
    };
}

/// Non-fatal-to-the-process assertion: returns a
/// [`TestCaseError`](test_runner::TestCaseError) from the test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Picks uniformly between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::boxed_option($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn typed_args(a: u64, b: bool) {
            if b {
                prop_assert!(a == a, "reflexivity");
            }
            prop_assert_eq!(a.wrapping_add(1).wrapping_sub(1), a);
        }

        #[test]
        fn strategy_args(x in 10u64..20, v in prop::collection::vec(0u32..3, 2..5)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 3));
        }

        #[test]
        fn mapped_and_oneof(
            y in (0u64..5, 0u64..5).prop_map(|(a, b)| a * 10 + b),
            z in prop_oneof![Just(99u32), 0u32..4],
        ) {
            prop_assert!(y <= 44);
            prop_assert!(z == 99 || z < 4);
        }

        #[test]
        fn open_range(t in 1u64..) {
            prop_assert!(t >= 1);
        }
    }
}
