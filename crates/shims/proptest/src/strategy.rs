//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of a given type. Object-safe so strategies
/// can be boxed (see [`OneOf`]); combinators require `Self: Sized`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Build from the (non-empty) list of options.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

/// Box one `prop_oneof!` option (free function so the option's value type is
/// inferred from the strategy alone, not from `OneOf`'s type parameter).
pub fn boxed_option<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Implements `Strategy` for `Range`/`RangeFrom` over the primitive integer
/// types, sampling uniformly via 128-bit arithmetic (so full-domain ranges
/// like `1u64..` cannot overflow).
macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(hi > lo, "cannot sample from empty range");
                let span = (hi - lo) as u128;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (lo + off as i128) as $t
            }
        }

        impl Strategy for ::std::ops::RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = <$t>::MAX as i128 + 1;
                let span = (hi - lo) as u128;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (lo + off as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let v = (5u64..9).generate(&mut rng);
            assert!((5..9).contains(&v));
            let w = (-3i64..4).generate(&mut rng);
            assert!((-3..4).contains(&w));
            let f = (1u64..).generate(&mut rng);
            assert!(f >= 1);
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::for_test("map");
        let s = (0u64..3, 0u64..3).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) <= 4);
        }
    }

    #[test]
    fn oneof_picks_every_option_eventually() {
        let mut rng = TestRng::for_test("oneof");
        let s = OneOf::new(vec![boxed_option(Just(1u32)), boxed_option(Just(2u32))]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
