//! Test-runner plumbing: configuration, RNG and the error type that
//! `prop_assert!` returns.

use std::fmt;

/// How many cases each property test runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than real proptest's 256: these tests run in CI on every
        // push and the generators here do no shrinking.
        ProptestConfig { cases: 128 }
    }
}

/// A failed property-test case (carries the formatted assertion message).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wrap an assertion failure message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 generator seeding each test reproducibly from its
/// name (override the base seed with the `PROPTEST_SEED` env var).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for the named test: base seed mixed with the test-name hash.
    pub fn for_test(name: &str) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        let mut h = base;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        TestRng(h)
    }

    /// Next pseudorandom 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = c.next_u64(); // different stream, must not panic
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::for_test("bounds");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
