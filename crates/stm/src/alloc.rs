//! Thread-cached block allocation for the runtime's id sequences.
//!
//! The runtime used to draw object ids, handle ids and contention-manager
//! birth numbers from plain `fetch_add(1)` counters — three shared
//! read-modify-write lines that every allocation bounced between cores,
//! exactly the access pattern the time-base work removes from the commit
//! path. [`BlockAlloc`] amortizes them the same way the
//! `lsa_time::counter::BlockCounter` amortizes timestamp reservation: each
//! thread reserves a whole block of ids with one RMW and then hands values
//! out from thread-local cache, so the shared line is touched once per
//! `block` allocations instead of once per allocation.
//!
//! Values stay globally unique (blocks are disjoint `fetch_add` ranges) and
//! strictly increasing *per thread*, but are **not** allocation-order
//! comparable across threads — a thread's cached block may be older than
//! another thread's freshly reserved one. Object and handle ids only need
//! uniqueness, so nothing changes for them; contention-manager *birth*
//! numbers use block allocation too, which coarsens the "older transaction
//! wins" order to block granularity (bounded unfairness of at most one
//! block per thread — the priority signal the timestamp/karma managers
//! consume is heuristic to begin with).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide source of allocator identities, so each [`BlockAlloc`] finds
/// its own cache slot in the thread-local map.
static ALLOC_KEYS: AtomicU64 = AtomicU64::new(1);

/// Reserve a fresh process-wide allocator identity. Shared with the version
/// arena (`crate::reclaim`), whose thread-local node pools live in their own
/// map but use the same identity space.
pub(crate) fn next_alloc_key() -> u64 {
    ALLOC_KEYS.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// Per-thread block caches: allocator key → (next unissued, block end).
    /// Entries of dropped allocators linger (a thread cannot clear its
    /// siblings' caches), but each entry is two words and allocator churn
    /// is bounded by runtime instances created, so the map stays tiny.
    static CACHES: RefCell<HashMap<u64, (u64, u64)>> = RefCell::new(HashMap::new());
}

/// A globally unique id sequence handed out in thread-cached blocks.
#[derive(Debug)]
pub(crate) struct BlockAlloc {
    next: AtomicU64,
    block: u64,
    key: u64,
}

impl BlockAlloc {
    /// Sequence starting at `start`, reserving `block` ids per thread refill.
    pub(crate) fn new(start: u64, block: u64) -> Self {
        assert!(block >= 1, "block size must be positive");
        BlockAlloc {
            next: AtomicU64::new(start),
            block,
            key: next_alloc_key(),
        }
    }

    /// Allocate the next id: from the calling thread's cached block when one
    /// is live, reserving a fresh block (one shared RMW) otherwise.
    pub(crate) fn alloc(&self) -> u64 {
        CACHES.with(|caches| {
            let mut caches = caches.borrow_mut();
            let slot = caches.entry(self.key).or_insert((0, 0));
            if slot.0 >= slot.1 {
                let base = self.next.fetch_add(self.block, Ordering::Relaxed);
                *slot = (base, base + self.block);
            }
            let v = slot.0;
            slot.0 += 1;
            v
        })
    }

    /// Ids handed out so far is bounded by this reservation frontier
    /// (tests / diagnostics).
    #[cfg(test)]
    pub(crate) fn reserved(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_allocations_are_unique_and_increasing() {
        let a = BlockAlloc::new(1, 8);
        let mut last = 0;
        for _ in 0..100 {
            let v = a.alloc();
            assert!(v > last);
            last = v;
        }
    }

    #[test]
    fn one_rmw_per_block() {
        let a = BlockAlloc::new(1, 64);
        for _ in 0..64 {
            a.alloc();
        }
        assert_eq!(a.reserved(), 65, "64 allocations must cost one refill");
    }

    #[test]
    fn concurrent_allocations_never_collide() {
        let a = BlockAlloc::new(0, 8);
        let mut all: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let a = &a;
                    s.spawn(move || (0..5_000).map(|_| a.alloc()).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(n, all.len(), "block-allocated ids must be unique");
    }

    #[test]
    fn distinct_allocators_have_distinct_caches() {
        let a = BlockAlloc::new(0, 4);
        let b = BlockAlloc::new(0, 4);
        // Interleaved allocations must not leak one allocator's cache into
        // the other's sequence.
        assert_eq!(a.alloc(), 0);
        assert_eq!(b.alloc(), 0);
        assert_eq!(a.alloc(), 1);
        assert_eq!(b.alloc(), 1);
    }
}
