//! Contention management (§2.3).
//!
//! When a transaction tries to write an object that already has a registered
//! (visible) writer, "one of the transactions might need to wait or be
//! aborted. This task is typically delegated to a contention manager, a
//! configurable module whose role is to determine which transaction is
//! allowed to progress upon conflict" (§2.3, following DSTM).
//!
//! Policies implemented (the classics from the DSTM/SXM literature the paper
//! builds on):
//!
//! * [`Aggressive`] — always abort the other transaction,
//! * [`Suicide`] — always abort yourself,
//! * [`Polite`] — exponential backoff for a bounded number of attempts, then
//!   abort the other transaction (the default),
//! * [`Karma`] — the transaction that has invested more work (opened more
//!   objects, accumulated over its retries) wins,
//! * [`TimestampCm`] — the older transaction (earlier first-start) wins.
//!
//! Note that [`Karma`] and [`TimestampCm`] need a global birth-order counter
//! — a *shared counter*, exactly what a scalable time base avoids. The
//! default policy deliberately needs no shared state, so contention
//! management does not reintroduce the bottleneck the paper removes
//! ([`ContentionManager::needs_birth`] lets the runtime skip the counter
//! entirely for policies that do not use it).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Per-transaction state readable by contention managers.
///
/// Lives in the shared transaction descriptor so that *both* parties of a
/// conflict can inspect each other.
#[derive(Debug)]
pub struct CmState {
    txn_id: u64,
    /// First-start order of the transaction (0 = unassigned). Survives
    /// retries of the same logical transaction: an aborted transaction keeps
    /// its original birth so it eventually becomes the oldest and wins
    /// (livelock freedom for [`TimestampCm`]).
    birth: AtomicU64,
    /// Work invested: number of objects opened, accumulated across retries
    /// of the same logical transaction ([`Karma`] currency).
    ops: AtomicU64,
    /// Retry count of the logical transaction.
    retries: AtomicU32,
}

impl CmState {
    /// Fresh state for transaction `txn_id`.
    pub fn new(txn_id: u64) -> Self {
        CmState {
            txn_id,
            birth: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            retries: AtomicU32::new(0),
        }
    }

    /// The transaction attempt's unique id.
    pub fn txn_id(&self) -> u64 {
        self.txn_id
    }

    /// Birth order (0 = unassigned).
    pub fn birth(&self) -> u64 {
        self.birth.load(Ordering::Relaxed)
    }

    /// Set the birth order (done once by the runtime when the policy needs it).
    pub fn set_birth(&self, birth: u64) {
        self.birth.store(birth, Ordering::Relaxed);
    }

    /// Accumulated work (opened objects across retries).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Record one unit of work.
    pub fn add_op(&self) {
        self.ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Seed accumulated work from a previous attempt of the same logical
    /// transaction.
    pub fn seed(&self, ops: u64, retries: u32) {
        self.ops.store(ops, Ordering::Relaxed);
        self.retries.store(retries, Ordering::Relaxed);
    }

    /// Retry count of the logical transaction.
    pub fn retries(&self) -> u32 {
        self.retries.load(Ordering::Relaxed)
    }
}

/// Verdict of a contention manager for a write-write conflict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Kill the transaction currently registered as writer and take over.
    AbortOther,
    /// Abort the asking transaction (it will retry from scratch).
    AbortSelf,
    /// Back off and re-examine the conflict (the other transaction may have
    /// finished meanwhile).
    Wait,
}

/// A contention-management policy. `resolve` is consulted each time the
/// asking transaction re-encounters the conflict; `attempt` counts these
/// consultations for the *same* open operation (so policies can escalate).
pub trait ContentionManager: Send + Sync + 'static {
    /// Decide a write-write conflict between `me` (asking) and `other`
    /// (registered writer).
    fn resolve(&self, me: &CmState, other: &CmState, attempt: u32) -> Resolution;

    /// Whether the runtime must assign birth timestamps from a global
    /// counter for this policy. Policies returning `false` keep the
    /// contention path free of shared state.
    fn needs_birth(&self) -> bool {
        false
    }

    /// Called when a transaction commits (bookkeeping hook).
    fn on_commit(&self, _me: &CmState) {}

    /// Called when a transaction aborts (bookkeeping hook).
    fn on_abort(&self, _me: &CmState) {}

    /// Short name for experiment output.
    fn name(&self) -> &'static str;
}

/// Spin for an exponentially growing number of iterations (bounded).
pub fn backoff_spin(attempt: u32) {
    let iters = 1u64 << attempt.min(12);
    for _ in 0..iters {
        std::hint::spin_loop();
    }
    if attempt > 6 {
        std::thread::yield_now();
    }
}

/// Always abort the other transaction.
#[derive(Clone, Copy, Debug, Default)]
pub struct Aggressive;

impl ContentionManager for Aggressive {
    fn resolve(&self, _me: &CmState, _other: &CmState, _attempt: u32) -> Resolution {
        Resolution::AbortOther
    }

    fn name(&self) -> &'static str {
        "aggressive"
    }
}

/// Always abort yourself.
#[derive(Clone, Copy, Debug, Default)]
pub struct Suicide;

impl ContentionManager for Suicide {
    fn resolve(&self, _me: &CmState, _other: &CmState, _attempt: u32) -> Resolution {
        Resolution::AbortSelf
    }

    fn name(&self) -> &'static str {
        "suicide"
    }
}

/// Exponential backoff for `max_attempts` consultations, then abort the
/// other transaction. The default policy.
#[derive(Clone, Copy, Debug)]
pub struct Polite {
    /// Backoff rounds before escalating to [`Resolution::AbortOther`].
    pub max_attempts: u32,
}

impl Default for Polite {
    fn default() -> Self {
        Polite { max_attempts: 8 }
    }
}

impl ContentionManager for Polite {
    fn resolve(&self, _me: &CmState, _other: &CmState, attempt: u32) -> Resolution {
        if attempt < self.max_attempts {
            backoff_spin(attempt);
            Resolution::Wait
        } else {
            Resolution::AbortOther
        }
    }

    fn name(&self) -> &'static str {
        "polite"
    }
}

/// The transaction with more accumulated work wins; the loser waits a few
/// rounds proportional to the karma gap before being allowed to kill.
#[derive(Clone, Copy, Debug, Default)]
pub struct Karma;

impl ContentionManager for Karma {
    fn resolve(&self, me: &CmState, other: &CmState, attempt: u32) -> Resolution {
        if me.ops() >= other.ops() {
            Resolution::AbortOther
        } else if (attempt as u64) < other.ops().saturating_sub(me.ops()).min(16) {
            backoff_spin(attempt);
            Resolution::Wait
        } else {
            // Paid off the karma debt by waiting: now allowed to kill.
            Resolution::AbortOther
        }
    }

    fn name(&self) -> &'static str {
        "karma"
    }
}

/// Older transaction (smaller birth) wins; younger waits briefly, then
/// suicides so the older can make progress. Livelock-free because birth
/// order is stable across retries.
#[derive(Clone, Copy, Debug)]
pub struct TimestampCm {
    /// Backoff rounds before the younger transaction gives up.
    pub max_wait: u32,
}

impl Default for TimestampCm {
    fn default() -> Self {
        TimestampCm { max_wait: 4 }
    }
}

impl ContentionManager for TimestampCm {
    fn resolve(&self, me: &CmState, other: &CmState, attempt: u32) -> Resolution {
        let me_b = me.birth();
        let other_b = other.birth();
        // Unassigned birth (0) counts as youngest.
        let me_older = me_b != 0 && (other_b == 0 || me_b < other_b);
        if me_older {
            Resolution::AbortOther
        } else if attempt < self.max_wait {
            backoff_spin(attempt);
            Resolution::Wait
        } else {
            Resolution::AbortSelf
        }
    }

    fn needs_birth(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "timestamp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(id: u64) -> CmState {
        CmState::new(id)
    }

    #[test]
    fn aggressive_always_kills() {
        assert_eq!(
            Aggressive.resolve(&st(1), &st(2), 0),
            Resolution::AbortOther
        );
        assert_eq!(
            Aggressive.resolve(&st(1), &st(2), 99),
            Resolution::AbortOther
        );
    }

    #[test]
    fn suicide_always_dies() {
        assert_eq!(Suicide.resolve(&st(1), &st(2), 0), Resolution::AbortSelf);
    }

    #[test]
    fn polite_waits_then_escalates() {
        let p = Polite { max_attempts: 3 };
        assert_eq!(p.resolve(&st(1), &st(2), 0), Resolution::Wait);
        assert_eq!(p.resolve(&st(1), &st(2), 2), Resolution::Wait);
        assert_eq!(p.resolve(&st(1), &st(2), 3), Resolution::AbortOther);
    }

    #[test]
    fn karma_richer_wins_immediately() {
        let me = st(1);
        let other = st(2);
        for _ in 0..10 {
            me.add_op();
        }
        for _ in 0..3 {
            other.add_op();
        }
        assert_eq!(Karma.resolve(&me, &other, 0), Resolution::AbortOther);
        // Poorer side waits proportionally to the gap, then may kill.
        assert_eq!(Karma.resolve(&other, &me, 0), Resolution::Wait);
        assert_eq!(Karma.resolve(&other, &me, 7), Resolution::AbortOther);
    }

    #[test]
    fn timestamp_older_wins_younger_eventually_suicides() {
        let old = st(1);
        old.set_birth(10);
        let young = st(2);
        young.set_birth(20);
        let cm = TimestampCm { max_wait: 2 };
        assert_eq!(cm.resolve(&old, &young, 0), Resolution::AbortOther);
        assert_eq!(cm.resolve(&young, &old, 0), Resolution::Wait);
        assert_eq!(cm.resolve(&young, &old, 2), Resolution::AbortSelf);
        assert!(cm.needs_birth());
    }

    #[test]
    fn cm_state_accumulates_and_seeds() {
        let s = st(5);
        s.add_op();
        s.add_op();
        assert_eq!(s.ops(), 2);
        let next = st(6);
        next.seed(s.ops(), s.retries() + 1);
        assert_eq!(next.ops(), 2);
        assert_eq!(next.retries(), 1);
    }

    #[test]
    fn default_policies_avoid_global_state() {
        assert!(!Polite::default().needs_birth());
        assert!(!Aggressive.needs_birth());
        assert!(!Karma.needs_birth());
    }
}
