//! Runtime configuration.

/// Tunables of the LSA-RT runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StmConfig {
    /// Committed versions retained per object. `1` gives TL2-like
    /// single-version behaviour (a transaction can only read an object whose
    /// most recent update lies inside its snapshot, §1.2); larger values let
    /// long read-only transactions find consistent versions in the past
    /// (§4.3 multi-version discussion).
    pub max_versions: usize,
    /// Attempt a validity-range extension when a read finds no overlapping
    /// version or would break the snapshot, before giving up. "Extensions
    /// are not required for correctness, but they increase the chance that a
    /// suitable object version is available" (§2.2). LSA-STM enables this;
    /// disabling it approximates TL2's no-extension policy.
    pub extend_on_read: bool,
    /// Upper bound on commit-retry loops in `atomically` before backing off
    /// with a thread yield (livelock hygiene under heavy oversubscription).
    pub yield_after_retries: u64,
    /// Commit update transactions under **snapshot isolation** instead of
    /// full serializability: the commit-time read-set validation (Algorithm 2
    /// lines 43–48) is skipped — the snapshot was consistent by construction,
    /// and write-write conflicts are still excluded by the visible-write
    /// registration (first-writer-wins, a strict form of SI's
    /// first-committer-wins). This is the authors' earlier "Snapshot
    /// isolation for software transactional memory" (TRANSACT'06, cited as
    /// \[10\] in §1): cheaper commits, but write-skew anomalies become
    /// possible (see the `snapshot_isolation` integration tests).
    pub snapshot_isolation: bool,
    /// Prune versions below the minimum-active-snapshot watermark
    /// ([`crate::reclaim`]) in addition to the `max_versions` ceiling.
    /// Retention becomes demand-driven: "keep exactly what some active
    /// snapshot can still read". Disabling it restores the pure fixed-depth
    /// policy of earlier revisions.
    pub watermark_pruning: bool,
    /// Recompute the watermark every this many commits per thread (the lazy,
    /// amortized advance — no dedicated reclamation thread). Smaller values
    /// prune sooner at the cost of more registry scans.
    pub wm_advance_interval: u64,
}

impl Default for StmConfig {
    fn default() -> Self {
        StmConfig {
            max_versions: 8,
            extend_on_read: true,
            yield_after_retries: 64,
            snapshot_isolation: false,
            watermark_pruning: true,
            wm_advance_interval: 32,
        }
    }
}

impl StmConfig {
    /// TL2-like operating mode: single version, no read extensions.
    pub fn single_version() -> Self {
        StmConfig {
            max_versions: 1,
            extend_on_read: false,
            ..Default::default()
        }
    }

    /// Multi-version mode with `n` retained versions.
    pub fn multi_version(n: usize) -> Self {
        StmConfig {
            max_versions: n.max(1),
            ..Default::default()
        }
    }

    /// Snapshot-isolation mode (TRANSACT'06 extension): multi-version with
    /// commit-time read validation disabled.
    pub fn snapshot_isolation() -> Self {
        StmConfig {
            snapshot_isolation: true,
            ..Default::default()
        }
    }

    /// Pure watermark retention: no fixed depth ceiling at all — chains keep
    /// every version some active snapshot can still read and nothing more.
    /// The mode long-reader workloads want: `NoVersion` aborts become
    /// impossible for versions still covered by a registered snapshot, while
    /// memory stays bounded by actual demand.
    pub fn watermark_retention() -> Self {
        StmConfig {
            max_versions: usize::MAX,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_multi_version_with_extensions() {
        let c = StmConfig::default();
        assert!(c.max_versions > 1);
        assert!(c.extend_on_read);
    }

    #[test]
    fn single_version_mode_disables_extensions() {
        let c = StmConfig::single_version();
        assert_eq!(c.max_versions, 1);
        assert!(!c.extend_on_read);
    }

    #[test]
    fn multi_version_clamps_to_one() {
        assert_eq!(StmConfig::multi_version(0).max_versions, 1);
        assert_eq!(StmConfig::multi_version(5).max_versions, 5);
    }

    #[test]
    fn watermark_retention_removes_the_depth_ceiling() {
        let c = StmConfig::watermark_retention();
        assert_eq!(c.max_versions, usize::MAX);
        assert!(c.watermark_pruning);
        assert!(c.wm_advance_interval >= 1);
    }

    #[test]
    fn default_enables_watermark_pruning() {
        assert!(StmConfig::default().watermark_pruning);
    }
}
