//! [`lsa_engine::TxnEngine`] implementation for the LSA-RT runtime.
//!
//! This is the glue that lets every engine-generic workload and experiment
//! (see `lsa-workloads`, `lsa-harness`) run on LSA-RT: [`Stm`] is the engine,
//! [`ThreadHandle`] the per-thread handle, [`Txn`] the in-transaction view.
//! The impls are thin delegations — the generic surface adds no overhead
//! beyond what the native API already does (the `atomically` closure is
//! monomorphized per call site either way).

use crate::error::Abort;
use crate::lsa::Txn;
use crate::object::TVar;
use crate::reclaim::ReclaimStats;
use crate::sharded::{ShardedHandle, ShardedStm, ShardedTxn};
use crate::stats::TxnStats;
use crate::stm::{Stm, ThreadHandle};
use lsa_engine::{
    AbortReasons, EngineHandle, EngineResult, EngineStats, MemoryStats, TxnEngine, TxnOps,
};
use lsa_time::TimeBase;
use std::sync::Arc;

fn to_engine_stats(s: &TxnStats) -> EngineStats {
    use crate::error::AbortReason;
    EngineStats {
        commits: s.commits,
        ro_commits: s.ro_commits,
        aborts: s.total_aborts(),
        // LSA-RT's native reasons folded onto the cross-engine taxonomy:
        // consistency failures (commit-time validation + snapshot collapse)
        // are `validation`, the multi-version "no version overlaps the
        // validity range" case stays its own class (the §4.3 split), and
        // everything the contention manager decided is `contention`.
        abort_reasons: AbortReasons {
            validation: s.aborts_for(AbortReason::Validation) + s.aborts_for(AbortReason::Snapshot),
            no_version: s.aborts_for(AbortReason::NoVersion),
            contention: s.aborts_for(AbortReason::ContentionLoser)
                + s.aborts_for(AbortReason::Killed)
                + s.aborts_for(AbortReason::Explicit),
            overload: 0,
        },
        retries: s.retries,
        reads: s.reads,
        writes: s.writes,
        // LSA-RT's equivalent of a read-set revalidation is a validity-range
        // extension (Algorithm 3 lines 1–6); a commit-time validation that
        // fails surfaces as a `Validation` abort.
        validations: s.extensions,
        revalidation_failures: s.aborts_for(crate::error::AbortReason::Validation),
        validated_entries: s.validated_entries,
        shared_commit_ts: s.shared_cts,
        cross_shard_commits: s.cross_shard_commits,
        // Memory gauges are engine-global, not per-thread: the harness
        // samples them once per run through `TxnEngine::memory_stats`.
        memory: MemoryStats::default(),
    }
}

fn to_memory_stats(r: &ReclaimStats) -> MemoryStats {
    MemoryStats {
        versions_live: r.versions_live,
        versions_retired: r.versions_retired,
        versions_reclaimed: r.versions_reclaimed,
        arena_bytes: r.arena_bytes,
        watermark_lag: r.watermark_lag,
    }
}

impl<B: TimeBase> TxnEngine for Stm<B> {
    type Abort = Abort;
    type Var<T: Send + Sync + 'static> = TVar<T, B::Ts>;
    type Handle = ThreadHandle<B>;

    fn new_var<T: Send + Sync + 'static>(&self, value: T) -> TVar<T, B::Ts> {
        self.new_tvar(value)
    }

    fn register(&self) -> ThreadHandle<B> {
        Stm::register(self)
    }

    fn engine_name(&self) -> String {
        format!("lsa-rt({})", self.time_base().name())
    }

    fn memory_stats(&self) -> MemoryStats {
        to_memory_stats(&self.reclaim_stats())
    }

    fn peek<T: Send + Sync + 'static>(var: &TVar<T, B::Ts>) -> Arc<T> {
        var.snapshot_latest()
    }
}

impl<B: TimeBase> EngineHandle for ThreadHandle<B> {
    type Engine = Stm<B>;
    type Txn<'t>
        = Txn<'t, B>
    where
        Self: 't;

    fn atomically<R, F>(&mut self, body: F) -> R
    where
        F: for<'t> FnMut(&mut Txn<'t, B>) -> EngineResult<R, Stm<B>>,
    {
        ThreadHandle::atomically(self, body)
    }

    fn engine_stats(&self) -> EngineStats {
        to_engine_stats(self.stats())
    }

    fn take_engine_stats(&mut self) -> EngineStats {
        to_engine_stats(&self.take_stats())
    }
}

impl<B: TimeBase> TxnOps for Txn<'_, B> {
    type Engine = Stm<B>;

    fn read<T: Send + Sync + 'static>(
        &mut self,
        var: &TVar<T, B::Ts>,
    ) -> EngineResult<Arc<T>, Stm<B>> {
        Txn::read(self, var)
    }

    fn write<T: Send + Sync + 'static>(
        &mut self,
        var: &TVar<T, B::Ts>,
        value: T,
    ) -> EngineResult<(), Stm<B>> {
        Txn::write(self, var, value)
    }

    fn modify<T: Send + Sync + 'static>(
        &mut self,
        var: &TVar<T, B::Ts>,
        f: impl FnOnce(&T) -> T,
    ) -> EngineResult<(), Stm<B>> {
        Txn::modify(self, var, f)
    }
}

// --- The sharded runtime behind the same trait surface ---

impl<B: TimeBase> TxnEngine for ShardedStm<B> {
    type Abort = Abort;
    type Var<T: Send + Sync + 'static> = TVar<T, B::Ts>;
    type Handle = ShardedHandle<B>;

    fn new_var<T: Send + Sync + 'static>(&self, value: T) -> TVar<T, B::Ts> {
        self.new_tvar(value)
    }

    fn new_var_on<T: Send + Sync + 'static>(&self, shard: usize, value: T) -> TVar<T, B::Ts> {
        // The generic placement hint maps onto the sharded runtime's real
        // placement: modulo-wrap so workload code can pass any index.
        self.new_tvar_on(shard % self.shard_count(), value)
    }

    fn register(&self) -> ShardedHandle<B> {
        ShardedStm::register(self)
    }

    fn engine_name(&self) -> String {
        format!(
            "lsa-sharded{}x({})",
            self.shard_count(),
            self.time_base().inner().name()
        )
    }

    fn shards(&self) -> usize {
        self.shard_count()
    }

    fn memory_stats(&self) -> MemoryStats {
        to_memory_stats(&self.reclaim_stats())
    }

    fn peek<T: Send + Sync + 'static>(var: &TVar<T, B::Ts>) -> Arc<T> {
        var.snapshot_latest()
    }
}

impl<B: TimeBase> EngineHandle for ShardedHandle<B> {
    type Engine = ShardedStm<B>;
    type Txn<'t>
        = ShardedTxn<'t, B>
    where
        Self: 't;

    fn atomically<R, F>(&mut self, body: F) -> R
    where
        F: for<'t> FnMut(&mut ShardedTxn<'t, B>) -> EngineResult<R, ShardedStm<B>>,
    {
        ShardedHandle::atomically(self, body)
    }

    fn engine_stats(&self) -> EngineStats {
        to_engine_stats(self.stats())
    }

    fn take_engine_stats(&mut self) -> EngineStats {
        to_engine_stats(&self.take_stats())
    }
}

impl<B: TimeBase> TxnOps for ShardedTxn<'_, B> {
    type Engine = ShardedStm<B>;

    fn read<T: Send + Sync + 'static>(
        &mut self,
        var: &TVar<T, B::Ts>,
    ) -> EngineResult<Arc<T>, ShardedStm<B>> {
        ShardedTxn::read(self, var)
    }

    fn write<T: Send + Sync + 'static>(
        &mut self,
        var: &TVar<T, B::Ts>,
        value: T,
    ) -> EngineResult<(), ShardedStm<B>> {
        ShardedTxn::write(self, var, value)
    }

    fn modify<T: Send + Sync + 'static>(
        &mut self,
        var: &TVar<T, B::Ts>,
        f: impl FnOnce(&T) -> T,
    ) -> EngineResult<(), ShardedStm<B>> {
        ShardedTxn::modify(self, var, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_time::counter::SharedCounter;
    use lsa_time::hardware::HardwareClock;

    /// A fully generic transaction exercised through the trait surface only.
    fn generic_double<E: TxnEngine>(engine: &E) -> i64 {
        let v = engine.new_var(21i64);
        let mut h = engine.register();
        h.atomically(|tx| {
            let cur = *tx.read(&v)?;
            tx.write(&v, cur * 2)?;
            tx.modify(&v, |x| *x)?;
            tx.read(&v).map(|x| *x)
        })
    }

    #[test]
    fn lsa_rt_is_a_txn_engine() {
        let stm = Stm::new(SharedCounter::new());
        assert_eq!(generic_double(&stm), 42);
        assert_eq!(stm.engine_name(), "lsa-rt(shared-counter)");
        let stm = Stm::new(HardwareClock::mmtimer_free());
        assert_eq!(generic_double(&stm), 42);
        assert!(stm.engine_name().starts_with("lsa-rt(mmtimer"));
    }

    #[test]
    fn engine_stats_mirror_native_stats() {
        let stm = Stm::new(SharedCounter::new());
        let v = stm.new_tvar(0u64);
        let mut h = Stm::register(&stm);
        for _ in 0..5 {
            ThreadHandle::atomically(&mut h, |tx| tx.modify(&v, |x| x + 1));
        }
        let _ = ThreadHandle::atomically(&mut h, |tx| tx.read(&v).map(|x| *x));
        let es = h.engine_stats();
        let native = *h.stats();
        assert_eq!(es.commits, native.commits);
        assert_eq!(es.ro_commits, native.ro_commits);
        assert_eq!(es.aborts, native.total_aborts());
        assert_eq!(es.reads, native.reads);
        assert_eq!(es.writes, native.writes);
        assert_eq!(es.commits, 5);
        assert_eq!(es.ro_commits, 1);
        let taken = h.take_engine_stats();
        assert_eq!(taken, es);
        assert_eq!(h.engine_stats(), EngineStats::default());
    }

    #[test]
    fn peek_matches_snapshot_latest() {
        let stm = Stm::new(SharedCounter::new());
        let v = stm.new_tvar(7i32);
        assert_eq!(*<Stm<SharedCounter> as TxnEngine>::peek(&v), 7);
    }

    #[test]
    fn sharded_stm_is_a_txn_engine() {
        let stm = ShardedStm::new(SharedCounter::new(), 8);
        assert_eq!(generic_double(&stm), 42);
        assert_eq!(stm.engine_name(), "lsa-sharded8x(shared-counter)");
        assert_eq!(TxnEngine::shards(&stm), 8);
        // Unsharded engines report the default shard count of 1.
        assert_eq!(TxnEngine::shards(&Stm::new(SharedCounter::new())), 1);
    }

    #[test]
    fn placement_hint_routes_on_sharded_and_is_ignored_elsewhere() {
        let sharded = ShardedStm::new(SharedCounter::new(), 4);
        for shard in 0..4 {
            let v = TxnEngine::new_var_on(&sharded, shard, 0u8);
            assert_eq!(sharded.shard_of(&v), shard);
        }
        // Hints wrap modulo the shard count.
        let v = TxnEngine::new_var_on(&sharded, 7, 0u8);
        assert_eq!(sharded.shard_of(&v), 3);
        // Unsharded engines accept (and ignore) any hint.
        let stm = Stm::new(SharedCounter::new());
        let v = TxnEngine::new_var_on(&stm, 1234, 5i32);
        assert_eq!(*<Stm<SharedCounter> as TxnEngine>::peek(&v), 5);
    }

    #[test]
    fn engine_stats_carry_the_abort_taxonomy() {
        use crate::error::AbortReason;
        let mut native = TxnStats::default();
        native.record_abort(AbortReason::Validation);
        native.record_abort(AbortReason::Snapshot);
        native.record_abort(AbortReason::NoVersion);
        native.record_abort(AbortReason::ContentionLoser);
        native.record_abort(AbortReason::Killed);
        let es = to_engine_stats(&native);
        assert_eq!(es.abort_reasons.validation, 2);
        assert_eq!(es.abort_reasons.no_version, 1);
        assert_eq!(es.abort_reasons.contention, 2);
        assert_eq!(es.abort_reasons.overload, 0);
        assert_eq!(es.abort_reasons.total(), es.aborts);
    }

    #[test]
    fn sharded_engine_stats_report_cross_shard_commits() {
        let stm = ShardedStm::new(SharedCounter::new(), 4);
        let a = stm.new_tvar_on(0, 0u64);
        let b = stm.new_tvar_on(1, 0u64);
        let mut h = TxnEngine::register(&stm);
        for _ in 0..3 {
            EngineHandle::atomically(&mut h, |tx| {
                tx.modify(&a, |v| v + 1)?;
                tx.modify(&b, |v| v + 1)
            });
        }
        EngineHandle::atomically(&mut h, |tx| tx.modify(&a, |v| v + 1));
        let es = h.engine_stats();
        assert_eq!(es.commits, 4);
        assert_eq!(es.cross_shard_commits, 3);
        assert_eq!(es.cross_shard_per_commit(), 0.75);
    }
}
