//! Abort signalling.
//!
//! The paper's `Abort(T)` "throws AbortedException in T" to terminate the
//! transaction's execution (Algorithm 2 line 58). In Rust we propagate a
//! [`Abort`] error value through `Result` and the `?` operator instead; the
//! [`crate::stm::ThreadHandle::atomically`] retry loop catches it and re-runs
//! the transaction body.

use std::fmt;

/// Why a transaction aborted. Recorded in [`crate::stats::TxnStats`] so the
/// experiments can attribute aborts to their causes (§4.3 discusses how
/// synchronization errors change the abort profile).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// No object version overlapped the transaction's validity range
    /// (Algorithm 3 line 11).
    NoVersion,
    /// The validity range became (possibly) empty after an open
    /// (Algorithm 2 lines 30–31).
    Snapshot,
    /// Commit-time validation failed: some read version is not guaranteed
    /// valid at the commit time (Algorithm 2 lines 43–47).
    Validation,
    /// The contention manager decided this transaction loses a write-write
    /// conflict.
    ContentionLoser,
    /// Another transaction (via its contention manager) forcibly aborted us
    /// while we were active.
    Killed,
    /// The user requested an explicit abort/retry.
    Explicit,
}

impl AbortReason {
    /// All reasons, for stats tables.
    pub const ALL: [AbortReason; 6] = [
        AbortReason::NoVersion,
        AbortReason::Snapshot,
        AbortReason::Validation,
        AbortReason::ContentionLoser,
        AbortReason::Killed,
        AbortReason::Explicit,
    ];

    /// Index of this reason in [`AbortReason::ALL`] — the class byte the
    /// flight-recorder tracer records with `Abort` events.
    pub fn trace_class(self) -> u8 {
        AbortReason::ALL
            .iter()
            .position(|r| *r == self)
            .expect("reason in ALL") as u8
    }

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            AbortReason::NoVersion => "no-version",
            AbortReason::Snapshot => "snapshot",
            AbortReason::Validation => "validation",
            AbortReason::ContentionLoser => "cm-loser",
            AbortReason::Killed => "killed",
            AbortReason::Explicit => "explicit",
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The error value that unwinds a transaction body back to the retry loop —
/// the Rust rendering of the paper's `AbortedException`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Abort {
    /// Why the transaction aborted.
    pub reason: AbortReason,
}

impl Abort {
    /// Construct an abort with the given reason.
    pub fn new(reason: AbortReason) -> Self {
        Abort { reason }
    }
}

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction aborted ({})", self.reason)
    }
}

impl std::error::Error for Abort {}

/// Result alias used by every transactional operation.
pub type TxResult<T> = Result<T, Abort>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_is_a_std_error_with_reason() {
        let a = Abort::new(AbortReason::Validation);
        let msg = a.to_string();
        assert!(msg.contains("validation"));
        let _e: &dyn std::error::Error = &a;
    }

    #[test]
    fn all_reasons_have_distinct_labels() {
        let mut labels: Vec<_> = AbortReason::ALL.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), AbortReason::ALL.len());
    }
}
