//! # lsa-stm — the Real-Time Lazy Snapshot Algorithm (LSA-RT)
//!
//! A multi-version, object-based software transactional memory implementing
//! the SPAA'07 paper ["Time-based Transactional Memory with Scalable Time
//! Bases"][paper] (Riegel, Fetzer, Felber). The STM is *generic over its
//! time base* ([`lsa_time::TimeBase`]): the same algorithm runs on a shared
//! integer counter (classical LSA/TL2), on a perfectly synchronized hardware
//! clock (the paper's MMTimer), or on externally synchronized clocks with
//! bounded deviation — the paper's central contribution.
//!
//! ## Architecture
//!
//! * [`lsa`] — the algorithm itself: snapshot construction, lazy extension,
//!   two-phase commit with helping (Algorithms 2–3),
//! * [`object`] — multi-version objects with visible writes (DSTM-style
//!   writer registration),
//! * [`txn_shared`] — the shared transaction descriptor (status word, commit
//!   time, helper context),
//! * [`version`] — write-once validity-range metadata per version,
//! * [`reclaim`] — minimum-active-snapshot watermarks and the arena-backed
//!   version-node allocator (bounded-memory MVCC, DESIGN.md §11),
//! * [`cm`] — pluggable contention managers (§2.3),
//! * [`stm`] — the runtime: [`stm::Stm`], [`stm::ThreadHandle::atomically`],
//! * [`sharded`] — the sharded runtime: disjoint object shards with
//!   per-shard time-base arbitration and a cross-shard commit protocol
//!   ([`sharded::ShardedStm`], DESIGN.md §9),
//! * [`config`], [`stats`], [`error`] — tuning, accounting, abort plumbing.
//!
//! ## Quick start
//!
//! ```
//! use lsa_stm::prelude::*;
//! use lsa_time::hardware::HardwareClock;
//!
//! // LSA-RT on a simulated MMTimer (the paper's scalable time base).
//! let stm = Stm::new(HardwareClock::mmtimer_free());
//! let balance = stm.new_tvar(100i64);
//!
//! let mut thread = stm.register();
//! let remaining = thread.atomically(|tx| {
//!     let b = *tx.read(&balance)?;
//!     tx.write(&balance, b - 25)?;
//!     Ok(b - 25)
//! });
//! assert_eq!(remaining, 75);
//! ```
//!
//! [paper]: https://doi.org/10.1145/1248377.1248415

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod alloc;
pub mod cm;
pub mod config;
pub mod engine;
pub mod error;
pub mod lsa;
pub mod object;
pub mod reclaim;
pub mod sharded;
pub mod stats;
pub mod status;
pub mod stm;
pub mod txn_shared;
pub mod version;

pub use config::StmConfig;
pub use error::{Abort, AbortReason, TxResult};
pub use lsa::Txn;
pub use object::TVar;
pub use reclaim::ReclaimStats;
pub use sharded::{ShardedHandle, ShardedStm, ShardedTxn};
pub use stats::TxnStats;
pub use stm::{Stm, ThreadHandle};

/// Convenient re-exports for typical users.
pub mod prelude {
    pub use crate::cm::{Aggressive, ContentionManager, Karma, Polite, Suicide, TimestampCm};
    pub use crate::config::StmConfig;
    pub use crate::error::{Abort, AbortReason, TxResult};
    pub use crate::lsa::Txn;
    pub use crate::object::TVar;
    pub use crate::sharded::{ShardedHandle, ShardedStm, ShardedTxn};
    pub use crate::stats::TxnStats;
    pub use crate::stm::{Stm, ThreadHandle};
}
