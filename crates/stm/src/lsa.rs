//! The Real-Time Lazy Snapshot Algorithm (LSA-RT), Algorithms 2–3 of the
//! paper.
//!
//! A [`Txn`] incrementally constructs a *consistent snapshot*: the set of
//! object versions it reads, together with a validity range `T.R` that is the
//! intersection of the versions' validity ranges. Because `T.R` is kept
//! guaranteed-non-empty at every step, transactions always observe consistent
//! data without per-access validation — the defining property of time-based
//! transactional memory (§1.1).
//!
//! Key correspondences with the paper's pseudocode:
//!
//! | Paper | Here |
//! |---|---|
//! | `Start(T)` (Alg. 2 l.1–7) | `Txn::begin` (crate-internal, driven by `atomically`) |
//! | `Open(T,o,write)` (l.9–24) | [`Txn::write`] / [`Txn::modify`] via `open_write` |
//! | `Open(T,o,read)` (l.25–33) | [`Txn::read`] |
//! | `Commit(T)` (l.35–52) | `Txn::finish_commit` (driven by `atomically`) |
//! | `Abort(T)` (l.53–59) | `Txn::ensure_aborted` + `Err(Abort)` propagation |
//! | `Extend(T)` (Alg. 3 l.1–6) | [`Txn::extend`] |
//! | `getVersion` (l.7–18) | [`crate::object::TObject::try_read`] + retry loop |
//! | `getPrelimUB` (l.19–35) | `prelim_ub` (crate-internal) |
//! | helping (l.13) | `Txn::help_commit` |
//!
//! ### The `t` parameter of `getPrelimUB`
//!
//! The fallback branch of `getPrelimUB` returns the caller-supplied timestamp
//! `t`, which is sound exactly when the caller can guarantee that the version
//! was still the latest at (a real time corresponding to) `t`. We pass:
//! * at **open**: the transaction's own latest observation — the join of
//!   `⌊T.R⌋` (commit times of versions it read) and the last `getTime` it
//!   performed — both in the past, and the version is the latest *now*;
//! * at **extend**: a fresh `getTime()` (Alg. 3 line 2);
//! * at **commit validation**: `T.CT` (Alg. 2 line 44) — sound because any
//!   later superseder must acquire its commit time after entering the
//!   `Committing` state, i.e. strictly after ours (§2.4).

use crate::cm::{ContentionManager, Resolution};
use crate::config::StmConfig;
use crate::error::{Abort, AbortReason, TxResult};
use crate::object::{AnyObject, ReadAttempt, TVar, WriteAttempt};
use crate::reclaim::SnapshotSlot;
use crate::stats::TxnStats;
use crate::status::TxnStatus;
use crate::txn_shared::{CommitCtx, CtxEntry, TxnShared};
use crate::version::VersionMeta;
use lsa_obs::trace::{self, EventKind};
use lsa_time::{ThreadClock, TimeBase, Timestamp, ValidityRange};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Outcome of one `getPrelimUB` attempt.
enum Prelim<Ts: Timestamp> {
    /// A sound conservative estimate of `⌈v.R⌉`.
    Ready(Ts),
    /// The registered writer is `Committing` but its commit time is not set
    /// yet. Returning the fallback `t` here would be **unsound**: the writer
    /// may already hold a commit time ≤ `t` (drawn from the time base before
    /// our reading of `t`) that is merely not yet published. Resolution is
    /// the paper's helper behaviour (Algorithm 2 lines 41–42): race to set
    /// the writer's commit time from our own clock — "a committing thread
    /// will try to set the timestamp obtained from its local time reference
    /// … if it fails, another thread has set the commit time beforehand".
    /// A helper-set commit time is sound: it is obtained *after* observing
    /// the `Committing` state, satisfying §2.4's visibility requirement.
    NeedCt(Arc<TxnShared<Ts>>),
}

/// `getPrelimUB(T, o, v, t)` — Algorithm 3 lines 19–35: one attempt at a
/// conservative estimate of `⌈v.R⌉` as seen by transaction `me`.
fn prelim_raw<Ts: Timestamp>(
    obj: &dyn AnyObject<Ts>,
    meta: &VersionMeta<Ts>,
    t: Ts,
    me: &TxnShared<Ts>,
) -> Prelim<Ts> {
    // Superseded: the exact upper bound is known.
    if let Some(u) = meta.upper() {
        return Prelim::Ready(u);
    }
    // The paper's pseudocode evaluates getPrelimUB atomically; here the
    // reads of `meta.upper` (above) and `o.writer` (below) are separate and
    // the thread can stall between them — during which `v` may be superseded
    // several times and `o.writer` may belong to a much later generation,
    // whose commit time says NOTHING about `v`'s validity. Because `upper`
    // is write-once, re-checking it *after* sampling the writer
    // (`finish(..)` below) restores atomicity: if it is still unset at the
    // re-check, no successor of `v` has folded, so `v` really is the latest
    // version at that instant and the sampled writer (if any) is its first
    // prospective superseder — making the bounds below sound.
    let finish = |claim: Prelim<Ts>| -> Prelim<Ts> {
        match meta.upper() {
            Some(u) => Prelim::Ready(u),
            None => claim,
        }
    };
    // v is (tentatively) the latest version: only the registered writer may
    // bound it before t.
    if let Some(w) = obj.current_writer() {
        let st = w.status();
        if matches!(st, TxnStatus::Committing | TxnStatus::Committed) {
            return match w.ct() {
                Some(ct) if w.id() == me.id() => {
                    // Own write: overestimate by one — we know no other
                    // transaction can commit a version of o before CT+1 if
                    // we commit (Alg. 3 line 27, "simplifies Commit").
                    finish(Prelim::Ready(ct))
                }
                Some(ct) => {
                    // The superseding version becomes valid at ct, so v is
                    // valid at least until ct − 1 (Alg. 3 line 29). Sound
                    // even if w later aborts (the version then stays valid
                    // longer than claimed).
                    finish(Prelim::Ready(ct.prior()))
                }
                // Committed implies a published CT, so only a Committing
                // writer can land here.
                None => finish(Prelim::NeedCt(w)),
            };
        }
    }
    finish(Prelim::Ready(t))
}

/// `getPrelimUB` resolved to a sound value: when the registered writer is
/// committing but has not yet published its commit time, race to install one
/// from `clock` (the paper's nonblocking helper behaviour) and recompute.
fn prelim_resolved<C: ThreadClock>(
    clock: &mut C,
    obj: &dyn AnyObject<C::Ts>,
    meta: &VersionMeta<C::Ts>,
    t: C::Ts,
    me: &TxnShared<C::Ts>,
) -> C::Ts {
    loop {
        match prelim_raw(obj, meta, t, me) {
            Prelim::Ready(ub) => return ub,
            Prelim::NeedCt(w) => {
                // Arbitrated like any commit time: `t` is in the caller's
                // past, so the result strictly exceeds it (§2.4). Whether
                // the value is shared or exclusive is irrelevant here — the
                // first setter wins either way.
                let fresh = clock.acquire_commit_ts(t).ts();
                w.set_ct(fresh); // first setter wins; everyone agrees after
            }
        }
    }
}

/// Commit-time validation (Algorithm 2 lines 43–48): every version in `T.O`
/// must be (guaranteed) valid at `ct`.
pub(crate) fn validate<C: ThreadClock>(
    clock: &mut C,
    entries: &[CtxEntry<C::Ts>],
    ct: C::Ts,
    owner: &TxnShared<C::Ts>,
) -> bool {
    for e in entries {
        let ub = prelim_resolved(clock, e.obj.as_ref(), &e.meta, ct, owner);
        // Paper line 45: abort if T.CT ≿ ub (possibly later than).
        if ct.possibly_later(ub) {
            return false;
        }
    }
    true
}

/// An executing transaction. Created by
/// [`crate::stm::ThreadHandle::atomically`]; user code receives `&mut Txn`
/// inside the transaction body and performs [`Txn::read`] / [`Txn::write`] /
/// [`Txn::modify`] operations, propagating [`Abort`] errors with `?`.
pub struct Txn<'h, B: TimeBase> {
    cfg: &'h StmConfig,
    cm: &'h dyn ContentionManager,
    clock: &'h mut B::Clock,
    stats: &'h mut TxnStats,
    shared: Arc<TxnShared<B::Ts>>,
    /// `T.R` — the snapshot's validity range.
    range: ValidityRange<B::Ts>,
    /// Latest time this transaction has itself observed (start / extends);
    /// the sound fallback for `getPrelimUB` at opens.
    observed: B::Ts,
    is_update: bool,
    finished: bool,
    /// The thread's snapshot-registration slot (`crate::reclaim`): holds the
    /// snapshot lower bound for the watermark while this attempt is live.
    /// `None` for runtimes without reclamation (direct `try_atomically` on a
    /// bare descriptor in some tests).
    slot: Option<&'h SnapshotSlot<B::Ts>>,
    read_set: Vec<CtxEntry<B::Ts>>,
    read_cache: HashMap<u64, Arc<dyn Any + Send + Sync>>,
    write_set: HashMap<u64, Arc<dyn AnyObject<B::Ts>>>,
}

impl<'h, B: TimeBase> Txn<'h, B> {
    /// `Start(T)` — Algorithm 2 lines 1–7.
    pub(crate) fn begin(
        cfg: &'h StmConfig,
        cm: &'h dyn ContentionManager,
        clock: &'h mut B::Clock,
        stats: &'h mut TxnStats,
        shared: Arc<TxnShared<B::Ts>>,
        slot: Option<&'h SnapshotSlot<B::Ts>>,
    ) -> Self {
        // Two-phase slot publication: mark the slot *before* reading the
        // clock so a concurrent watermark advance cannot slip past a start
        // time that has been read but not yet published (see the pending
        // protocol in `crate::reclaim`).
        if let Some(s) = slot {
            s.mark_pending();
        }
        let start = clock.get_time();
        if let Some(s) = slot {
            s.activate(start);
        }
        Txn {
            cfg,
            cm,
            clock,
            stats,
            shared,
            range: ValidityRange::from(start),
            observed: start,
            is_update: false,
            finished: false,
            slot,
            read_set: Vec::new(),
            read_cache: HashMap::new(),
            write_set: HashMap::new(),
        }
    }

    /// Unique id of this transaction attempt.
    pub fn id(&self) -> u64 {
        self.shared.id()
    }

    /// The snapshot's current validity range `T.R`.
    pub fn validity_range(&self) -> ValidityRange<B::Ts> {
        self.range
    }

    /// Whether the transaction has written anything yet.
    pub fn is_update(&self) -> bool {
        self.is_update
    }

    /// Abort deliberately; the `atomically` loop will re-run the body.
    /// Usage: `return Err(tx.abort_retry());`
    pub fn abort_retry(&mut self) -> Abort {
        self.do_abort(AbortReason::Explicit)
    }

    fn check_alive(&mut self) -> TxResult<()> {
        if self.finished {
            return Err(Abort::new(AbortReason::Explicit));
        }
        if self.shared.status() == TxnStatus::Aborted {
            // A contention manager killed us (Algorithm 2 lines 16–18).
            return Err(self.do_abort(AbortReason::Killed));
        }
        Ok(())
    }

    /// The sound fallback timestamp for `getPrelimUB` at open time: a value
    /// known to be in the past of "now".
    fn fallback_ts(&self, lower: B::Ts) -> B::Ts {
        lower.join(self.observed)
    }

    /// `Open(T, o, read)` — Algorithm 2 lines 25–33 plus the `getVersion`
    /// retry loop of Algorithm 3.
    pub fn read<T: Send + Sync + 'static>(&mut self, var: &TVar<T, B::Ts>) -> TxResult<Arc<T>> {
        self.check_alive()?;
        self.stats.reads += 1;
        self.shared.cm().add_op();
        let id = var.id();

        // Read-own-write: the speculative value is ours.
        if self.write_set.contains_key(&id) {
            return match var.object().read_spec_value(self.shared.id()) {
                Some(v) => Ok(v),
                None => Err(self.do_abort(AbortReason::Killed)),
            };
        }
        // Repeated read: same version as before (snapshot stability).
        if let Some(cached) = self.read_cache.get(&id) {
            let v = Arc::clone(cached)
                .downcast::<T>()
                .expect("object payload type is stable");
            return Ok(v);
        }

        let mut extended = false;
        let mut spins = 0u32;
        loop {
            match var.object().try_read(&self.range) {
                ReadAttempt::Found { value, meta, lower } => {
                    // Tentatively intersect T.R with the version's range
                    // (Alg. 2 lines 28–29).
                    let mut nr = self.range;
                    nr.restrict_lower(lower);
                    let t = self.fallback_ts(nr.lower);
                    let ub = prelim_resolved(
                        self.clock,
                        var.object().as_ref() as &dyn AnyObject<B::Ts>,
                        &meta,
                        t,
                        &self.shared,
                    );
                    nr.restrict_upper(ub);
                    if !nr.is_consistent() {
                        // Possibly inconsistent (line 30): try one extension,
                        // which may move ⌈T.R⌉ forward far enough (§2.2:
                        // optional but increases the chance of success).
                        if self.cfg.extend_on_read && !extended {
                            extended = true;
                            self.extend();
                            continue; // re-select a version in the new range
                        }
                        return Err(self.do_abort(AbortReason::Snapshot));
                    }
                    self.range = nr;
                    let entry = CtxEntry {
                        obj: Arc::clone(var.object()) as Arc<dyn AnyObject<B::Ts>>,
                        meta: Arc::clone(&meta),
                    };
                    self.read_set.push(entry);
                    self.read_cache
                        .insert(id, Arc::clone(&value) as Arc<dyn Any + Send + Sync>);
                    return Ok(value);
                }
                ReadAttempt::NoOverlap { newest_lower: _ } => {
                    if self.cfg.extend_on_read && !extended {
                        extended = true;
                        self.extend();
                        if !self.range.is_consistent() {
                            return Err(self.do_abort(AbortReason::Snapshot));
                        }
                        continue;
                    }
                    // No suitable version (Alg. 3 line 11).
                    return Err(self.do_abort(AbortReason::NoVersion));
                }
                ReadAttempt::NeedFold => var.object().fold_resolved(),
                ReadAttempt::NeedHelp(w) => self.help_commit(&w),
            }
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
                spins = 0;
            }
        }
    }

    /// `Open(T, o, write)` — Algorithm 2 lines 9–24 — followed by installing
    /// `value` as the speculative payload.
    pub fn write<T: Send + Sync + 'static>(
        &mut self,
        var: &TVar<T, B::Ts>,
        value: T,
    ) -> TxResult<()> {
        self.open_write(var)?;
        if !var
            .object()
            .set_spec_value(self.shared.id(), Arc::new(value))
        {
            return Err(self.do_abort(AbortReason::Killed));
        }
        Ok(())
    }

    /// Read-modify-write convenience: applies `f` to the current value (the
    /// transaction's own pending write if it has one, the snapshot value
    /// otherwise) and writes the result.
    pub fn modify<T: Send + Sync + 'static>(
        &mut self,
        var: &TVar<T, B::Ts>,
        f: impl FnOnce(&T) -> T,
    ) -> TxResult<()> {
        let current = if self.write_set.contains_key(&var.id()) {
            match var.object().read_spec_value(self.shared.id()) {
                Some(v) => v,
                None => return Err(self.do_abort(AbortReason::Killed)),
            }
        } else {
            self.read(var)?
        };
        self.write(var, f(&current))
    }

    fn open_write<T: Send + Sync + 'static>(&mut self, var: &TVar<T, B::Ts>) -> TxResult<()> {
        self.check_alive()?;
        let id = var.id();
        if self.write_set.contains_key(&id) {
            return Ok(());
        }
        self.stats.writes += 1;
        self.shared.cm().add_op();

        let mut cm_attempt = 0u32;
        let mut spins = 0u32;
        loop {
            match var.object().try_write(&self.shared) {
                WriteAttempt::Registered {
                    base_value: _,
                    base_meta,
                    base_lower,
                    spec_meta,
                } => {
                    self.is_update = true;
                    self.write_set
                        .insert(id, Arc::clone(var.object()) as Arc<dyn AnyObject<B::Ts>>);

                    // Alg. 2 lines 22–24: "Is the version too recent?" —
                    // extend so the snapshot can reach the version we are
                    // about to base our write on.
                    if let Some(u) = self.range.upper {
                        if base_lower.possibly_later(u) {
                            self.extend();
                        }
                    }
                    // Lines 28–29 against the base version vc.
                    let mut nr = self.range;
                    nr.restrict_lower(base_lower);
                    let t = self.fallback_ts(nr.lower);
                    let ub = prelim_resolved(
                        self.clock,
                        var.object().as_ref() as &dyn AnyObject<B::Ts>,
                        &base_meta,
                        t,
                        &self.shared,
                    );
                    nr.restrict_upper(ub);
                    if !nr.is_consistent() {
                        return Err(self.do_abort(AbortReason::Snapshot));
                    }
                    self.range = nr;
                    // T.O gains the new speculative version (paper line 33);
                    // its getPrelimUB at commit is the self-case (CT).
                    self.read_set.push(CtxEntry {
                        obj: Arc::clone(var.object()) as Arc<dyn AnyObject<B::Ts>>,
                        meta: spec_meta,
                    });
                    return Ok(());
                }
                WriteAttempt::AlreadyWriter => {
                    self.write_set
                        .insert(id, Arc::clone(var.object()) as Arc<dyn AnyObject<B::Ts>>);
                    return Ok(());
                }
                WriteAttempt::NeedHelp(w) => self.help_commit(&w),
                WriteAttempt::Conflict(other) => {
                    self.stats.conflicts += 1;
                    match self.cm.resolve(self.shared.cm(), other.cm(), cm_attempt) {
                        Resolution::AbortOther => {
                            // Kill the registered writer (Alg. 2 l.16–18);
                            // if the CAS fails the writer moved on — loop.
                            other.transition(TxnStatus::Active, TxnStatus::Aborted);
                        }
                        Resolution::AbortSelf => {
                            return Err(self.do_abort(AbortReason::ContentionLoser));
                        }
                        Resolution::Wait => {}
                    }
                    cm_attempt += 1;
                    // We may have been killed while waiting.
                    self.check_alive()?;
                }
            }
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
                spins = 0;
            }
        }
    }

    /// `Extend(T)` — Algorithm 3 lines 1–6: raise `⌈T.R⌉` to the current
    /// time, then re-minimize over the read set's preliminary upper bounds.
    pub fn extend(&mut self) {
        let now = self.clock.get_time();
        self.observed = self.observed.join(now);
        self.range.set_upper(now);
        for i in 0..self.read_set.len() {
            let (obj, meta) = (
                Arc::clone(&self.read_set[i].obj),
                Arc::clone(&self.read_set[i].meta),
            );
            let ub = prelim_resolved(self.clock, obj.as_ref(), &meta, now, &self.shared);
            self.range.restrict_upper(ub);
        }
        self.stats.extensions += 1;
        trace::txn_event(EventKind::Extend, 0, self.shared.id());
    }

    /// Help a committing transaction complete (Algorithm 3 lines 12–13 and
    /// §2.3): race to set its commit time from *our* clock, re-run its
    /// validation, and finalize its status. Idempotent and lock-free with
    /// respect to object locks.
    pub(crate) fn help_commit(&mut self, w: &Arc<TxnShared<B::Ts>>) {
        if w.status() != TxnStatus::Committing {
            return;
        }
        // Race to set the commit time from our own clock (lines 41–42): "a
        // committing thread will try to set the timestamp obtained from its
        // local time reference … if it fails, another thread has set the
        // commit time beforehand".
        let ct = match w.ct() {
            Some(ct) => ct,
            None => {
                let t = self.clock.acquire_commit_ts(self.observed).ts();
                w.set_ct(t)
            }
        };
        let Some(ctx) = w.ctx() else {
            return; // already finalized and cleaned up
        };
        if w.status() != TxnStatus::Committing {
            return;
        }
        if w.is_snapshot_isolation() || validate(self.clock, &ctx.entries, ct, w) {
            if w.transition(TxnStatus::Committing, TxnStatus::Committed) {
                self.stats.helps += 1;
            }
        } else {
            w.transition(TxnStatus::Committing, TxnStatus::Aborted);
        }
    }

    /// `Commit(T)` — Algorithm 2 lines 35–52. Called by the `atomically`
    /// retry loop after the body returned `Ok`. On success returns the
    /// commit time of an update transaction (`None` for read-only commits).
    pub(crate) fn finish_commit(&mut self) -> TxResult<Option<B::Ts>> {
        debug_assert!(!self.finished, "commit called twice");
        if !self.is_update {
            // Read-only: the snapshot is consistent by construction —
            // validation is unnecessary (lines 36–37).
            if self
                .shared
                .transition(TxnStatus::Active, TxnStatus::Committed)
            {
                self.finished = true;
                self.stats.ro_commits += 1;
                self.cm.on_commit(self.shared.cm());
                // Release the snapshot registration: an idle handle must not
                // hold the watermark back between transactions.
                if let Some(s) = self.slot {
                    s.clear();
                }
                return Ok(None);
            }
            return Err(self.do_abort(AbortReason::Killed));
        }

        // Publish the read set for helpers *before* becoming visible as
        // committing: any thread that observes `Committing` finds the
        // context.
        self.shared.publish_ctx(CommitCtx {
            entries: self.read_set.clone(),
        });
        if !self
            .shared
            .transition(TxnStatus::Active, TxnStatus::Committing)
        {
            return Err(self.do_abort(AbortReason::Killed));
        }
        // Tentative commit time through the base's arbitration protocol;
        // the first setter wins (lines 41–42). The acquisition happens
        // strictly after the Committing transition — the visibility
        // requirement of §2.4 — and anchors above everything this
        // transaction has itself observed. A Shared outcome means a
        // concurrent non-conflicting committer holds the same timestamp
        // (GV4/GV5 arbitration), which §2.3 explicitly allows.
        let arbitrated = self.clock.acquire_commit_ts(self.observed);
        if arbitrated.is_shared() {
            self.stats.shared_cts += 1;
        }
        trace::txn_event(
            if arbitrated.is_shared() {
                EventKind::CtsShared
            } else {
                EventKind::CtsExclusive
            },
            0,
            self.shared.id(),
        );
        let ct = self.shared.set_ct(arbitrated.ts());

        // Snapshot-isolation mode (TRANSACT'06 extension): skip the read-set
        // validation — the snapshot was consistent when read, and visible
        // writes already exclude write-write conflicts. Serializable mode
        // runs Algorithm 2 lines 43–48.
        if !self.cfg.snapshot_isolation {
            self.stats.validated_entries += self.read_set.len() as u64;
            trace::txn_event(EventKind::Validate, 0, self.shared.id());
        }
        let valid =
            self.cfg.snapshot_isolation || validate(self.clock, &self.read_set, ct, &self.shared);
        if valid {
            self.shared
                .transition(TxnStatus::Committing, TxnStatus::Committed);
        } else {
            self.shared
                .transition(TxnStatus::Committing, TxnStatus::Aborted);
        }
        // Either our transition won or a helper finalized first; the status
        // is now final either way.
        let status = self.shared.status();
        self.finalize_cleanup();
        match status {
            TxnStatus::Committed => {
                self.finished = true;
                self.stats.commits += 1;
                self.cm.on_commit(self.shared.cm());
                Ok(Some(ct))
            }
            TxnStatus::Aborted => {
                self.finished = true;
                self.stats.record_abort(AbortReason::Validation);
                self.cm.on_abort(self.shared.cm());
                Err(Abort::new(AbortReason::Validation))
            }
            _ => unreachable!("status must be final after commit"),
        }
    }

    /// Make sure the transaction ends aborted (used by the retry loop when
    /// the body propagated an [`Abort`], and as a safety net). Idempotent.
    pub(crate) fn ensure_aborted(&mut self, reason: AbortReason) {
        if !self.finished {
            self.do_abort(reason);
        }
    }

    /// `Abort(T)` — Algorithm 2 lines 53–59 (the owner-side path).
    fn do_abort(&mut self, reason: AbortReason) -> Abort {
        if !self.finished {
            self.shared
                .transition(TxnStatus::Active, TxnStatus::Aborted);
            // (Committing is never current here: the commit path finalizes
            // itself before returning.)
            debug_assert!(self.shared.status().is_final());
            self.finalize_cleanup();
            self.finished = true;
            self.stats.record_abort(reason);
            self.cm.on_abort(self.shared.cm());
        }
        Abort::new(reason)
    }

    /// Post-final cleanup: fold/discard our speculative versions so objects
    /// are immediately writable by others, and drop the helper context to
    /// break the descriptor↔object reference cycle.
    fn finalize_cleanup(&mut self) {
        // Release the snapshot registration first: the folds below may prune
        // against the watermark, and a finished transaction must not count
        // as demand. (Our own read set stays safe — it holds `Arc`s.)
        if let Some(s) = self.slot {
            s.clear();
        }
        for obj in self.write_set.values() {
            obj.fold_resolved();
        }
        self.shared.clear_ctx();
    }
}

impl<B: TimeBase> Drop for Txn<'_, B> {
    fn drop(&mut self) {
        // A panicking body must not leave a zombie writer registered.
        if !self.finished {
            self.shared
                .transition(TxnStatus::Active, TxnStatus::Aborted);
            if self.shared.status().is_final() {
                self.finalize_cleanup();
            }
            // A zombie snapshot registration would freeze the watermark
            // forever; clearing is idempotent if cleanup already ran.
            if let Some(s) = self.slot {
                s.clear();
            }
        }
    }
}
