//! Multi-version transactional objects with visible writes.
//!
//! Each object holds a bounded chain of *committed* versions (newest first)
//! plus at most one *speculative* version owned by a registered writer — the
//! paper's `o.writer` mark (§2.3, DSTM-style visible writes). "Setting the
//! transaction's state atomically commits — or discards in case of an abort —
//! all object versions written by the transaction": the speculative version's
//! fate is determined solely by its writer's status word, and it is *folded*
//! into the committed chain (or dropped) lazily by the next thread that
//! touches the object, and proactively by the committer itself.
//!
//! Lock discipline: every object has its own short-critical-section
//! [`RwLock`]; no thread ever holds two object locks, and no lock is held
//! while consulting the contention manager, helping a commit, or touching a
//! time base. Global coordination happens **only** through the time base —
//! preserving the phenomenon the paper measures.

use crate::reclaim::ReclaimDomain;
use crate::status::TxnStatus;
use crate::txn_shared::TxnShared;
use crate::version::VersionMeta;
use lsa_time::{Timestamp, ValidityRange};
use parking_lot::RwLock;
use std::collections::VecDeque;
use std::sync::Arc;

/// Type-erased view of an object used by read sets, validation and helping
/// (no payload type parameter, so descriptors can hold heterogeneous sets).
pub trait AnyObject<Ts: Timestamp>: Send + Sync {
    /// Process-wide object id.
    fn id(&self) -> u64;

    /// The currently registered writer, if any (the paper's `o.writer`),
    /// regardless of its status.
    fn current_writer(&self) -> Option<Arc<TxnShared<Ts>>>;

    /// Fold a *resolved* (committed/aborted) speculative version into the
    /// committed chain / the void. No-op when there is no speculative
    /// version or its writer is still live.
    fn fold_resolved(&self);
}

/// Outcome of a read attempt (the object-side half of `getVersion`,
/// Algorithm 3 lines 7–18).
pub enum ReadAttempt<T, Ts: Timestamp> {
    /// A committed version overlapping the requested range.
    Found {
        /// The version's payload.
        value: Arc<T>,
        /// The version's range metadata (goes into the read set).
        meta: Arc<VersionMeta<Ts>>,
        /// `⌊v.R⌋` — returned separately so the caller does not re-lock.
        lower: Ts,
    },
    /// No committed version overlaps the range. Carries the newest version's
    /// lower bound so the caller can decide whether extending could help
    /// (the newest version begins after the range's upper bound).
    NoOverlap {
        /// Lower bound of the newest committed version.
        newest_lower: Ts,
    },
    /// A resolved speculative version must be folded first; call
    /// [`AnyObject::fold_resolved`] and retry.
    NeedFold,
    /// The registered writer is committing; help it finish (Algorithm 3
    /// line 13) and retry.
    NeedHelp(Arc<TxnShared<Ts>>),
}

/// Outcome of a write-registration attempt (Algorithm 2 lines 11–21).
pub enum WriteAttempt<T, Ts: Timestamp> {
    /// We are now the registered writer.
    Registered {
        /// The latest committed version's payload the speculative copy was
        /// cloned from (`vc` in Algorithm 2 line 12).
        base_value: Arc<T>,
        /// `vc`'s range metadata.
        base_meta: Arc<VersionMeta<Ts>>,
        /// `⌊vc.R⌋`.
        base_lower: Ts,
        /// The fresh speculative version's metadata (goes into the read set;
        /// its `getPrelimUB` is the self-case returning `T.CT`).
        spec_meta: Arc<VersionMeta<Ts>>,
    },
    /// This transaction is already the registered writer.
    AlreadyWriter,
    /// Another *active* transaction holds the write mark: consult the
    /// contention manager (Algorithm 2 lines 16–17).
    Conflict(Arc<TxnShared<Ts>>),
    /// The registered writer is committing; help it and retry.
    NeedHelp(Arc<TxnShared<Ts>>),
}

struct Committed<T, Ts: Timestamp> {
    value: Arc<T>,
    meta: Arc<VersionMeta<Ts>>,
}

struct Spec<T, Ts: Timestamp> {
    value: Arc<T>,
    meta: Arc<VersionMeta<Ts>>,
    writer: Arc<TxnShared<Ts>>,
}

struct ObjInner<T, Ts: Timestamp> {
    /// Committed versions, newest first. Never empty (objects are created
    /// with an initial committed version).
    committed: VecDeque<Committed<T, Ts>>,
    /// The at-most-one speculative version (the visible write mark).
    spec: Option<Spec<T, Ts>>,
}

/// A multi-version transactional object.
pub struct TObject<T, Ts: Timestamp> {
    id: u64,
    max_versions: usize,
    /// The runtime's reclamation domain, when the object participates in
    /// watermark pruning and arena recycling (`None` for free-standing
    /// objects built with [`TObject::new`], e.g. in unit tests).
    reclaim: Option<Arc<ReclaimDomain<Ts>>>,
    /// Prune below the watermark in addition to the `max_versions` ceiling
    /// (`StmConfig::watermark_pruning`).
    wm_prune: bool,
    inner: RwLock<ObjInner<T, Ts>>,
}

impl<T: Send + Sync + 'static, Ts: Timestamp> TObject<T, Ts> {
    /// Create an object whose initial version is valid from `lower`
    /// (normally [`Timestamp::origin`], so every snapshot can see it).
    pub fn new(id: u64, initial: T, lower: Ts, max_versions: usize) -> Self {
        assert!(max_versions >= 1, "need at least one committed version");
        let mut committed = VecDeque::with_capacity(max_versions.min(16) + 1);
        committed.push_front(Committed {
            value: Arc::new(initial),
            meta: Arc::new(VersionMeta::committed_at(lower)),
        });
        TObject {
            id,
            max_versions,
            reclaim: None,
            wm_prune: false,
            inner: RwLock::new(ObjInner {
                committed,
                spec: None,
            }),
        }
    }

    /// Like [`TObject::new`], but attached to a reclamation domain: version
    /// metadata is drawn from the domain's arena, retired versions return to
    /// it, and (when `wm_prune` is set) the chain prunes below the domain's
    /// minimum-active-snapshot watermark instead of relying on the
    /// `max_versions` ceiling alone.
    pub(crate) fn with_reclaim(
        id: u64,
        initial: T,
        lower: Ts,
        max_versions: usize,
        reclaim: Arc<ReclaimDomain<Ts>>,
        wm_prune: bool,
    ) -> Self {
        let mut obj = Self::new(id, initial, lower, max_versions);
        reclaim.note_live(); // the initial version
        obj.reclaim = Some(reclaim);
        obj.wm_prune = wm_prune;
        obj
    }

    /// The latest committed value, ignoring transactions (for seeding and
    /// debugging; *not* transactionally consistent with anything else).
    pub fn snapshot_latest(&self) -> Arc<T> {
        self.fold_resolved();
        Arc::clone(
            &self
                .inner
                .read()
                .committed
                .front()
                .expect("non-empty")
                .value,
        )
    }

    /// Number of committed versions currently retained.
    pub fn version_count(&self) -> usize {
        self.inner.read().committed.len()
    }

    /// Debug view of the committed chain: `(lower, upper)` per version,
    /// newest first, plus the current writer's status if any.
    #[doc(hidden)]
    pub fn debug_chain(&self) -> Vec<(Option<Ts>, Option<Ts>)> {
        self.inner
            .read()
            .committed
            .iter()
            .map(|v| (v.meta.lower(), v.meta.upper()))
            .collect()
    }

    /// The object-side half of `getVersion` for a read in `range`:
    /// the newest committed version whose validity range (as recorded —
    /// preliminary bounds are the caller's business) overlaps `range`.
    pub fn try_read(&self, range: &ValidityRange<Ts>) -> ReadAttempt<T, Ts> {
        let inner = self.inner.read();
        if let Some(spec) = &inner.spec {
            match spec.writer.status() {
                TxnStatus::Committed | TxnStatus::Aborted => return ReadAttempt::NeedFold,
                TxnStatus::Committing => return ReadAttempt::NeedHelp(Arc::clone(&spec.writer)),
                TxnStatus::Active => {} // invisible to readers
            }
        }
        for (idx, v) in inner.committed.iter().enumerate() {
            let lower = v.meta.lower().expect("committed version has lower");
            debug_assert!(
                idx == 0 || v.meta.upper().is_some(),
                "non-front version without an upper bound (chain corrupt)"
            );
            let vrange = match v.meta.upper() {
                Some(u) => ValidityRange::bounded(lower, u),
                None => ValidityRange::from(lower),
            };
            if vrange.overlaps(range) {
                return ReadAttempt::Found {
                    value: Arc::clone(&v.value),
                    meta: Arc::clone(&v.meta),
                    lower,
                };
            }
        }
        let newest_lower = inner
            .committed
            .front()
            .expect("non-empty")
            .meta
            .lower()
            .expect("committed version has lower");
        ReadAttempt::NoOverlap { newest_lower }
    }

    /// Attempt to register `me` as the writer (Algorithm 2 lines 11–21).
    /// On success the speculative version starts as an `Arc`-clone of the
    /// latest committed payload; the caller replaces it via
    /// [`TObject::set_spec_value`].
    pub fn try_write(&self, me: &Arc<TxnShared<Ts>>) -> WriteAttempt<T, Ts> {
        let mut inner = self.inner.write();
        // The registered writer's status is not protected by this object's
        // lock, so it can resolve at any instant — loop until we observe a
        // stable, unresolved state (we hold the lock, so at most one extra
        // fold happens).
        loop {
            self.fold_locked(&mut inner);
            match &inner.spec {
                None => break,
                Some(spec) => match spec.writer.status() {
                    TxnStatus::Active | TxnStatus::Committing if spec.writer.id() == me.id() => {
                        return WriteAttempt::AlreadyWriter;
                    }
                    TxnStatus::Active => return WriteAttempt::Conflict(Arc::clone(&spec.writer)),
                    TxnStatus::Committing => {
                        return WriteAttempt::NeedHelp(Arc::clone(&spec.writer))
                    }
                    // Resolved between fold and match: fold again.
                    TxnStatus::Committed | TxnStatus::Aborted => continue,
                },
            }
        }
        let base = inner.committed.front().expect("non-empty");
        let base_value = Arc::clone(&base.value);
        let base_meta = Arc::clone(&base.meta);
        let base_lower = base.meta.lower().expect("committed version has lower");
        let spec_meta = match &self.reclaim {
            // Arena path: recycle an epoch-expired node instead of a fresh
            // heap allocation on the write/commit hot path.
            Some(r) => r.alloc_meta(),
            None => Arc::new(VersionMeta::speculative()),
        };
        inner.spec = Some(Spec {
            value: Arc::clone(&base_value),
            meta: Arc::clone(&spec_meta),
            writer: Arc::clone(me),
        });
        WriteAttempt::Registered {
            base_value,
            base_meta,
            base_lower,
            spec_meta,
        }
    }

    /// Replace the speculative payload (the transaction's pending write).
    /// Returns `false` if `me` is no longer the registered writer (it was
    /// killed and its speculative version discarded).
    pub fn set_spec_value(&self, me_id: u64, value: Arc<T>) -> bool {
        let mut inner = self.inner.write();
        match &mut inner.spec {
            Some(spec) if spec.writer.id() == me_id => {
                spec.value = value;
                true
            }
            _ => false,
        }
    }

    /// Read back the speculative payload (read-own-write). `None` if `me`
    /// is no longer the registered writer.
    pub fn read_spec_value(&self, me_id: u64) -> Option<Arc<T>> {
        let inner = self.inner.read();
        match &inner.spec {
            Some(spec) if spec.writer.id() == me_id => Some(Arc::clone(&spec.value)),
            _ => None,
        }
    }

    /// Fold a resolved speculative version while holding the write lock:
    ///
    /// * committed writer → fix the speculative version's lower bound to the
    ///   writer's commit time `CT`, fix the previous newest version's upper
    ///   bound to `CT.prior()` (Algorithm 3 line 29's "valid at least until
    ///   then" becomes exact here), push it as the new head, prune the tail;
    /// * aborted writer → discard.
    ///
    /// Tail pruning retires **eagerly at commit** — the committer folds its
    /// own write (`finalize_cleanup` → `fold_resolved`), so reclamation does
    /// not depend on a future accessor happening to touch this object. Two
    /// policies prune:
    ///
    /// * the `max_versions` hard ceiling (always), and
    /// * the minimum-active-snapshot watermark (when enabled): a tail
    ///   version whose fixed upper bound `u` satisfies `w ≿ u` is unreadable
    ///   by every registered snapshot (each active lower bound `s` has
    ///   `s ≽ w`, so `u ≽ s` would give `u ≽ w` by transitivity,
    ///   contradicting `w ≿ u`) and is retired into the arena.
    fn fold_locked(&self, inner: &mut ObjInner<T, Ts>) {
        let resolved = match &inner.spec {
            Some(spec) => spec.writer.status().is_final(),
            None => false,
        };
        if !resolved {
            return;
        }
        let spec = inner.spec.take().expect("checked above");
        match spec.writer.status() {
            TxnStatus::Committed => {
                let ct = spec.writer.ct().expect("committed writer has a CT");
                spec.meta.set_lower(ct);
                if let Some(prev) = inner.committed.front() {
                    debug_assert!(
                        ct.possibly_later(prev.meta.lower().expect("committed")),
                        "commit-time order inverted within one object's chain: \
                         new {:?} after {:?}",
                        ct,
                        prev.meta.lower()
                    );
                    prev.meta.set_upper(ct.prior());
                }
                inner.committed.push_front(Committed {
                    value: spec.value,
                    meta: spec.meta,
                });
                if let Some(r) = &self.reclaim {
                    r.note_live();
                }
                while inner.committed.len() > self.max_versions {
                    // Only superseded versions (fixed upper) can sit behind
                    // the head, so pruning never erases live range info —
                    // readers that still hold the meta keep the full range.
                    let pruned = inner.committed.pop_back().expect("len checked");
                    debug_assert!(pruned.meta.upper().is_some());
                    if let Some(r) = &self.reclaim {
                        r.retire(pruned.meta);
                    }
                }
                if self.wm_prune {
                    if let Some(r) = &self.reclaim {
                        if let Some(w) = r.watermark() {
                            while inner.committed.len() > 1 {
                                let tail_upper =
                                    inner.committed.back().expect("len > 1").meta.upper();
                                match tail_upper {
                                    Some(u) if w.possibly_later(u) => {
                                        let pruned =
                                            inner.committed.pop_back().expect("len checked");
                                        r.retire(pruned.meta);
                                    }
                                    // The tail still overlaps `[w, ∞)`: some
                                    // registered snapshot may read it (and
                                    // everything newer), stop.
                                    _ => break,
                                }
                            }
                        }
                    }
                }
            }
            TxnStatus::Aborted => drop(spec),
            _ => unreachable!("resolved checked above"),
        }
    }
}

impl<T: Send + Sync + 'static, Ts: Timestamp> AnyObject<Ts> for TObject<T, Ts> {
    fn id(&self) -> u64 {
        self.id
    }

    fn current_writer(&self) -> Option<Arc<TxnShared<Ts>>> {
        self.inner
            .read()
            .spec
            .as_ref()
            .map(|s| Arc::clone(&s.writer))
    }

    fn fold_resolved(&self) {
        let mut inner = self.inner.write();
        self.fold_locked(&mut inner);
    }
}

impl<T, Ts: Timestamp> std::fmt::Debug for TObject<T, Ts> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TObject").field("id", &self.id).finish()
    }
}

/// A cloneable handle to a [`TObject`] — the user-facing "transactional
/// variable". Reads and writes go through
/// [`crate::lsa::Txn::read`] / [`crate::lsa::Txn::write`].
pub struct TVar<T, Ts: Timestamp> {
    obj: Arc<TObject<T, Ts>>,
}

impl<T, Ts: Timestamp> Clone for TVar<T, Ts> {
    fn clone(&self) -> Self {
        TVar {
            obj: Arc::clone(&self.obj),
        }
    }
}

impl<T: Send + Sync + 'static, Ts: Timestamp> TVar<T, Ts> {
    /// Wrap an object (used by [`crate::stm::Stm::new_tvar`]).
    pub(crate) fn from_object(obj: TObject<T, Ts>) -> Self {
        TVar { obj: Arc::new(obj) }
    }

    /// The underlying object.
    #[inline]
    pub(crate) fn object(&self) -> &Arc<TObject<T, Ts>> {
        &self.obj
    }

    /// The underlying object, exposed for white-box tests that construct
    /// descriptor states directly (helping / failure injection). Not part of
    /// the stable API.
    #[doc(hidden)]
    pub fn object_for_tests(&self) -> &Arc<TObject<T, Ts>> {
        &self.obj
    }

    /// Object id (stable across clones of the handle).
    pub fn id(&self) -> u64 {
        self.obj.id
    }

    /// Latest committed value, outside any transaction (debug/seeding only).
    pub fn snapshot_latest(&self) -> Arc<T> {
        self.obj.snapshot_latest()
    }

    /// Number of committed versions currently retained (for tests and the
    /// multi- vs single-version experiments).
    pub fn version_count(&self) -> usize {
        self.obj.version_count()
    }
}

impl<T, Ts: Timestamp> std::fmt::Debug for TVar<T, Ts> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TVar").field("id", &self.obj.id).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::TxnStatus;

    fn obj(max_versions: usize) -> TObject<i64, u64> {
        TObject::new(1, 10, 0, max_versions)
    }

    fn txn(id: u64) -> Arc<TxnShared<u64>> {
        Arc::new(TxnShared::new(id))
    }

    #[test]
    fn fresh_object_serves_initial_version() {
        let o = obj(4);
        match o.try_read(&ValidityRange::from(5u64)) {
            ReadAttempt::Found { value, lower, .. } => {
                assert_eq!(*value, 10);
                assert_eq!(lower, 0);
            }
            _ => panic!("expected Found"),
        }
    }

    #[test]
    fn write_commit_fold_produces_new_version() {
        let o = obj(4);
        let t = txn(100);
        let spec_meta = match o.try_write(&t) {
            WriteAttempt::Registered {
                spec_meta,
                base_lower,
                ..
            } => {
                assert_eq!(base_lower, 0);
                spec_meta
            }
            _ => panic!("expected Registered"),
        };
        assert!(o.set_spec_value(t.id(), Arc::new(42)));
        t.transition(TxnStatus::Active, TxnStatus::Committing);
        t.set_ct(7);
        t.transition(TxnStatus::Committing, TxnStatus::Committed);
        o.fold_resolved();
        assert_eq!(spec_meta.lower(), Some(7));
        assert_eq!(*o.snapshot_latest(), 42);
        assert_eq!(o.version_count(), 2);
        // Old version's upper is CT - 1.
        match o.try_read(&ValidityRange::bounded(0u64, 6)) {
            ReadAttempt::Found { value, meta, .. } => {
                assert_eq!(*value, 10);
                assert_eq!(meta.upper(), Some(6));
            }
            _ => panic!("old version must still be readable at 6"),
        }
        // New version serves times >= 7.
        match o.try_read(&ValidityRange::from(7u64)) {
            ReadAttempt::Found { value, .. } => assert_eq!(*value, 42),
            _ => panic!("new version must serve"),
        }
    }

    #[test]
    fn aborted_writer_is_discarded() {
        let o = obj(4);
        let t = txn(100);
        assert!(matches!(o.try_write(&t), WriteAttempt::Registered { .. }));
        o.set_spec_value(t.id(), Arc::new(999));
        t.transition(TxnStatus::Active, TxnStatus::Aborted);
        o.fold_resolved();
        assert_eq!(*o.snapshot_latest(), 10, "write discarded");
        assert_eq!(o.version_count(), 1);
        assert!(o.current_writer().is_none());
    }

    #[test]
    fn second_writer_conflicts_with_active_first() {
        let o = obj(4);
        let t1 = txn(1);
        let t2 = txn(2);
        assert!(matches!(o.try_write(&t1), WriteAttempt::Registered { .. }));
        match o.try_write(&t2) {
            WriteAttempt::Conflict(w) => assert_eq!(w.id(), 1),
            _ => panic!("expected Conflict"),
        }
        assert!(matches!(o.try_write(&t1), WriteAttempt::AlreadyWriter));
    }

    #[test]
    fn committing_writer_asks_for_help() {
        let o = obj(4);
        let t1 = txn(1);
        assert!(matches!(o.try_write(&t1), WriteAttempt::Registered { .. }));
        t1.transition(TxnStatus::Active, TxnStatus::Committing);
        let t2 = txn(2);
        assert!(matches!(o.try_write(&t2), WriteAttempt::NeedHelp(_)));
        assert!(matches!(
            o.try_read(&ValidityRange::from(0u64)),
            ReadAttempt::NeedHelp(_)
        ));
    }

    #[test]
    fn reader_ignores_active_writer() {
        let o = obj(4);
        let t1 = txn(1);
        assert!(matches!(o.try_write(&t1), WriteAttempt::Registered { .. }));
        o.set_spec_value(t1.id(), Arc::new(77));
        match o.try_read(&ValidityRange::from(0u64)) {
            ReadAttempt::Found { value, .. } => assert_eq!(*value, 10),
            _ => panic!("reader must see committed version"),
        }
    }

    #[test]
    fn pruning_keeps_at_most_max_versions() {
        let o = obj(2);
        for (i, ct) in [(1u64, 10u64), (2, 20), (3, 30), (4, 40)] {
            let t = txn(i);
            assert!(matches!(o.try_write(&t), WriteAttempt::Registered { .. }));
            o.set_spec_value(t.id(), Arc::new(i as i64));
            t.transition(TxnStatus::Active, TxnStatus::Committing);
            t.set_ct(ct);
            t.transition(TxnStatus::Committing, TxnStatus::Committed);
            o.fold_resolved();
        }
        assert_eq!(o.version_count(), 2);
        assert_eq!(*o.snapshot_latest(), 4);
        // A range before the retained window finds nothing.
        match o.try_read(&ValidityRange::bounded(0u64, 5)) {
            ReadAttempt::NoOverlap { newest_lower } => assert_eq!(newest_lower, 40),
            _ => panic!("pruned history must be unreachable"),
        }
    }

    #[test]
    fn single_version_mode_keeps_only_latest() {
        let o = obj(1);
        let t = txn(1);
        assert!(matches!(o.try_write(&t), WriteAttempt::Registered { .. }));
        o.set_spec_value(t.id(), Arc::new(5));
        t.transition(TxnStatus::Active, TxnStatus::Committing);
        t.set_ct(100);
        t.transition(TxnStatus::Committing, TxnStatus::Committed);
        o.fold_resolved();
        assert_eq!(o.version_count(), 1);
        // Reads in the past fail: TL2-like behaviour (§1.2).
        assert!(matches!(
            o.try_read(&ValidityRange::bounded(0u64, 50)),
            ReadAttempt::NoOverlap { .. }
        ));
    }

    #[test]
    fn read_own_write_roundtrip() {
        let o = obj(4);
        let t = txn(9);
        assert!(matches!(o.try_write(&t), WriteAttempt::Registered { .. }));
        assert!(o.set_spec_value(t.id(), Arc::new(1234)));
        assert_eq!(*o.read_spec_value(t.id()).unwrap(), 1234);
        assert!(
            o.read_spec_value(555).is_none(),
            "only the writer reads its spec"
        );
    }

    type ReclaimedObj = (
        Arc<crate::reclaim::SnapshotRegistry<u64>>,
        Arc<ReclaimDomain<u64>>,
        TObject<i64, u64>,
    );

    fn reclaimed_obj(max_versions: usize, wm_prune: bool) -> ReclaimedObj {
        let reg = Arc::new(crate::reclaim::SnapshotRegistry::new());
        let dom = Arc::new(ReclaimDomain::new(Arc::clone(&reg)));
        let o = TObject::with_reclaim(1, 10, 0, max_versions, Arc::clone(&dom), wm_prune);
        (reg, dom, o)
    }

    fn commit_write(o: &TObject<i64, u64>, id: u64, val: i64, ct: u64) {
        let t = txn(id);
        assert!(matches!(o.try_write(&t), WriteAttempt::Registered { .. }));
        assert!(o.set_spec_value(t.id(), Arc::new(val)));
        t.transition(TxnStatus::Active, TxnStatus::Committing);
        t.set_ct(ct);
        t.transition(TxnStatus::Committing, TxnStatus::Committed);
        o.fold_resolved();
    }

    #[test]
    fn watermark_prunes_exactly_below_min_active_snapshot() {
        let (reg, dom, o) = reclaimed_obj(usize::MAX, true);
        let slot = reg.register();
        slot.activate(25); // a long reader pinned at 25
        dom.advance(100); // watermark = 25
        for (i, ct) in [(1u64, 10u64), (2, 20), (3, 30), (4, 40)] {
            commit_write(&o, i, i as i64, ct);
        }
        // Chain: [40,∞) [30,39] [20,29] [10,19]; only [10,19] ends below 25.
        assert_eq!(o.version_count(), 3);
        match o.try_read(&ValidityRange::bounded(25u64, 25)) {
            ReadAttempt::Found { value, .. } => {
                assert_eq!(*value, 2, "the reader's version must survive")
            }
            _ => panic!("version covering the active snapshot was pruned"),
        }
        // Reader finishes: the watermark passes it and the tail collapses on
        // the next commit.
        slot.clear();
        dom.advance(100);
        commit_write(&o, 5, 5, 50);
        assert_eq!(o.version_count(), 1, "no snapshot demands history");
        assert_eq!(*o.snapshot_latest(), 5);
    }

    #[test]
    fn watermark_pruning_can_be_disabled() {
        let (reg, dom, o) = reclaimed_obj(usize::MAX, false);
        let _idle = reg.register();
        dom.advance(1_000);
        for (i, ct) in [(1u64, 10u64), (2, 20), (3, 30)] {
            commit_write(&o, i, i as i64, ct);
        }
        assert_eq!(o.version_count(), 4, "ceiling-only mode keeps everything");
    }

    #[test]
    fn commit_path_retires_eagerly_into_the_arena() {
        let (_reg, dom, o) = reclaimed_obj(1, false);
        commit_write(&o, 1, 1, 10);
        commit_write(&o, 2, 2, 20);
        let s = dom.stats();
        assert_eq!(s.versions_retired, 2, "each commit retires its predecessor");
        assert_eq!(s.versions_live, 1);
        assert_eq!(
            s.versions_reclaimed + s.versions_pooled,
            2,
            "every retired node is accounted released-or-pooled"
        );
    }

    #[test]
    fn killed_writer_loses_spec_slot() {
        let o = obj(4);
        let t1 = txn(1);
        assert!(matches!(o.try_write(&t1), WriteAttempt::Registered { .. }));
        // t1 gets killed by a contention manager.
        t1.transition(TxnStatus::Active, TxnStatus::Aborted);
        // Another writer takes over (fold happens inside try_write).
        let t2 = txn(2);
        assert!(matches!(o.try_write(&t2), WriteAttempt::Registered { .. }));
        assert!(!o.set_spec_value(t1.id(), Arc::new(0)), "t1 lost the slot");
        assert!(o.read_spec_value(t1.id()).is_none());
    }
}
