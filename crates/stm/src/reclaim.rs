//! Epoch-based version reclamation: snapshot watermarks + an arena-backed
//! version-node allocator.
//!
//! The fixed-depth version chains of earlier revisions were policy-blind:
//! `max_versions` too small starves long readers (`NoVersion` aborts),
//! too large wastes memory on versions nobody can read. This module converts
//! depth policy into *demand*: an object may prune every version whose
//! validity range ends below the **minimum-active-snapshot watermark** — the
//! `min` (timestamp [`meet`](lsa_time::Timestamp::meet)) over the snapshot
//! lower bounds of all live transactions.
//!
//! ## The watermark protocol
//!
//! Each registered thread owns one [`SnapshotSlot`]. A transaction publishes
//! its snapshot lower bound into its slot at begin and clears it at finish.
//! The watermark is advanced *lazily* — amortized over commits, no dedicated
//! thread — by scanning the slots and caching the result in the
//! [`ReclaimDomain`]. Slots are per-thread and uncontended (the owning
//! thread writes, the advancing thread reads), so no new *global* hot cache
//! line appears on the per-transaction path — the same contention argument
//! the paper makes for its time bases (§4.2): the shared state is touched
//! once per *advance interval*, not once per transaction.
//!
//! The begin protocol is two-phase: a slot is first marked *pending*, then
//! the clock is read and the slot activated with the observed start time.
//! A pending slot blocks watermark advancement entirely. Without this, an
//! advance racing a begin could compute a watermark from "no active slots"
//! (falling back to the advancer's own clock reading) *after* the beginning
//! transaction read an earlier start time but *before* it published it —
//! and the stale watermark would overshoot that transaction's snapshot.
//!
//! ## Why pruning is safe, and what reuse needs
//!
//! Pruning never breaks opacity: readers keep `Arc<VersionMeta>` in their
//! read sets, so unlinking a version from its chain only limits *future*
//! reads (availability). The watermark makes even that loss impossible for
//! registered snapshots: a pruned version has a fixed upper bound `u` with
//! `w ≿ u` (`w.possibly_later(u)`), and every active snapshot lower bound
//! `s` satisfies `s ≽ w` by the `meet` contract, so `u ≽ s` would imply
//! `u ≽ w` — contradiction. Hence no version readable by any registered
//! active snapshot is ever pruned.
//!
//! *Reuse* of a version node is the safety-critical part, and it rests on
//! two independent guards: (1) a node is only pooled when `Arc::get_mut`
//! proves the chain held the last reference (a node still referenced by any
//! reader is dropped normally instead — the reader's metadata stays frozen
//! forever); (2) pooled nodes are epoch-stamped at retirement and handed out
//! again only after the watermark has advanced past that epoch, so even the
//! *timing* of reuse is tied to snapshot progress. See DESIGN.md §11.

use crate::alloc::next_alloc_key;
use crate::version::VersionMeta;
use lsa_time::Timestamp;
use parking_lot::{Mutex, RwLock};
use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Maximum recycled version nodes cached per thread per arena.
const POOL_CAP: usize = 64;

#[derive(Debug)]
struct SlotState<Ts: Timestamp> {
    /// The owner's current snapshot lower bound, if a transaction is live.
    lower: Option<Ts>,
    /// A transaction is between "begin" and "start time published": blocks
    /// watermark advancement (see the module docs).
    pending: bool,
    /// The owning thread handle was dropped; the slot may be reused by the
    /// next registration.
    closed: bool,
}

/// One thread's snapshot registration slot.
///
/// Written only by the owning thread (begin/finish), read by whichever
/// thread happens to advance the watermark — an uncontended mutex in the
/// common case, never a shared read-modify-write on the transaction path.
#[derive(Debug)]
pub struct SnapshotSlot<Ts: Timestamp> {
    state: Mutex<SlotState<Ts>>,
}

impl<Ts: Timestamp> SnapshotSlot<Ts> {
    fn new() -> Self {
        SnapshotSlot {
            state: Mutex::new(SlotState {
                lower: None,
                pending: false,
                closed: false,
            }),
        }
    }

    /// Phase 1 of begin: announce that a snapshot lower bound is about to be
    /// published, blocking watermark advancement until it is.
    pub(crate) fn mark_pending(&self) {
        let mut s = self.state.lock();
        s.pending = true;
    }

    /// Phase 2 of begin: publish the transaction's snapshot lower bound.
    pub(crate) fn activate(&self, lower: Ts) {
        let mut s = self.state.lock();
        s.lower = Some(lower);
        s.pending = false;
    }

    /// The owning transaction finished (committed or aborted): release the
    /// snapshot so the watermark may pass it.
    pub(crate) fn clear(&self) {
        let mut s = self.state.lock();
        s.lower = None;
        s.pending = false;
    }

    /// The owning thread handle is gone: free the slot for reuse.
    pub(crate) fn close(&self) {
        let mut s = self.state.lock();
        s.lower = None;
        s.pending = false;
        s.closed = true;
    }

    fn reopen(&self) -> bool {
        let mut s = self.state.lock();
        if s.closed {
            s.closed = false;
            s.lower = None;
            s.pending = false;
            true
        } else {
            false
        }
    }
}

/// The registry of [`SnapshotSlot`]s for one runtime (shared by all shards
/// of a `ShardedStm` — a transaction has one snapshot lower bound no matter
/// how many shards it touches).
#[derive(Debug)]
pub struct SnapshotRegistry<Ts: Timestamp> {
    slots: RwLock<Vec<Arc<SnapshotSlot<Ts>>>>,
}

impl<Ts: Timestamp> SnapshotRegistry<Ts> {
    /// An empty registry.
    pub(crate) fn new() -> Self {
        SnapshotRegistry {
            slots: RwLock::new(Vec::new()),
        }
    }

    /// Claim a slot for a newly registered thread, reusing a closed one when
    /// available so the scan length is bounded by the peak number of
    /// concurrently registered threads.
    pub(crate) fn register(&self) -> Arc<SnapshotSlot<Ts>> {
        {
            let slots = self.slots.read();
            for slot in slots.iter() {
                if slot.reopen() {
                    return Arc::clone(slot);
                }
            }
        }
        let slot = Arc::new(SnapshotSlot::new());
        self.slots.write().push(Arc::clone(&slot));
        slot
    }

    /// The watermark candidate: the `meet` over all active snapshot lower
    /// bounds, `now` when no snapshot is active, or `None` when a pending
    /// slot forbids advancing at all.
    pub(crate) fn min_active_or(&self, now: Ts) -> Option<Ts> {
        let slots = self.slots.read();
        let mut wm: Option<Ts> = None;
        for slot in slots.iter() {
            let s = slot.state.lock();
            if s.pending {
                return None;
            }
            if let Some(lower) = s.lower {
                wm = Some(match wm {
                    None => lower,
                    Some(w) => w.meet(lower),
                });
            }
        }
        Some(wm.unwrap_or(now))
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.slots.read().len()
    }
}

/// One pooled node: (retirement epoch stamp, type-erased
/// `Arc<VersionMeta<Ts>>`).
type PooledNode = (u64, Box<dyn Any>);

thread_local! {
    /// Per-thread recycled-node pools: arena key → epoch-stamped nodes.
    /// Nodes are type-erased because thread-local storage cannot be
    /// generic; each arena key only ever sees one concrete `Ts`.
    static POOLS: RefCell<HashMap<u64, VecDeque<PooledNode>>> =
        RefCell::new(HashMap::new());
}

/// Arena counters and the thread-cached free lists for version metadata
/// nodes — the `BlockAlloc` pattern (one shared line touched rarely, all
/// fast-path traffic thread-local) applied to version reclamation.
#[derive(Debug)]
struct VersionArena<Ts: Timestamp> {
    /// Identity of this arena in the thread-local pool maps (same key space
    /// as [`crate::alloc::BlockAlloc`]).
    key: u64,
    /// Reuse epoch: bumped by every watermark advance; a pooled node is
    /// handed out again only when the current epoch is strictly past its
    /// retirement stamp.
    epoch: AtomicU64,
    /// Committed versions currently linked into some object chain. Signed:
    /// relaxed global counting may transiently dip below zero between a
    /// concurrent retire and the matching link.
    live: AtomicI64,
    /// Versions unlinked from chains over the arena's lifetime.
    retired: AtomicU64,
    /// Retired versions actually released (dropped) or recycled; the
    /// difference `retired - reclaimed` is sitting in thread-local pools.
    reclaimed: AtomicU64,
    /// Nodes currently cached in thread-local pools.
    pooled: AtomicI64,
    /// Retired nodes that were later handed out again (diagnostic).
    recycled: AtomicU64,
    _ts: std::marker::PhantomData<fn() -> Ts>,
}

impl<Ts: Timestamp> VersionArena<Ts> {
    fn new() -> Self {
        VersionArena {
            key: next_alloc_key(),
            epoch: AtomicU64::new(1),
            live: AtomicI64::new(0),
            retired: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            pooled: AtomicI64::new(0),
            recycled: AtomicU64::new(0),
            _ts: std::marker::PhantomData,
        }
    }

    /// Metadata for a new speculative version, recycled from the calling
    /// thread's pool when an epoch-expired node is available.
    fn alloc_meta(&self) -> Arc<VersionMeta<Ts>> {
        let epoch_now = self.epoch.load(Ordering::Acquire);
        let node = POOLS.with(|p| {
            let mut pools = p.borrow_mut();
            let pool = pools.get_mut(&self.key)?;
            // Oldest stamp first: if even the front is too fresh, so is the
            // rest of the queue.
            let (stamp, _) = pool.front()?;
            if *stamp >= epoch_now {
                return None;
            }
            Some(pool.pop_front().expect("front() was Some").1)
        });
        match node {
            Some(boxed) => {
                self.pooled.fetch_sub(1, Ordering::Relaxed);
                self.reclaimed.fetch_add(1, Ordering::Relaxed);
                self.recycled.fetch_add(1, Ordering::Relaxed);
                let mut meta = boxed
                    .downcast::<Arc<VersionMeta<Ts>>>()
                    .expect("arena pools are homogeneous per key");
                Arc::get_mut(&mut meta)
                    .expect("pooled nodes hold the only reference")
                    .reset();
                *meta
            }
            None => Arc::new(VersionMeta::speculative()),
        }
    }

    /// A version was linked into a chain.
    fn note_live(&self) {
        self.live.fetch_add(1, Ordering::Relaxed);
    }

    /// A version was unlinked from its chain. Pools the node for reuse when
    /// the chain held the last reference (the uniqueness proof that makes
    /// recycling safe); otherwise the surviving readers' `Arc` frees it.
    fn retire(&self, mut meta: Arc<VersionMeta<Ts>>) {
        self.live.fetch_sub(1, Ordering::Relaxed);
        self.retired.fetch_add(1, Ordering::Relaxed);
        if Arc::get_mut(&mut meta).is_none() {
            // Shared with a read set: never pooled, dropped by the last
            // reader. Counted as reclaimed — the arena releases its claim.
            self.reclaimed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let stamp = self.epoch.load(Ordering::Acquire);
        let overflow = POOLS.with(move |p| {
            let mut pools = p.borrow_mut();
            let pool = pools.entry(self.key).or_default();
            if pool.len() >= POOL_CAP {
                Some(meta)
            } else {
                pool.push_back((stamp, Box::new(meta) as Box<dyn Any>));
                None
            }
        });
        if overflow.is_some() {
            self.reclaimed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.pooled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drop every node the calling thread has pooled for this arena
    /// (tests / teardown accounting).
    fn flush_local(&self) {
        let n = POOLS.with(|p| {
            p.borrow_mut()
                .get_mut(&self.key)
                .map(|pool| pool.drain(..).count())
                .unwrap_or(0)
        });
        if n > 0 {
            self.pooled.fetch_sub(n as i64, Ordering::Relaxed);
            self.reclaimed.fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }
}

/// A snapshot of a [`ReclaimDomain`]'s gauges and counters — the native
/// (engine-internal) form of `lsa_engine::MemoryStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReclaimStats {
    /// Committed versions currently linked into object chains.
    pub versions_live: u64,
    /// Versions unlinked from chains over the domain's lifetime.
    pub versions_retired: u64,
    /// Retired versions released or recycled (`retired - reclaimed` nodes
    /// sit in thread-local pools).
    pub versions_reclaimed: u64,
    /// Nodes cached in thread-local pools right now.
    pub versions_pooled: u64,
    /// Retired nodes handed out again by the arena.
    pub versions_recycled: u64,
    /// Approximate bytes of version metadata held live or pooled. A lower
    /// bound: counts the metadata node (validity bounds + refcounts), not
    /// the workload-owned payload.
    pub arena_bytes: u64,
    /// `now - watermark` in raw time-base units at the last advance.
    pub watermark_lag: u64,
    /// Watermark advances performed on this domain.
    pub advances: u64,
}

/// One reclamation domain: the snapshot registry (possibly shared with
/// sibling domains), the cached watermark, and the version arena. The
/// unsharded runtime owns one domain; `ShardedStm` owns one per shard, all
/// fed by a single registry, so fold-time watermark reads stay shard-local
/// instead of converging on one global line.
#[derive(Debug)]
pub struct ReclaimDomain<Ts: Timestamp> {
    registry: Arc<SnapshotRegistry<Ts>>,
    /// Cached watermark: `None` until the first advance (prune nothing —
    /// maximally conservative).
    watermark: Mutex<Option<Ts>>,
    lag_raw: AtomicU64,
    advances: AtomicU64,
    arena: VersionArena<Ts>,
}

impl<Ts: Timestamp> ReclaimDomain<Ts> {
    /// A domain drawing snapshot bounds from `registry`.
    pub(crate) fn new(registry: Arc<SnapshotRegistry<Ts>>) -> Self {
        ReclaimDomain {
            registry,
            watermark: Mutex::new(None),
            lag_raw: AtomicU64::new(0),
            advances: AtomicU64::new(0),
            arena: VersionArena::new(),
        }
    }

    /// The registry feeding this domain.
    pub(crate) fn registry(&self) -> &Arc<SnapshotRegistry<Ts>> {
        &self.registry
    }

    /// The cached minimum-active-snapshot watermark, if one has been
    /// computed yet.
    pub(crate) fn watermark(&self) -> Option<Ts> {
        *self.watermark.lock()
    }

    /// Recompute the watermark from the registry and install it. `now` is a
    /// fresh reading of the advancing thread's clock: the fallback watermark
    /// when no snapshot is active, and the reference point for the lag gauge.
    pub(crate) fn advance(&self, now: Ts) {
        if let Some(wm) = self.registry.min_active_or(now) {
            self.install(wm, now);
        }
    }

    /// Install an externally computed watermark (the sharded runtime scans
    /// the shared registry once and installs into every shard's domain).
    pub(crate) fn install(&self, wm: Ts, now: Ts) {
        *self.watermark.lock() = Some(wm);
        let lag = (now.raw_value() - wm.raw_value()).clamp(0, u64::MAX as i128) as u64;
        self.lag_raw.store(lag, Ordering::Relaxed);
        self.advances.fetch_add(1, Ordering::Relaxed);
        self.arena.bump_epoch();
    }

    /// Allocate metadata for a speculative version (recycling pooled nodes
    /// whose retirement epoch the watermark has passed).
    pub(crate) fn alloc_meta(&self) -> Arc<VersionMeta<Ts>> {
        self.arena.alloc_meta()
    }

    /// Account a version linked into a chain.
    pub(crate) fn note_live(&self) {
        self.arena.note_live();
    }

    /// Retire a version unlinked from a chain into the arena.
    pub(crate) fn retire(&self, meta: Arc<VersionMeta<Ts>>) {
        self.arena.retire(meta);
    }

    /// Drop the calling thread's pooled nodes (teardown/leak accounting).
    pub(crate) fn flush_local(&self) {
        self.arena.flush_local();
    }

    /// Point-in-time snapshot of the domain's counters.
    pub fn stats(&self) -> ReclaimStats {
        let live = self.arena.live.load(Ordering::Relaxed).max(0) as u64;
        let pooled = self.arena.pooled.load(Ordering::Relaxed).max(0) as u64;
        // Metadata node + the Arc's strong/weak counts that precede it.
        let node_bytes =
            (std::mem::size_of::<VersionMeta<Ts>>() + 2 * std::mem::size_of::<usize>()) as u64;
        ReclaimStats {
            versions_live: live,
            versions_retired: self.arena.retired.load(Ordering::Relaxed),
            versions_reclaimed: self.arena.reclaimed.load(Ordering::Relaxed),
            versions_pooled: pooled,
            versions_recycled: self.arena.recycled.load(Ordering::Relaxed),
            arena_bytes: (live + pooled) * node_bytes,
            watermark_lag: self.lag_raw.load(Ordering::Relaxed),
            advances: self.advances.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> (Arc<SnapshotRegistry<u64>>, ReclaimDomain<u64>) {
        let reg = Arc::new(SnapshotRegistry::new());
        let dom = ReclaimDomain::new(Arc::clone(&reg));
        (reg, dom)
    }

    #[test]
    fn watermark_is_min_over_active_slots() {
        let (reg, _dom) = domain();
        let a = reg.register();
        let b = reg.register();
        a.activate(5);
        b.activate(9);
        assert_eq!(reg.min_active_or(100), Some(5));
        a.clear();
        assert_eq!(reg.min_active_or(100), Some(9));
        b.clear();
        assert_eq!(reg.min_active_or(100), Some(100), "idle registry: now");
    }

    #[test]
    fn pending_slot_blocks_advancement() {
        let (reg, dom) = domain();
        let a = reg.register();
        a.mark_pending();
        assert_eq!(reg.min_active_or(50), None, "pending begin must block");
        dom.advance(50);
        assert_eq!(dom.watermark(), None, "blocked advance installs nothing");
        a.activate(42);
        dom.advance(50);
        assert_eq!(dom.watermark(), Some(42));
    }

    #[test]
    fn closed_slots_are_reused() {
        let (reg, _dom) = domain();
        let a = reg.register();
        assert_eq!(reg.len(), 1);
        a.close();
        let _b = reg.register();
        assert_eq!(reg.len(), 1, "closed slot must be reopened, not appended");
        let _c = reg.register();
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn closed_slot_does_not_hold_watermark() {
        let (reg, _dom) = domain();
        let a = reg.register();
        a.activate(3);
        a.close();
        assert_eq!(reg.min_active_or(88), Some(88));
    }

    #[test]
    fn arena_recycles_only_after_epoch_advance() {
        let (_reg, dom) = domain();
        let m = dom.alloc_meta();
        m.set_lower(1);
        dom.note_live();
        dom.retire(m);
        assert_eq!(dom.stats().versions_pooled, 1);
        // Same epoch: the pooled node is not yet eligible.
        let fresh = dom.alloc_meta();
        assert_eq!(dom.stats().versions_recycled, 0);
        assert_eq!(fresh.lower(), None);
        drop(fresh);
        // Advance moves the epoch past the retirement stamp.
        dom.advance(10);
        let recycled = dom.alloc_meta();
        assert_eq!(dom.stats().versions_recycled, 1);
        assert_eq!(recycled.lower(), None, "recycled node must be reset");
        assert_eq!(dom.stats().versions_pooled, 0);
    }

    #[test]
    fn shared_nodes_are_never_pooled() {
        let (_reg, dom) = domain();
        let m = dom.alloc_meta();
        dom.note_live();
        let reader_copy = Arc::clone(&m);
        dom.retire(m);
        let s = dom.stats();
        assert_eq!(s.versions_pooled, 0, "a shared node must not be pooled");
        assert_eq!(s.versions_retired, 1);
        assert_eq!(s.versions_reclaimed, 1);
        drop(reader_copy);
    }

    #[test]
    fn retired_splits_into_reclaimed_plus_pooled() {
        let (_reg, dom) = domain();
        for i in 0..10u64 {
            let m = dom.alloc_meta();
            m.set_lower(i);
            dom.note_live();
            dom.retire(m);
        }
        let s = dom.stats();
        assert_eq!(s.versions_retired, 10);
        assert_eq!(s.versions_reclaimed + s.versions_pooled, 10);
        dom.flush_local();
        let s = dom.stats();
        assert_eq!(s.versions_pooled, 0);
        assert_eq!(
            s.versions_reclaimed, s.versions_retired,
            "after a flush every retired node is reclaimed"
        );
        assert_eq!(s.versions_live, 0);
    }

    #[test]
    fn advance_tracks_lag_and_counts() {
        let (reg, dom) = domain();
        let a = reg.register();
        a.activate(3);
        dom.advance(10);
        let s = dom.stats();
        assert_eq!(dom.watermark(), Some(3));
        assert_eq!(s.watermark_lag, 7);
        assert_eq!(s.advances, 1);
        a.clear();
        dom.advance(20);
        assert_eq!(dom.watermark(), Some(20));
        assert_eq!(dom.stats().watermark_lag, 0);
    }

    #[test]
    fn arena_bytes_track_live_and_pooled() {
        let (_reg, dom) = domain();
        assert_eq!(dom.stats().arena_bytes, 0);
        let m = dom.alloc_meta();
        dom.note_live();
        assert!(dom.stats().arena_bytes > 0);
        dom.retire(m);
        // Still pooled: memory is held, the gauge must say so.
        assert!(dom.stats().arena_bytes > 0);
        dom.flush_local();
        assert_eq!(dom.stats().arena_bytes, 0);
    }
}
