//! The sharded LSA runtime: disjoint object shards with per-shard time-base
//! arbitration and a cross-shard commit protocol.
//!
//! [`ShardedStm`] splits the object table into `N` shards. Every object id
//! encodes its home shard ([`shard_of_id`]), new objects are routed
//! round-robin across shards (or placed explicitly with
//! [`ShardedStm::new_tvar_on`]), and each shard draws ids from its own
//! block-allocated sequence — there is no global `next_obj` hot line. Each
//! registered thread carries one time-base clock *per shard*
//! ([`lsa_time::ShardedClock`]), so a shard's arbitration state (reserved
//! timestamp blocks, modeled NUMA cache-line ownership) is private to that
//! shard.
//!
//! ## Commit protocol
//!
//! The transaction machinery is the unmodified LSA algorithm
//! ([`crate::lsa::Txn`]); sharding changes *where commit timestamps come
//! from*, not how snapshots are built:
//!
//! * **Single-shard transactions** (the common case in partitioned
//!   workloads) arbitrate their commit timestamp on the one shard they
//!   touched — shard-local arbitration, nothing else pays for it.
//! * **Cross-shard transactions** escalate to a two-phase protocol driven by
//!   the [`lsa_time::TouchSet`] the runtime fills as objects are opened:
//!   the composite clock acquires a commit timestamp from *every* touched
//!   shard in ascending order, chaining each result into the next
//!   acquisition's floor, so the final timestamp dominates all per-shard
//!   acquisitions and every touched shard's frontier has been pushed above
//!   it. The read set (spanning all touched shards) is then validated at
//!   that single commit time, and the writes publish atomically through the
//!   existing status-word commit — one CAS decides every shard's
//!   speculative version at once, so no reader can observe a cross-shard
//!   commit half-applied.
//!
//! **What carries the soundness argument.** All shards share one *time
//! domain* (see `lsa_time::sharded` for why fully independent per-shard
//! counters would be unsound for LSA's forward validity claims), and it is
//! this single-domain property — every commit timestamp strictly exceeds
//! everything previously readable, on any shard — that [`ShardedStm`]'s
//! opacity rests on; it inherits LSA's argument verbatim. The per-shard
//! acquisitions are *structure*, not the proof: they route arbitration
//! state (block reservations, NUMA line ownership) per shard and push the
//! touched shards' frontiers, but a commit timestamp arbitrated on any one
//! shard's clock would already be sound. This matters on the helping path:
//! a stalled committer's timestamp may be installed by a helper whose own
//! clock arbitrates over the *helper's* touched shards (Algorithm 2 lines
//! 41–42 race), which is sound precisely because the domain is shared — a
//! design that moved to genuinely per-shard frontiers would first have to
//! propagate the writer's shard set to helpers (see the ROADMAP item).
//!
//! Cross-shard commits are counted in
//! [`crate::stats::TxnStats::cross_shard_commits`] and surface in the
//! harness matrix as `xshard/commit`.

use crate::alloc::BlockAlloc;
use crate::cm::{ContentionManager, Polite};
use crate::config::StmConfig;
use crate::error::{Abort, TxResult};
use crate::lsa::Txn;
use crate::object::{TObject, TVar};
use crate::reclaim::{ReclaimDomain, ReclaimStats, SnapshotRegistry, SnapshotSlot};
use crate::stats::TxnStats;
use crate::stm::{after_failed_attempt, begin_attempt, next_instance};
use lsa_obs::trace::{self, EventKind};
use lsa_time::sharded::{ShardedClock, ShardedTimeBase, TouchSet};
use lsa_time::{ThreadClock, TimeBase, Timestamp};
use std::sync::Arc;

/// Bits of an object id reserved for the home shard (supports
/// [`lsa_time::sharded::MAX_SHARDS`] = 64 shards).
const SHARD_BITS: u32 = 6;
/// Bits for the per-shard object sequence.
const SEQ_BITS: u32 = 34;

/// The home shard encoded in a [`ShardedStm`] object id.
#[inline]
pub fn shard_of_id(id: u64) -> usize {
    ((id >> SEQ_BITS) & ((1 << SHARD_BITS) - 1)) as usize
}

struct ShardedInner<B: TimeBase> {
    tb: ShardedTimeBase<B>,
    cfg: StmConfig,
    cm: Box<dyn ContentionManager>,
    instance: u32,
    /// Round-robin routing cursor (thread-cached blocks of one full rotation
    /// each, so a single thread's consecutive allocations still cover every
    /// shard once per rotation).
    route: BlockAlloc,
    /// Per-shard object-id sequences — the sharded replacement for the
    /// global `next_obj` line.
    shard_seq: Vec<BlockAlloc>,
    next_handle: BlockAlloc,
    birth_counter: BlockAlloc,
    /// One snapshot registry for the whole runtime: a transaction has a
    /// single snapshot lower bound no matter how many shards it touches.
    registry: Arc<SnapshotRegistry<B::Ts>>,
    /// Per-shard reclamation domains (watermark cache + version arena), all
    /// fed by the shared registry. Fold-time watermark reads stay
    /// shard-local; the advance scans the registry once and installs the
    /// result into every shard.
    reclaim: Vec<Arc<ReclaimDomain<B::Ts>>>,
}

/// The sharded LSA software transactional memory runtime.
pub struct ShardedStm<B: TimeBase> {
    inner: Arc<ShardedInner<B>>,
}

impl<B: TimeBase> Clone for ShardedStm<B> {
    fn clone(&self) -> Self {
        ShardedStm {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<B: TimeBase> ShardedStm<B> {
    /// Runtime with `shards` object shards on `tb`, the default
    /// configuration and the [`Polite`] contention manager.
    ///
    /// # Panics
    /// Panics if `shards` is outside `1..=64`, or if `tb`'s advertised
    /// guarantees do not survive sharded composition (non-unique block
    /// domains, non-commit-monotonic arbitration) — see
    /// [`ShardedTimeBase::new`].
    pub fn new(tb: B, shards: usize) -> Self {
        Self::with_cm(tb, shards, StmConfig::default(), Polite::default())
    }

    /// Runtime with a custom configuration.
    pub fn with_config(tb: B, shards: usize, cfg: StmConfig) -> Self {
        Self::with_cm(tb, shards, cfg, Polite::default())
    }

    /// Runtime with custom configuration and contention manager. The
    /// composite time base performs the capability checks (LSA's
    /// commit-monotonicity requirement included — the composite refuses
    /// non-monotonic bases for its own composition reasons, which subsumes
    /// the engine's).
    pub fn with_cm(tb: B, shards: usize, cfg: StmConfig, cm: impl ContentionManager) -> Self {
        let tb = ShardedTimeBase::new(tb, shards);
        let registry = Arc::new(SnapshotRegistry::new());
        let reclaim = (0..shards)
            .map(|_| Arc::new(ReclaimDomain::new(Arc::clone(&registry))))
            .collect();
        ShardedStm {
            inner: Arc::new(ShardedInner {
                cfg,
                cm: Box::new(cm),
                instance: next_instance(),
                route: BlockAlloc::new(0, shards as u64),
                shard_seq: (0..shards).map(|_| BlockAlloc::new(1, 64)).collect(),
                next_handle: BlockAlloc::new(1, 8),
                birth_counter: BlockAlloc::new(1, 16),
                registry,
                reclaim,
                tb,
            }),
        }
    }

    /// Point-in-time snapshot of the version-store gauges summed across all
    /// shard domains (watermark lag and advance count report the maximum —
    /// they are per-domain gauges, not additive).
    pub fn reclaim_stats(&self) -> ReclaimStats {
        let mut total = ReclaimStats::default();
        for dom in &self.inner.reclaim {
            let s = dom.stats();
            total.versions_live += s.versions_live;
            total.versions_retired += s.versions_retired;
            total.versions_reclaimed += s.versions_reclaimed;
            total.versions_pooled += s.versions_pooled;
            total.versions_recycled += s.versions_recycled;
            total.arena_bytes += s.arena_bytes;
            total.watermark_lag = total.watermark_lag.max(s.watermark_lag);
            total.advances = total.advances.max(s.advances);
        }
        total
    }

    /// Force a watermark advance on every shard and drop the calling
    /// thread's pooled arena nodes — leak-accounting hook for tests and
    /// teardown (see [`crate::stm::Stm::reclaim_quiesce`]).
    #[doc(hidden)]
    pub fn reclaim_quiesce(&self) {
        let mut clock = self.inner.tb.register_thread();
        let now = clock.get_time();
        if let Some(wm) = self.inner.registry.min_active_or(now) {
            for dom in &self.inner.reclaim {
                dom.install(wm, now);
            }
        }
        for dom in &self.inner.reclaim {
            dom.flush_local();
        }
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &StmConfig {
        &self.inner.cfg
    }

    /// The composite time base.
    pub fn time_base(&self) -> &ShardedTimeBase<B> {
        &self.inner.tb
    }

    /// Number of object shards.
    pub fn shard_count(&self) -> usize {
        self.inner.tb.shards()
    }

    /// Name of the contention-management policy in use.
    pub fn cm_name(&self) -> &'static str {
        self.inner.cm.name()
    }

    /// Create a transactional variable, routed round-robin across shards.
    pub fn new_tvar<T: Send + Sync + 'static>(&self, value: T) -> TVar<T, B::Ts> {
        let shard = (self.inner.route.alloc() % self.shard_count() as u64) as usize;
        self.new_tvar_on(shard, value)
    }

    /// Create a transactional variable on a specific shard — explicit
    /// placement for partitioned workloads that want their working set
    /// shard-local (Helenos-style: partitioned data, occasional
    /// cross-partition transactions).
    ///
    /// # Panics
    /// Panics if `shard >= self.shard_count()`.
    pub fn new_tvar_on<T: Send + Sync + 'static>(&self, shard: usize, value: T) -> TVar<T, B::Ts> {
        assert!(
            shard < self.shard_count(),
            "shard {shard} out of range (have {})",
            self.shard_count()
        );
        let seq = self.inner.shard_seq[shard].alloc();
        debug_assert!(seq < 1 << SEQ_BITS, "per-shard id space exhausted");
        let id = ((self.inner.instance as u64) << (SHARD_BITS + SEQ_BITS))
            | ((shard as u64) << SEQ_BITS)
            | seq;
        TVar::from_object(TObject::with_reclaim(
            id,
            value,
            <B::Ts as Timestamp>::origin(),
            self.inner.cfg.max_versions,
            Arc::clone(&self.inner.reclaim[shard]),
            self.inner.cfg.watermark_pruning,
        ))
    }

    /// Home shard of a variable created by this runtime.
    pub fn shard_of<T: Send + Sync + 'static>(&self, var: &TVar<T, B::Ts>) -> usize {
        shard_of_id(var.id())
    }

    /// Register the calling thread: allocates its per-shard clocks and stats.
    pub fn register(&self) -> ShardedHandle<B> {
        let handle_id = self.inner.next_handle.alloc();
        let clock = self.inner.tb.register_thread();
        let touch = clock.touch_set();
        ShardedHandle {
            slot: self.inner.registry.register(),
            stm: self.clone(),
            handle_id,
            clock,
            touch,
            stats: TxnStats::default(),
            txn_seq: 0,
            last_commit_time: None,
            commits_since_advance: 0,
        }
    }
}

/// A registered thread's gateway to running sharded transactions.
pub struct ShardedHandle<B: TimeBase> {
    stm: ShardedStm<B>,
    handle_id: u64,
    clock: ShardedClock<B>,
    /// Shard-selection mask shared with `clock`: filled as the transaction
    /// opens objects, consumed by the commit arbitration.
    touch: TouchSet,
    stats: TxnStats,
    txn_seq: u64,
    last_commit_time: Option<B::Ts>,
    /// This thread's snapshot registration (see [`crate::reclaim`]).
    slot: Arc<SnapshotSlot<B::Ts>>,
    /// Commits since this thread last advanced the watermark.
    commits_since_advance: u64,
}

impl<B: TimeBase> Drop for ShardedHandle<B> {
    fn drop(&mut self) {
        // A dead handle must not freeze the watermark.
        self.slot.close();
    }
}

impl<B: TimeBase> ShardedHandle<B> {
    /// The owning runtime.
    pub fn stm(&self) -> &ShardedStm<B> {
        &self.stm
    }

    /// Statistics accumulated by this thread so far.
    pub fn stats(&self) -> &TxnStats {
        &self.stats
    }

    /// Take (and reset) the accumulated statistics.
    pub fn take_stats(&mut self) -> TxnStats {
        std::mem::take(&mut self.stats)
    }

    /// Commit time of this thread's most recent committed update
    /// transaction (see [`crate::stm::ThreadHandle::last_commit_time`]).
    pub fn last_commit_time(&self) -> Option<B::Ts> {
        self.last_commit_time
    }

    fn next_txn_id(&mut self) -> u64 {
        self.txn_seq += 1;
        (self.handle_id << 40) | (self.txn_seq & ((1 << 40) - 1))
    }

    /// Amortized watermark maintenance (see
    /// `crate::stm::ThreadHandle::maybe_advance_watermark`): one registry
    /// scan installed into *every* shard's domain, so shard-local fold-time
    /// watermark reads never converge on a shared line.
    fn maybe_advance_watermark(&mut self) {
        self.commits_since_advance += 1;
        if self.commits_since_advance >= self.stm.inner.cfg.wm_advance_interval {
            self.commits_since_advance = 0;
            let now = self.clock.get_time();
            if let Some(wm) = self.stm.inner.registry.min_active_or(now) {
                for dom in &self.stm.inner.reclaim {
                    dom.install(wm, now);
                }
                self.stats.wm_advances += 1;
            }
        }
    }

    /// Run `body` as a transaction, retrying on abort until it commits
    /// (see [`crate::stm::ThreadHandle::atomically`] for the contract).
    /// Single-shard bodies commit with shard-local arbitration; bodies that
    /// touch several shards escalate to the cross-shard protocol described
    /// in the module docs.
    pub fn atomically<R>(
        &mut self,
        mut body: impl FnMut(&mut ShardedTxn<'_, B>) -> TxResult<R>,
    ) -> R {
        let mut birth = 0u64;
        let mut carried_ops = 0u64;
        let mut retries = 0u32;
        // NOTE: mirrors `ThreadHandle::atomically` (crate::stm) plus shard
        // bookkeeping; keep the control flow in sync. The subtle per-attempt
        // pieces (CM continuity, isolation marking) are shared via
        // `begin_attempt` / `after_failed_attempt`.
        loop {
            let txn_id = self.next_txn_id();
            trace::txn_begin(txn_id);
            let inner = &self.stm.inner;
            let shared = begin_attempt(
                txn_id,
                &inner.cfg,
                inner.cm.as_ref(),
                &inner.birth_counter,
                &mut birth,
                carried_ops,
                retries,
            );

            // A fresh attempt selects its shards from scratch (and disarms
            // any leftover commit flag).
            self.touch.clear();
            let txn = Txn::begin(
                &inner.cfg,
                inner.cm.as_ref(),
                &mut self.clock,
                &mut self.stats,
                Arc::clone(&shared),
                Some(self.slot.as_ref()),
            );
            let mut stx = ShardedTxn {
                txn,
                touch: &self.touch,
            };
            match body(&mut stx) {
                Ok(value) => {
                    let spanned = stx.touch.count();
                    if stx.txn.is_update() {
                        // The commit acquisition (the next arbitration on
                        // this clock) must chain through every touched
                        // shard; helper/prelim arbitrations stay
                        // single-shard.
                        stx.touch.arm_commit();
                    }
                    match stx.txn.finish_commit() {
                        Ok(ct) => {
                            drop(stx);
                            trace::txn_event(EventKind::Commit, ct.is_none() as u8, txn_id);
                            if ct.is_some() {
                                self.last_commit_time = ct;
                                if spanned >= 2 {
                                    self.stats.cross_shard_commits += 1;
                                }
                            }
                            self.maybe_advance_watermark();
                            return value;
                        }
                        Err(a) => {
                            trace::txn_event(EventKind::Abort, a.reason.trace_class(), txn_id);
                        }
                    }
                }
                Err(abort) => {
                    stx.txn.ensure_aborted(abort.reason);
                    trace::txn_event(EventKind::Abort, abort.reason.trace_class(), txn_id);
                }
            }
            drop(stx);
            // Abort feedback goes to the clocks of the shards the failed
            // attempt touched (the mask is still set from the attempt).
            self.clock.note_abort();

            after_failed_attempt(
                &shared,
                &inner.cfg,
                &mut self.stats,
                &mut carried_ops,
                &mut retries,
            );
        }
    }
}

/// An executing sharded transaction: the LSA transaction plus shard
/// tracking. Every open marks the object's home shard in the shared
/// [`TouchSet`] *before* delegating, so helping and commit arbitration see
/// the shard as selected from the first access on.
pub struct ShardedTxn<'h, B: TimeBase> {
    txn: Txn<'h, ShardedTimeBase<B>>,
    touch: &'h TouchSet,
}

impl<B: TimeBase> ShardedTxn<'_, B> {
    /// Unique id of this transaction attempt.
    pub fn id(&self) -> u64 {
        self.txn.id()
    }

    /// Whether the transaction has written anything yet.
    pub fn is_update(&self) -> bool {
        self.txn.is_update()
    }

    /// Number of distinct shards this transaction has touched so far.
    pub fn shards_touched(&self) -> u32 {
        self.touch.count()
    }

    /// Abort deliberately; the retry loop will re-run the body.
    pub fn abort_retry(&mut self) -> Abort {
        self.txn.abort_retry()
    }

    /// Transactional read (see [`Txn::read`]).
    pub fn read<T: Send + Sync + 'static>(&mut self, var: &TVar<T, B::Ts>) -> TxResult<Arc<T>> {
        self.touch.touch(shard_of_id(var.id()));
        self.txn.read(var)
    }

    /// Transactional write (see [`Txn::write`]).
    pub fn write<T: Send + Sync + 'static>(
        &mut self,
        var: &TVar<T, B::Ts>,
        value: T,
    ) -> TxResult<()> {
        self.touch.touch(shard_of_id(var.id()));
        self.txn.write(var, value)
    }

    /// Read-modify-write convenience (see [`Txn::modify`]).
    pub fn modify<T: Send + Sync + 'static>(
        &mut self,
        var: &TVar<T, B::Ts>,
        f: impl FnOnce(&T) -> T,
    ) -> TxResult<()> {
        self.touch.touch(shard_of_id(var.id()));
        self.txn.modify(var, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_time::counter::{BlockCounter, SharedCounter};

    #[test]
    fn round_robin_routing_covers_all_shards() {
        let stm = ShardedStm::new(SharedCounter::new(), 4);
        let shards: Vec<usize> = (0..8).map(|i| stm.shard_of(&stm.new_tvar(i))).collect();
        // One full rotation per 4 allocations, single-threaded.
        assert_eq!(&shards[0..4], &[0, 1, 2, 3]);
        assert_eq!(&shards[4..8], &[0, 1, 2, 3]);
    }

    #[test]
    fn explicit_placement_and_id_encoding_agree() {
        let stm = ShardedStm::new(SharedCounter::new(), 8);
        for shard in 0..8 {
            let v = stm.new_tvar_on(shard, 0u8);
            assert_eq!(stm.shard_of(&v), shard);
            assert_eq!(shard_of_id(v.id()), shard);
        }
    }

    #[test]
    fn per_shard_id_spaces_are_disjoint() {
        let stm = ShardedStm::new(SharedCounter::new(), 8);
        let mut ids: Vec<u64> = (0..400).map(|i| stm.new_tvar(i).id()).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(n, ids.len(), "object ids must be unique across shards");
    }

    #[test]
    fn single_shard_txn_commits_without_cross_shard_escalation() {
        let stm = ShardedStm::new(SharedCounter::new(), 4);
        let x = stm.new_tvar_on(2, 1i64);
        let mut h = stm.register();
        let seen = h.atomically(|tx| {
            let v = tx.read(&x)?;
            tx.write(&x, *v + 41)?;
            tx.read(&x).map(|v| *v)
        });
        assert_eq!(seen, 42);
        assert_eq!(h.stats().commits, 1);
        assert_eq!(h.stats().cross_shard_commits, 0);
    }

    #[test]
    fn cross_shard_txn_is_counted_and_atomic() {
        let stm = ShardedStm::new(BlockCounter::new(8), 4);
        let a = stm.new_tvar_on(0, 100i64);
        let b = stm.new_tvar_on(3, 0i64);
        let mut h = stm.register();
        h.atomically(|tx| {
            assert_eq!(tx.shards_touched(), 0);
            let va = *tx.read(&a)?;
            assert_eq!(tx.shards_touched(), 1);
            let vb = *tx.read(&b)?;
            assert_eq!(tx.shards_touched(), 2);
            tx.write(&a, va - 30)?;
            tx.write(&b, vb + 30)
        });
        assert_eq!(h.stats().commits, 1);
        assert_eq!(h.stats().cross_shard_commits, 1);
        assert_eq!(*a.snapshot_latest(), 70);
        assert_eq!(*b.snapshot_latest(), 30);
    }

    #[test]
    fn read_only_cross_shard_txns_are_not_counted_as_commits() {
        let stm = ShardedStm::new(SharedCounter::new(), 2);
        let a = stm.new_tvar_on(0, 1u64);
        let b = stm.new_tvar_on(1, 2u64);
        let mut h = stm.register();
        let sum = h.atomically(|tx| Ok(*tx.read(&a)? + *tx.read(&b)?));
        assert_eq!(sum, 3);
        assert_eq!(h.stats().ro_commits, 1);
        assert_eq!(h.stats().cross_shard_commits, 0);
    }

    #[test]
    fn cross_shard_audits_always_see_consistent_totals() {
        // The torn-cut hazard the one-domain composite exists to prevent:
        // transfers span shards while auditors sum both — no audit may ever
        // observe a half-applied cross-shard commit.
        let stm = ShardedStm::new(BlockCounter::new(8), 4);
        let a = stm.new_tvar_on(0, 500i64);
        let b = stm.new_tvar_on(3, 500i64);
        std::thread::scope(|s| {
            {
                let stm = stm.clone();
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    let mut h = stm.register();
                    for i in 0..2_000i64 {
                        let amt = (i % 7) - 3;
                        h.atomically(|tx| {
                            let va = *tx.read(&a)?;
                            let vb = *tx.read(&b)?;
                            tx.write(&a, va - amt)?;
                            tx.write(&b, vb + amt)
                        });
                    }
                });
            }
            for _ in 0..2 {
                let stm = stm.clone();
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    let mut h = stm.register();
                    for _ in 0..2_000 {
                        let total = h.atomically(|tx| Ok(*tx.read(&a)? + *tx.read(&b)?));
                        assert_eq!(total, 1_000, "torn cross-shard snapshot");
                    }
                });
            }
        });
        assert_eq!(*a.snapshot_latest() + *b.snapshot_latest(), 1_000);
    }

    #[test]
    fn concurrent_cross_shard_increments_serialize() {
        let stm = ShardedStm::new(SharedCounter::new(), 8);
        let vars: Vec<TVar<u64, u64>> = (0..8).map(|_| stm.new_tvar(0u64)).collect();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let stm = stm.clone();
                let vars = vars.clone();
                s.spawn(move || {
                    let mut h = stm.register();
                    let mut seed = t + 1;
                    for _ in 0..500 {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let i = (seed >> 33) as usize % vars.len();
                        let j = (i + 1) % vars.len();
                        let (x, y) = (vars[i].clone(), vars[j].clone());
                        h.atomically(|tx| {
                            tx.modify(&x, |v| v + 1)?;
                            tx.modify(&y, |v| v + 1)
                        });
                    }
                });
            }
        });
        let total: u64 = vars.iter().map(|v| *v.snapshot_latest()).sum();
        assert_eq!(total, 4 * 500 * 2, "lost cross-shard updates");
    }

    #[test]
    #[should_panic(expected = "commit-monotonic")]
    fn sharded_stm_refuses_non_composable_bases() {
        let _ = ShardedStm::new(lsa_time::counter::Gv5Counter::new(), 4);
    }

    #[test]
    #[should_panic(expected = "shard 9 out of range")]
    fn explicit_placement_bounds_checked() {
        let stm = ShardedStm::new(SharedCounter::new(), 4);
        let _ = stm.new_tvar_on(9, 0u8);
    }
}
