//! Per-thread transaction statistics.
//!
//! Every [`crate::stm::ThreadHandle`] owns its own statistics, so recording
//! costs a handful of unshared increments (no cache-line ping-pong that could
//! pollute the time-base measurements). The harness merges per-thread stats
//! after a run.

use crate::error::AbortReason;
use std::fmt;

/// Counters accumulated by one thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Committed update transactions.
    pub commits: u64,
    /// Committed read-only transactions (no validation needed, Algorithm 2
    /// lines 36–37).
    pub ro_commits: u64,
    /// Aborts by reason, indexed like [`AbortReason::ALL`].
    pub aborts: [u64; AbortReason::ALL.len()],
    /// Object reads (`open` in read mode).
    pub reads: u64,
    /// Object writes (`open` in write mode).
    pub writes: u64,
    /// Validity-range extensions performed (Algorithm 3 lines 1–6).
    pub extensions: u64,
    /// Commits completed on behalf of *other* transactions (Algorithm 3
    /// line 13).
    pub helps: u64,
    /// Write-write conflicts submitted to the contention manager.
    pub conflicts: u64,
    /// Re-executions of transaction bodies after an abort.
    pub retries: u64,
    /// Read-set entries examined by commit-time validation (Algorithm 2
    /// lines 43–48) — the per-entry cost the time base is supposed to keep
    /// off the read path.
    pub validated_entries: u64,
    /// Commit timestamps adopted from a concurrent committer through the
    /// time base's arbitration (GV4 pass-on-failed-CAS, GV5 read-derived
    /// values) instead of being exclusively owned.
    pub shared_cts: u64,
    /// Committed update transactions that touched two or more object shards
    /// and escalated to the cross-shard commit protocol. Always zero on the
    /// unsharded [`crate::stm::Stm`] runtime.
    pub cross_shard_commits: u64,
    /// Watermark advances this thread performed (the lazy reclamation work
    /// amortized over its commits, see [`crate::reclaim`]).
    pub wm_advances: u64,
}

impl TxnStats {
    /// Record an abort with its reason.
    pub fn record_abort(&mut self, reason: AbortReason) {
        let idx = AbortReason::ALL
            .iter()
            .position(|r| *r == reason)
            .expect("reason in ALL");
        self.aborts[idx] += 1;
    }

    /// Total aborts across all reasons.
    pub fn total_aborts(&self) -> u64 {
        self.aborts.iter().sum()
    }

    /// Total commits (update + read-only).
    pub fn total_commits(&self) -> u64 {
        self.commits + self.ro_commits
    }

    /// Aborts per commit (∞-safe: returns 0 when nothing committed).
    pub fn abort_ratio(&self) -> f64 {
        let c = self.total_commits();
        if c == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / c as f64
        }
    }

    /// Merge another thread's counters into this one.
    pub fn merge(&mut self, other: &TxnStats) {
        self.commits += other.commits;
        self.ro_commits += other.ro_commits;
        for (a, b) in self.aborts.iter_mut().zip(other.aborts.iter()) {
            *a += b;
        }
        self.reads += other.reads;
        self.writes += other.writes;
        self.extensions += other.extensions;
        self.helps += other.helps;
        self.conflicts += other.conflicts;
        self.retries += other.retries;
        self.validated_entries += other.validated_entries;
        self.shared_cts += other.shared_cts;
        self.cross_shard_commits += other.cross_shard_commits;
        self.wm_advances += other.wm_advances;
    }

    /// Aborts recorded for one specific reason.
    pub fn aborts_for(&self, reason: AbortReason) -> u64 {
        let idx = AbortReason::ALL
            .iter()
            .position(|r| *r == reason)
            .expect("reason in ALL");
        self.aborts[idx]
    }
}

impl fmt::Display for TxnStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "commits={} (ro={}) aborts={} [",
            self.total_commits(),
            self.ro_commits,
            self.total_aborts()
        )?;
        for (i, reason) in AbortReason::ALL.iter().enumerate() {
            if self.aborts[i] > 0 {
                write!(f, " {}={}", reason.label(), self.aborts[i])?;
            }
        }
        write!(
            f,
            " ] reads={} writes={} ext={} helps={} conflicts={} retries={} \
             val-entries={} shared-cts={} xshard={} wm-adv={}",
            self.reads,
            self.writes,
            self.extensions,
            self.helps,
            self.conflicts,
            self.retries,
            self.validated_entries,
            self.shared_cts,
            self.cross_shard_commits,
            self.wm_advances
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query_aborts() {
        let mut s = TxnStats::default();
        s.record_abort(AbortReason::Validation);
        s.record_abort(AbortReason::Validation);
        s.record_abort(AbortReason::Killed);
        assert_eq!(s.aborts_for(AbortReason::Validation), 2);
        assert_eq!(s.aborts_for(AbortReason::Killed), 1);
        assert_eq!(s.total_aborts(), 3);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = TxnStats {
            commits: 2,
            reads: 10,
            ..Default::default()
        };
        a.record_abort(AbortReason::Snapshot);
        let mut b = TxnStats {
            commits: 3,
            ro_commits: 1,
            reads: 5,
            ..Default::default()
        };
        b.record_abort(AbortReason::Snapshot);
        b.record_abort(AbortReason::Killed);
        a.merge(&b);
        assert_eq!(a.commits, 5);
        assert_eq!(a.ro_commits, 1);
        assert_eq!(a.reads, 15);
        assert_eq!(a.aborts_for(AbortReason::Snapshot), 2);
        assert_eq!(a.total_aborts(), 3);
    }

    #[test]
    fn abort_ratio_handles_zero_commits() {
        let mut s = TxnStats::default();
        assert_eq!(s.abort_ratio(), 0.0);
        s.record_abort(AbortReason::Killed);
        assert_eq!(s.abort_ratio(), 0.0);
        s.commits = 2;
        assert_eq!(s.abort_ratio(), 0.5);
    }

    #[test]
    fn display_is_informative() {
        let mut s = TxnStats {
            commits: 1,
            ..Default::default()
        };
        s.record_abort(AbortReason::NoVersion);
        let txt = s.to_string();
        assert!(txt.contains("commits=1"));
        assert!(txt.contains("no-version=1"));
    }
}
