//! Transaction status word.
//!
//! The paper drives the whole commit protocol through compare-and-swap
//! transitions on `T.status` (Algorithm 2): entering the two-phase commit
//! (`active → committing`), finalizing (`committing → committed/aborted`),
//! and contention-manager kills (`active → aborted`). "Setting the
//! transaction's state atomically commits — or discards in case of an abort —
//! all object versions written by the transaction" (§2.3): object versions
//! installed by a writer are interpreted through this one atomic word.

use std::sync::atomic::{AtomicU8, Ordering};

/// Lifecycle states of a transaction (§2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TxnStatus {
    /// Executing its body.
    Active = 0,
    /// In the first phase of the two-phase commit: the commit time is being
    /// acquired and the read set validated. Other threads may *help* a
    /// transaction in this state (Algorithm 3 line 13).
    Committing = 1,
    /// Irrevocably committed: its speculative versions are logically part of
    /// the committed history.
    Committed = 2,
    /// Aborted: its speculative versions are logically discarded.
    Aborted = 3,
}

impl TxnStatus {
    fn from_u8(v: u8) -> TxnStatus {
        match v {
            0 => TxnStatus::Active,
            1 => TxnStatus::Committing,
            2 => TxnStatus::Committed,
            _ => TxnStatus::Aborted,
        }
    }

    /// Whether the transaction has reached a final state.
    pub fn is_final(self) -> bool {
        matches!(self, TxnStatus::Committed | TxnStatus::Aborted)
    }
}

/// An atomic [`TxnStatus`] cell.
///
/// All operations are `SeqCst`: the correctness argument of §2.4 requires the
/// `committing` transition to be globally visible before the commit timestamp
/// is acquired, and the paper explicitly assumes linearizable synchronization
/// instructions (§3.1). The status word is touched a constant number of times
/// per transaction, so the stronger ordering costs nothing measurable.
#[derive(Debug)]
pub struct AtomicStatus(AtomicU8);

impl AtomicStatus {
    /// A new cell in the [`TxnStatus::Active`] state.
    pub fn new() -> Self {
        AtomicStatus(AtomicU8::new(TxnStatus::Active as u8))
    }

    /// Current status.
    #[inline]
    pub fn load(&self) -> TxnStatus {
        TxnStatus::from_u8(self.0.load(Ordering::SeqCst))
    }

    /// The paper's `C&S(T.status, from, to)`: returns `true` on success.
    #[inline]
    pub fn transition(&self, from: TxnStatus, to: TxnStatus) -> bool {
        self.0
            .compare_exchange(from as u8, to as u8, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }
}

impl Default for AtomicStatus {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_active() {
        assert_eq!(AtomicStatus::new().load(), TxnStatus::Active);
    }

    #[test]
    fn transitions_follow_cas_semantics() {
        let s = AtomicStatus::new();
        assert!(s.transition(TxnStatus::Active, TxnStatus::Committing));
        assert_eq!(s.load(), TxnStatus::Committing);
        assert!(
            !s.transition(TxnStatus::Active, TxnStatus::Aborted),
            "stale from"
        );
        assert!(s.transition(TxnStatus::Committing, TxnStatus::Committed));
        assert!(s.load().is_final());
    }

    #[test]
    fn concurrent_finalizers_exactly_one_wins() {
        let s = AtomicStatus::new();
        assert!(s.transition(TxnStatus::Active, TxnStatus::Committing));
        let wins: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let s = &s;
                    scope.spawn(move || {
                        let to = if i % 2 == 0 {
                            TxnStatus::Committed
                        } else {
                            TxnStatus::Aborted
                        };
                        s.transition(TxnStatus::Committing, to) as usize
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(wins, 1, "exactly one finalizer succeeds");
        assert!(s.load().is_final());
    }

    #[test]
    fn final_states_are_sticky() {
        let s = AtomicStatus::new();
        s.transition(TxnStatus::Active, TxnStatus::Aborted);
        assert!(!s.transition(TxnStatus::Active, TxnStatus::Committing));
        assert!(!s.transition(TxnStatus::Committing, TxnStatus::Committed));
        assert_eq!(s.load(), TxnStatus::Aborted);
    }
}
