//! The LSA-RT runtime: object factory, thread registration, retry loop.
//!
//! An [`Stm`] owns the time base, the configuration and the contention
//! manager. Threads register once ([`Stm::register`]) to obtain a
//! [`ThreadHandle`] carrying their per-thread clock ([`lsa_time::ThreadClock`])
//! and statistics; [`ThreadHandle::atomically`] runs a transaction body with
//! automatic retry on abort:
//!
//! ```
//! use lsa_stm::stm::Stm;
//! use lsa_time::counter::SharedCounter;
//!
//! let stm = Stm::new(SharedCounter::new());
//! let account = stm.new_tvar(100i64);
//! let mut thread = stm.register();
//! thread.atomically(|tx| {
//!     let v = tx.read(&account)?;
//!     tx.write(&account, *v - 30)
//! });
//! assert_eq!(*account.snapshot_latest(), 70);
//! ```

use crate::alloc::BlockAlloc;
use crate::cm::{ContentionManager, Polite};
use crate::config::StmConfig;
use crate::error::TxResult;
use crate::lsa::Txn;
use crate::object::{TObject, TVar};
use crate::reclaim::{ReclaimDomain, ReclaimStats, SnapshotRegistry, SnapshotSlot};
use crate::stats::TxnStats;
use crate::txn_shared::TxnShared;
use lsa_obs::trace::{self, EventKind};
use lsa_time::{ThreadClock, TimeBase, Timestamp};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Process-wide instance counter so object ids never collide between
/// distinct [`Stm`] instances (ids key per-transaction hash maps). Shared
/// with [`crate::sharded::ShardedStm`], whose ids carry the same instance
/// prefix.
static STM_INSTANCES: AtomicU32 = AtomicU32::new(1);

/// Claim the next process-unique runtime instance number.
pub(crate) fn next_instance() -> u32 {
    STM_INSTANCES.fetch_add(1, Ordering::Relaxed)
}

/// Ids per thread-local refill of the object-id sequence (object creation
/// can sit inside transactions — linked-structure inserts — so it deserves
/// the full amortization).
const OBJ_ID_BLOCK: u64 = 64;
/// Handle ids are claimed once per registered thread; a small block still
/// removes the shared line from registration storms.
const HANDLE_ID_BLOCK: u64 = 8;
/// Birth numbers feed contention-manager priority; small blocks bound the
/// cross-thread unfairness of the block-granular birth order (see
/// [`crate::alloc`]).
const BIRTH_BLOCK: u64 = 16;

/// Per-attempt shared-descriptor setup common to the unsharded and sharded
/// retry loops: snapshot-isolation marking and contention-manager
/// continuity across retries of one logical transaction (op carry-over,
/// retry seeding, lazy birth allocation). Keeping this in one place means a
/// CM-continuity or isolation-mode fix cannot silently diverge between the
/// two runtimes' loops.
pub(crate) fn begin_attempt<Ts: Timestamp>(
    txn_id: u64,
    cfg: &StmConfig,
    cm: &dyn ContentionManager,
    birth_counter: &BlockAlloc,
    birth: &mut u64,
    carried_ops: u64,
    retries: u32,
) -> Arc<TxnShared<Ts>> {
    let shared = Arc::new(TxnShared::new(txn_id));
    if cfg.snapshot_isolation {
        shared.mark_snapshot_isolation();
    }
    shared.cm().seed(carried_ops, retries);
    if cm.needs_birth() {
        if *birth == 0 {
            *birth = birth_counter.alloc();
        }
        shared.cm().set_birth(*birth);
    }
    shared
}

/// Post-abort bookkeeping shared by the retry loops: carry the attempt's
/// contention-manager ops into the next attempt, count the retry, and
/// yield under heavy oversubscription (livelock hygiene).
pub(crate) fn after_failed_attempt<Ts: Timestamp>(
    shared: &TxnShared<Ts>,
    cfg: &StmConfig,
    stats: &mut TxnStats,
    carried_ops: &mut u64,
    retries: &mut u32,
) {
    *carried_ops = shared.cm().ops();
    *retries = retries.saturating_add(1);
    stats.retries += 1;
    if u64::from(*retries) > cfg.yield_after_retries {
        std::thread::yield_now();
    }
}

struct StmInner<B: TimeBase> {
    tb: B,
    cfg: StmConfig,
    cm: Box<dyn ContentionManager>,
    instance: u32,
    /// Object/handle/birth sequences, block-allocated per thread so none of
    /// them is a contended RMW line ([`crate::alloc::BlockAlloc`]). The
    /// birth sequence exists for contention managers that require one
    /// ([`ContentionManager::needs_birth`]); untouched otherwise so the
    /// default configuration has no shared counter besides the time base.
    next_obj: BlockAlloc,
    next_handle: BlockAlloc,
    birth_counter: BlockAlloc,
    /// Version reclamation: the snapshot registry, the cached watermark and
    /// the version arena ([`crate::reclaim`]).
    reclaim: Arc<ReclaimDomain<B::Ts>>,
}

/// The LSA-RT software transactional memory runtime.
pub struct Stm<B: TimeBase> {
    inner: Arc<StmInner<B>>,
}

impl<B: TimeBase> Clone for Stm<B> {
    fn clone(&self) -> Self {
        Stm {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<B: TimeBase> Stm<B> {
    /// Runtime with the default configuration and the [`Polite`] contention
    /// manager.
    pub fn new(tb: B) -> Self {
        Self::with_cm(tb, StmConfig::default(), Polite::default())
    }

    /// Runtime with a custom configuration.
    pub fn with_config(tb: B, cfg: StmConfig) -> Self {
        Self::with_cm(tb, cfg, Polite::default())
    }

    /// Runtime with custom configuration and contention manager.
    ///
    /// # Panics
    /// Panics if the time base is not commit-monotonic
    /// ([`lsa_time::TimeBaseInfo::commit_monotonic`]). LSA's `getPrelimUB`
    /// fallback issues forward validity claims ("this version is valid at
    /// least until `t`") that are only sound when every later commit
    /// timestamp strictly exceeds every previously readable clock value —
    /// bases like GV5, whose commit times run ahead of the readable
    /// counter, or GV4, whose losers commit at a value the winner already
    /// made readable, would let a later commit undercut an issued claim.
    pub fn with_cm(tb: B, cfg: StmConfig, cm: impl ContentionManager) -> Self {
        assert!(
            tb.info().commit_monotonic,
            "LSA requires a commit-monotonic time base; {} hands out commit \
             timestamps that can lag other threads' readings (use it with \
             an engine that revalidates reads, e.g. TL2)",
            tb.name()
        );
        Stm {
            inner: Arc::new(StmInner {
                tb,
                cfg,
                cm: Box::new(cm),
                instance: next_instance(),
                next_obj: BlockAlloc::new(1, OBJ_ID_BLOCK),
                next_handle: BlockAlloc::new(1, HANDLE_ID_BLOCK),
                birth_counter: BlockAlloc::new(1, BIRTH_BLOCK),
                reclaim: Arc::new(ReclaimDomain::new(Arc::new(SnapshotRegistry::new()))),
            }),
        }
    }

    /// Point-in-time snapshot of the version-store gauges: live/retired/
    /// reclaimed versions, arena bytes, watermark lag (DESIGN.md §11).
    pub fn reclaim_stats(&self) -> ReclaimStats {
        self.inner.reclaim.stats()
    }

    /// Force a watermark advance and drop the calling thread's pooled arena
    /// nodes — leak-accounting hook for tests and teardown: after all
    /// threads quiesce, `versions_retired == versions_reclaimed`.
    #[doc(hidden)]
    pub fn reclaim_quiesce(&self) {
        let mut clock = self.inner.tb.register_thread();
        self.inner.reclaim.advance(clock.get_time());
        self.inner.reclaim.flush_local();
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &StmConfig {
        &self.inner.cfg
    }

    /// The underlying time base.
    pub fn time_base(&self) -> &B {
        &self.inner.tb
    }

    /// Name of the contention-management policy in use.
    pub fn cm_name(&self) -> &'static str {
        self.inner.cm.name()
    }

    /// Create a transactional variable holding `value`. The initial version
    /// is valid from [`Timestamp::origin`], i.e. visible to every snapshot.
    pub fn new_tvar<T: Send + Sync + 'static>(&self, value: T) -> TVar<T, B::Ts> {
        let seq = self.inner.next_obj.alloc();
        let id = ((self.inner.instance as u64) << 40) | seq;
        TVar::from_object(TObject::with_reclaim(
            id,
            value,
            <B::Ts as Timestamp>::origin(),
            self.inner.cfg.max_versions,
            Arc::clone(&self.inner.reclaim),
            self.inner.cfg.watermark_pruning,
        ))
    }

    /// Register the calling thread: allocates its clock handle, stats and
    /// snapshot-registration slot.
    pub fn register(&self) -> ThreadHandle<B> {
        let handle_id = self.inner.next_handle.alloc();
        ThreadHandle {
            slot: self.inner.reclaim.registry().register(),
            stm: self.clone(),
            handle_id,
            clock: self.inner.tb.register_thread(),
            stats: TxnStats::default(),
            txn_seq: 0,
            last_commit_time: None,
            commits_since_advance: 0,
        }
    }
}

/// A registered thread's gateway to running transactions.
pub struct ThreadHandle<B: TimeBase> {
    stm: Stm<B>,
    handle_id: u64,
    clock: B::Clock,
    stats: TxnStats,
    txn_seq: u64,
    last_commit_time: Option<B::Ts>,
    /// This thread's snapshot-registration slot ([`crate::reclaim`]).
    slot: Arc<SnapshotSlot<B::Ts>>,
    /// Commits since the last watermark advance (the lazy amortization).
    commits_since_advance: u64,
}

impl<B: TimeBase> Drop for ThreadHandle<B> {
    fn drop(&mut self) {
        // Free the slot for reuse and make sure a dropped handle can never
        // hold the watermark back.
        self.slot.close();
    }
}

impl<B: TimeBase> ThreadHandle<B> {
    /// The owning runtime.
    pub fn stm(&self) -> &Stm<B> {
        &self.stm
    }

    /// Statistics accumulated by this thread so far.
    pub fn stats(&self) -> &TxnStats {
        &self.stats
    }

    /// Take (and reset) the accumulated statistics.
    pub fn take_stats(&mut self) -> TxnStats {
        std::mem::take(&mut self.stats)
    }

    /// Commit time of this thread's most recent committed *update*
    /// transaction (`None` before the first one, unchanged by read-only
    /// commits). The offline serializability checker in the integration
    /// tests orders the committed history by these values.
    pub fn last_commit_time(&self) -> Option<B::Ts> {
        self.last_commit_time
    }

    fn next_txn_id(&mut self) -> u64 {
        self.txn_seq += 1;
        (self.handle_id << 40) | (self.txn_seq & ((1 << 40) - 1))
    }

    /// Amortized watermark maintenance: every `wm_advance_interval`
    /// completed transactions this thread rescans the snapshot registry and
    /// installs a fresh watermark — the lazy advance of DESIGN.md §11, no
    /// dedicated reclamation thread.
    fn maybe_advance_watermark(&mut self) {
        self.commits_since_advance += 1;
        if self.commits_since_advance >= self.stm.inner.cfg.wm_advance_interval {
            self.commits_since_advance = 0;
            let now = self.clock.get_time();
            self.stm.inner.reclaim.advance(now);
            self.stats.wm_advances += 1;
        }
    }

    /// Run `body` as a transaction, retrying on abort until it commits;
    /// returns the body's result. The body must perform all shared accesses
    /// through the provided [`Txn`] and propagate [`crate::error::Abort`]
    /// errors with `?` — the loop re-executes it from scratch after an abort
    /// (any side effects outside the STM must therefore be idempotent).
    pub fn atomically<R>(&mut self, mut body: impl FnMut(&mut Txn<'_, B>) -> TxResult<R>) -> R {
        let mut birth = 0u64;
        let mut carried_ops = 0u64;
        let mut retries = 0u32;
        // NOTE: this retry shell is mirrored by `ShardedHandle::atomically`
        // (crate::sharded) with shard bookkeeping added; control-flow
        // changes here belong there too. The subtle per-attempt pieces
        // (CM continuity, isolation marking) are shared via `begin_attempt`
        // / `after_failed_attempt`.
        loop {
            let txn_id = self.next_txn_id();
            trace::txn_begin(txn_id);
            let inner = &self.stm.inner;
            let shared = begin_attempt(
                txn_id,
                &inner.cfg,
                inner.cm.as_ref(),
                &inner.birth_counter,
                &mut birth,
                carried_ops,
                retries,
            );

            let mut txn = Txn::begin(
                &inner.cfg,
                inner.cm.as_ref(),
                &mut self.clock,
                &mut self.stats,
                Arc::clone(&shared),
                Some(self.slot.as_ref()),
            );
            match body(&mut txn) {
                Ok(value) => match txn.finish_commit() {
                    Ok(ct) => {
                        drop(txn);
                        trace::txn_event(EventKind::Commit, ct.is_none() as u8, txn_id);
                        if ct.is_some() {
                            self.last_commit_time = ct;
                        }
                        self.maybe_advance_watermark();
                        return value;
                    }
                    Err(a) => {
                        trace::txn_event(EventKind::Abort, a.reason.trace_class(), txn_id);
                    }
                },
                Err(abort) => {
                    txn.ensure_aborted(abort.reason);
                    trace::txn_event(EventKind::Abort, abort.reason.trace_class(), txn_id);
                }
            }
            drop(txn);
            // Abort feedback to the time base: GV5-style clocks advance on
            // aborts so the retry observes a fresh enough time to reach the
            // versions that made this attempt fail.
            self.clock.note_abort();

            after_failed_attempt(
                &shared,
                &inner.cfg,
                &mut self.stats,
                &mut carried_ops,
                &mut retries,
            );
        }
    }

    /// Like [`ThreadHandle::atomically`] but gives up after `max_attempts`
    /// aborts, returning the last abort. Useful for tests and bounded-effort
    /// callers.
    pub fn try_atomically<R>(
        &mut self,
        max_attempts: u32,
        mut body: impl FnMut(&mut Txn<'_, B>) -> TxResult<R>,
    ) -> TxResult<R> {
        assert!(max_attempts >= 1);
        let mut last = None;
        for _ in 0..max_attempts {
            let txn_id = self.next_txn_id();
            trace::txn_begin(txn_id);
            let shared = Arc::new(TxnShared::new(txn_id));
            if self.stm.inner.cfg.snapshot_isolation {
                shared.mark_snapshot_isolation();
            }
            let inner = &self.stm.inner;
            let mut txn = Txn::begin(
                &inner.cfg,
                inner.cm.as_ref(),
                &mut self.clock,
                &mut self.stats,
                Arc::clone(&shared),
                Some(self.slot.as_ref()),
            );
            match body(&mut txn) {
                Ok(value) => match txn.finish_commit() {
                    Ok(ct) => {
                        drop(txn);
                        trace::txn_event(EventKind::Commit, ct.is_none() as u8, txn_id);
                        if ct.is_some() {
                            self.last_commit_time = ct;
                        }
                        self.maybe_advance_watermark();
                        return Ok(value);
                    }
                    Err(a) => {
                        trace::txn_event(EventKind::Abort, a.reason.trace_class(), txn_id);
                        last = Some(a);
                    }
                },
                Err(a) => {
                    txn.ensure_aborted(a.reason);
                    trace::txn_event(EventKind::Abort, a.reason.trace_class(), txn_id);
                    last = Some(a);
                }
            }
            drop(txn);
            self.clock.note_abort();
            self.stats.retries += 1;
        }
        Err(last.expect("max_attempts >= 1"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::AbortReason;
    use lsa_time::counter::SharedCounter;
    use lsa_time::hardware::HardwareClock;
    use lsa_time::perfect::PerfectClock;

    #[test]
    fn single_thread_read_write_roundtrip() {
        let stm = Stm::new(SharedCounter::new());
        let x = stm.new_tvar(1i64);
        let mut h = stm.register();
        let seen = h.atomically(|tx| {
            let v = tx.read(&x)?;
            tx.write(&x, *v + 41)?;
            tx.read(&x).map(|v| *v)
        });
        assert_eq!(seen, 42, "read-own-write");
        assert_eq!(*x.snapshot_latest(), 42);
        assert_eq!(h.stats().commits, 1);
        assert_eq!(h.stats().total_aborts(), 0);
    }

    #[test]
    fn read_only_txn_commits_without_validation() {
        let stm = Stm::new(SharedCounter::new());
        let x = stm.new_tvar(7i64);
        let mut h = stm.register();
        let v = h.atomically(|tx| tx.read(&x).map(|v| *v));
        assert_eq!(v, 7);
        assert_eq!(h.stats().ro_commits, 1);
        assert_eq!(h.stats().commits, 0);
    }

    #[test]
    fn modify_accumulates_within_txn() {
        let stm = Stm::new(PerfectClock::new());
        let x = stm.new_tvar(0i64);
        let mut h = stm.register();
        h.atomically(|tx| {
            for _ in 0..5 {
                tx.modify(&x, |v| v + 1)?;
            }
            Ok(())
        });
        assert_eq!(*x.snapshot_latest(), 5);
    }

    #[test]
    fn sequential_txns_see_each_other() {
        let stm = Stm::new(HardwareClock::mmtimer_free());
        let x = stm.new_tvar(0i64);
        let mut h = stm.register();
        for i in 1..=10 {
            h.atomically(|tx| tx.modify(&x, |v| v + 1));
            assert_eq!(*x.snapshot_latest(), i);
        }
        assert_eq!(h.stats().commits, 10);
    }

    #[test]
    fn explicit_retry_reruns_body() {
        let stm = Stm::new(SharedCounter::new());
        let x = stm.new_tvar(0i64);
        let mut h = stm.register();
        let mut attempts = 0;
        h.atomically(|tx| {
            attempts += 1;
            if attempts < 3 {
                return Err(tx.abort_retry());
            }
            tx.write(&x, attempts)
        });
        assert_eq!(attempts, 3);
        assert_eq!(*x.snapshot_latest(), 3);
        assert_eq!(h.stats().aborts_for(AbortReason::Explicit), 2);
        assert_eq!(h.stats().retries, 2);
    }

    #[test]
    fn try_atomically_bounds_attempts() {
        let stm = Stm::new(SharedCounter::new());
        let mut h = stm.register();
        let r: TxResult<()> = h.try_atomically(3, |tx| Err(tx.abort_retry()));
        assert!(r.is_err());
        assert_eq!(h.stats().aborts_for(AbortReason::Explicit), 3);
    }

    #[test]
    #[should_panic(expected = "commit-monotonic")]
    fn lsa_refuses_non_commit_monotonic_bases() {
        // GV5 commit times can lag other threads' readings, which breaks
        // the soundness of LSA's getPrelimUB fallback claims — the runtime
        // must reject the combination loudly instead of corrupting data.
        let _ = Stm::new(lsa_time::counter::Gv5Counter::new());
    }

    #[test]
    #[should_panic(expected = "commit-monotonic")]
    fn lsa_refuses_gv4() {
        // A GV4 loser adopts a counter value the winner already made
        // readable — a commit at a previously readable reading, which
        // would let an adopted commit undercut LSA's getPrelimUB forward
        // claims ("valid at least until t"). Rejected like GV5.
        let _ = Stm::new(lsa_time::counter::Gv4Counter::new());
    }

    #[test]
    fn lsa_runs_on_the_block_arbitration_base() {
        // BlockCounter stays commit-monotonic (lost confirmations are
        // discarded and re-arbitrated, never adopted), so LSA accepts it —
        // unlike the adopting/lazy GV4 and GV5 variants.
        use lsa_time::counter::BlockCounter;
        let stm = Stm::new(BlockCounter::new(8));
        let x = stm.new_tvar(0u64);
        let mut h = stm.register();
        for _ in 0..10 {
            h.atomically(|tx| tx.modify(&x, |v| v + 1));
        }
        assert_eq!(*x.snapshot_latest(), 10);
        assert_eq!(h.stats().commits, 10);
    }

    #[test]
    fn two_stms_have_disjoint_object_ids() {
        let a = Stm::new(SharedCounter::new());
        let b = Stm::new(SharedCounter::new());
        let xa = a.new_tvar(0u8);
        let xb = b.new_tvar(0u8);
        assert_ne!(xa.id(), xb.id());
    }

    #[test]
    fn heterogeneous_payloads_in_one_txn() {
        let stm = Stm::new(SharedCounter::new());
        let n = stm.new_tvar(3usize);
        let s = stm.new_tvar(String::from("abc"));
        let v = stm.new_tvar(vec![1u8, 2, 3]);
        let mut h = stm.register();
        let total = h.atomically(|tx| {
            let a = *tx.read(&n)?;
            let b = tx.read(&s)?.len();
            let c = tx.read(&v)?.len();
            tx.write(&n, a + b + c)?;
            Ok(a + b + c)
        });
        assert_eq!(total, 9);
        assert_eq!(*n.snapshot_latest(), 9);
    }
}
