//! The shared transaction descriptor.
//!
//! Other threads interact with a transaction through this descriptor: they
//! observe and CAS its status (contention-manager kills, Algorithm 2
//! lines 53–59), read its commit time (`getPrelimUB`, Algorithm 3), race to
//! *set* the commit time and *help* the commit complete (Algorithm 3
//! line 13, §2.3: "another thread can help the transaction to commit or force
//! it to abort").
//!
//! The paper's `C&S(T.CT, 0, t)` — first writer wins, everyone agrees on the
//! result — is rendered as a [`OnceLock`]: `set` is the CAS, `get` the read.

use crate::cm::CmState;
use crate::object::AnyObject;
use crate::status::{AtomicStatus, TxnStatus};
use crate::version::VersionMeta;
use lsa_time::Timestamp;
use parking_lot::Mutex;
use std::sync::{Arc, OnceLock};

/// One read-set element as published for helpers: the object (for its
/// current-writer information) and the specific version meta that was read.
#[derive(Clone)]
pub struct CtxEntry<Ts: Timestamp> {
    /// The object the version belongs to.
    pub obj: Arc<dyn AnyObject<Ts>>,
    /// The version's shared range metadata.
    pub meta: Arc<VersionMeta<Ts>>,
}

/// The read-set snapshot a committing transaction publishes so that helpers
/// can run the commit-time validation loop (Algorithm 2 lines 43–48) on its
/// behalf.
pub struct CommitCtx<Ts: Timestamp> {
    /// All `(object, version)` pairs in `T.O`, including the transaction's
    /// own speculative versions (whose `getPrelimUB` is the self-case of
    /// Algorithm 3 line 27).
    pub entries: Vec<CtxEntry<Ts>>,
}

/// Shared descriptor of one transaction attempt.
pub struct TxnShared<Ts: Timestamp> {
    id: u64,
    status: AtomicStatus,
    ct: OnceLock<Ts>,
    cm: CmState,
    ctx: Mutex<Option<Arc<CommitCtx<Ts>>>>,
    /// Whether this transaction commits under snapshot isolation (helpers
    /// must skip read validation for it, like the owner does).
    si: std::sync::atomic::AtomicBool,
}

impl<Ts: Timestamp> TxnShared<Ts> {
    /// Fresh descriptor in the `Active` state (serializable mode).
    pub fn new(id: u64) -> Self {
        TxnShared {
            id,
            status: AtomicStatus::new(),
            ct: OnceLock::new(),
            cm: CmState::new(id),
            ctx: Mutex::new(None),
            si: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Mark this transaction as committing under snapshot isolation. Must be
    /// called before the transaction becomes visible to other threads
    /// (i.e. right after creation).
    pub fn mark_snapshot_isolation(&self) {
        self.si.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether this transaction commits under snapshot isolation.
    pub fn is_snapshot_isolation(&self) -> bool {
        self.si.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Unique id of this transaction attempt (process-wide).
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current status.
    #[inline]
    pub fn status(&self) -> TxnStatus {
        self.status.load()
    }

    /// `C&S(T.status, from, to)`.
    #[inline]
    pub fn transition(&self, from: TxnStatus, to: TxnStatus) -> bool {
        self.status.transition(from, to)
    }

    /// The agreed commit time, if already set.
    #[inline]
    pub fn ct(&self) -> Option<Ts> {
        self.ct.get().copied()
    }

    /// `C&S(T.CT, 0, t)`: install `t` as the commit time unless one is
    /// already set; returns the commit time everyone must use.
    #[inline]
    pub fn set_ct(&self, t: Ts) -> Ts {
        let _ = self.ct.set(t);
        *self.ct.get().expect("ct was just set")
    }

    /// Contention-manager bookkeeping attached to this transaction.
    #[inline]
    pub fn cm(&self) -> &CmState {
        &self.cm
    }

    /// Publish the read-set snapshot helpers need. Must be called *before*
    /// transitioning to `Committing` so that any thread observing the
    /// `Committing` state is guaranteed to find the context.
    pub fn publish_ctx(&self, ctx: CommitCtx<Ts>) {
        *self.ctx.lock() = Some(Arc::new(ctx));
    }

    /// Fetch the published context (None if not published or already
    /// cleared after finalization).
    pub fn ctx(&self) -> Option<Arc<CommitCtx<Ts>>> {
        self.ctx.lock().clone()
    }

    /// Drop the context after the commit has reached a final state, breaking
    /// the temporary `TxnShared → TObject → TxnShared` reference cycle.
    /// Must only be called once the status is final.
    pub fn clear_ctx(&self) {
        debug_assert!(self.status().is_final());
        *self.ctx.lock() = None;
    }
}

impl<Ts: Timestamp> std::fmt::Debug for TxnShared<Ts> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnShared")
            .field("id", &self.id)
            .field("status", &self.status())
            .field("ct", &self.ct())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_first_setter_wins() {
        let t: TxnShared<u64> = TxnShared::new(1);
        assert_eq!(t.ct(), None);
        assert_eq!(t.set_ct(42), 42);
        assert_eq!(t.set_ct(99), 42, "second setter adopts the first value");
        assert_eq!(t.ct(), Some(42));
    }

    #[test]
    fn ct_racing_setters_agree() {
        let t: Arc<TxnShared<u64>> = Arc::new(TxnShared::new(1));
        let winners: Vec<u64> = std::thread::scope(|s| {
            (0..8)
                .map(|i| {
                    let t = Arc::clone(&t);
                    s.spawn(move || t.set_ct(100 + i))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let first = winners[0];
        assert!(winners.iter().all(|&w| w == first), "all agree on one CT");
        assert_eq!(t.ct(), Some(first));
    }

    #[test]
    fn ctx_lifecycle() {
        let t: TxnShared<u64> = TxnShared::new(7);
        assert!(t.ctx().is_none());
        t.publish_ctx(CommitCtx {
            entries: Vec::new(),
        });
        assert!(t.ctx().is_some());
        t.transition(TxnStatus::Active, TxnStatus::Committing);
        t.transition(TxnStatus::Committing, TxnStatus::Committed);
        t.clear_ctx();
        assert!(t.ctx().is_none());
    }
}
