//! Object version metadata.
//!
//! Every object traverses a sequence of versions (§1.1). A version's
//! *validity range* `[⌊v.R⌋, ⌈v.R⌉]` starts at the commit time of the
//! transaction that wrote it and ends just before the commit time of the
//! transaction that superseded it; the latest version has `⌈v.R⌉ = ∞`.
//!
//! [`VersionMeta`] separates the range bookkeeping from the (typed) payload
//! so that the transaction read set can be stored type-erased. Both bounds
//! are write-once ([`std::sync::OnceLock`]): the lower bound is fixed when
//! the writing transaction's speculative version is *folded* into the
//! committed chain, the upper bound when the next version commits. Readers
//! keep an `Arc<VersionMeta>` in their read set, so pruning old versions from
//! an object's chain never invalidates the information a reader needs — a
//! pruned version always has both bounds fixed.

use lsa_time::Timestamp;
use std::sync::OnceLock;

/// Shared, write-once validity-range metadata of one object version.
#[derive(Debug)]
pub struct VersionMeta<Ts: Timestamp> {
    lower: OnceLock<Ts>,
    upper: OnceLock<Ts>,
}

impl<Ts: Timestamp> VersionMeta<Ts> {
    /// Metadata for a speculative version: both bounds unknown.
    pub fn speculative() -> Self {
        VersionMeta {
            lower: OnceLock::new(),
            upper: OnceLock::new(),
        }
    }

    /// Metadata for an already-committed version with a known lower bound
    /// (used for the initial version of a fresh object).
    pub fn committed_at(lower: Ts) -> Self {
        let meta = Self::speculative();
        meta.lower.set(lower).ok();
        meta
    }

    /// `⌊v.R⌋`, if the version has been committed.
    #[inline]
    pub fn lower(&self) -> Option<Ts> {
        self.lower.get().copied()
    }

    /// `⌈v.R⌉`, if the version has been superseded (`None` means `∞`).
    #[inline]
    pub fn upper(&self) -> Option<Ts> {
        self.upper.get().copied()
    }

    /// Fix the lower bound (at fold time, to the writer's commit time).
    /// Idempotent: only the first call takes effect — folding is performed
    /// by whichever thread touches the object first and may race helpers.
    #[inline]
    pub fn set_lower(&self, ts: Ts) {
        self.lower.set(ts).ok();
    }

    /// Fix the upper bound (when a superseding version is folded, to the
    /// superseder's commit time minus one granule). Idempotent.
    #[inline]
    pub fn set_upper(&self, ts: Ts) {
        self.upper.set(ts).ok();
    }

    /// Return the node to its speculative state (both bounds unknown) so the
    /// version arena can hand it out again. Requires exclusive access — the
    /// arena proves it with `Arc::get_mut` before calling.
    #[inline]
    pub(crate) fn reset(&mut self) {
        *self = VersionMeta::speculative();
    }

    /// The version's validity range as currently known:
    /// `[lower, upper-or-∞]`. Panics if called before the version committed
    /// (speculative versions have no range yet).
    pub fn range(&self) -> lsa_time::ValidityRange<Ts> {
        let lower = self.lower().expect("range() on a speculative version");
        match self.upper() {
            Some(u) => lsa_time::ValidityRange::bounded(lower, u),
            None => lsa_time::ValidityRange::from(lower),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speculative_has_no_bounds() {
        let m: VersionMeta<u64> = VersionMeta::speculative();
        assert_eq!(m.lower(), None);
        assert_eq!(m.upper(), None);
    }

    #[test]
    fn bounds_are_write_once() {
        let m: VersionMeta<u64> = VersionMeta::speculative();
        m.set_lower(5);
        m.set_lower(99); // ignored
        assert_eq!(m.lower(), Some(5));
        m.set_upper(10);
        m.set_upper(3); // ignored
        assert_eq!(m.upper(), Some(10));
    }

    #[test]
    fn committed_at_sets_lower_only() {
        let m: VersionMeta<u64> = VersionMeta::committed_at(7);
        assert_eq!(m.lower(), Some(7));
        assert_eq!(m.upper(), None);
        let r = m.range();
        assert_eq!(r.lower, 7);
        assert_eq!(r.upper, None);
    }

    #[test]
    fn range_reflects_fixed_upper() {
        let m: VersionMeta<u64> = VersionMeta::committed_at(7);
        m.set_upper(20);
        let r = m.range();
        assert_eq!(r.upper, Some(20));
        assert!(r.contains(7) && r.contains(20) && !r.contains(21));
    }

    #[test]
    #[should_panic(expected = "speculative")]
    fn range_on_speculative_panics() {
        let m: VersionMeta<u64> = VersionMeta::speculative();
        let _ = m.range();
    }
}
