//! Early concurrency smoke tests for the LSA-RT core: run them against every
//! time base so algorithm/time-base interactions are exercised before the
//! higher layers build on top.

use lsa_stm::prelude::*;
use lsa_time::counter::{BlockCounter, SharedCounter};
use lsa_time::external::{ExternalClock, OffsetPolicy};
use lsa_time::hardware::HardwareClock;
use lsa_time::perfect::PerfectClock;
use lsa_time::TimeBase;

/// N threads transfer random amounts between accounts while auditors verify
/// the total is invariant — the canonical STM consistency check.
fn bank_invariant_holds<B: TimeBase>(tb: B, threads: usize, transfers: usize) {
    const ACCOUNTS: usize = 16;
    const INITIAL: i64 = 1000;
    let stm = Stm::new(tb);
    let accounts: Vec<TVar<i64, B::Ts>> = (0..ACCOUNTS).map(|_| stm.new_tvar(INITIAL)).collect();

    std::thread::scope(|s| {
        // Transfer threads.
        for t in 0..threads {
            let stm = stm.clone();
            let accounts = accounts.clone();
            s.spawn(move || {
                let mut h = stm.register();
                let mut x = t as u64 + 1;
                for _ in 0..transfers {
                    // xorshift for cheap deterministic-ish randomness
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let from = (x as usize) % ACCOUNTS;
                    let to = ((x >> 16) as usize) % ACCOUNTS;
                    let amount = (x % 100) as i64;
                    if from == to {
                        continue;
                    }
                    let (a, b) = (accounts[from].clone(), accounts[to].clone());
                    h.atomically(|tx| {
                        let va = *tx.read(&a)?;
                        let vb = *tx.read(&b)?;
                        tx.write(&a, va - amount)?;
                        tx.write(&b, vb + amount)?;
                        Ok(())
                    });
                }
            });
        }
        // Auditor threads: read-only scans must always see the invariant sum.
        for _ in 0..2 {
            let stm = stm.clone();
            let accounts = accounts.clone();
            s.spawn(move || {
                let mut h = stm.register();
                for _ in 0..200 {
                    let total = h.atomically(|tx| {
                        let mut sum = 0i64;
                        for acc in &accounts {
                            sum += *tx.read(acc)?;
                        }
                        Ok(sum)
                    });
                    assert_eq!(
                        total,
                        (ACCOUNTS as i64) * INITIAL,
                        "read-only snapshot saw an inconsistent total"
                    );
                }
            });
        }
    });

    // Quiescent total is also invariant.
    let final_total: i64 = accounts.iter().map(|a| *a.snapshot_latest()).sum();
    assert_eq!(final_total, (ACCOUNTS as i64) * INITIAL);
}

#[test]
fn bank_invariant_shared_counter() {
    bank_invariant_holds(SharedCounter::new(), 4, 2_000);
}

// No GV4/GV5 variants here: LSA rejects non-commit-monotonic bases at
// construction (see `lsa_stm::Stm::with_cm`); TL2 covers them instead.

#[test]
fn bank_invariant_block_counter() {
    bank_invariant_holds(BlockCounter::new(16), 4, 2_000);
}

#[test]
fn bank_invariant_perfect_clock() {
    bank_invariant_holds(PerfectClock::new(), 4, 2_000);
}

#[test]
fn bank_invariant_mmtimer() {
    bank_invariant_holds(HardwareClock::mmtimer_free(), 4, 2_000);
}

#[test]
fn bank_invariant_external_clock_with_offsets() {
    // 50 µs deviation with alternating extreme offsets: plenty of genuine
    // cross-thread clock disagreement.
    bank_invariant_holds(
        ExternalClock::with_policy(50_000, OffsetPolicy::Alternating),
        4,
        1_000,
    );
}

#[test]
fn disjoint_counters_all_increments_survive() {
    // The paper's §4.2 workload shape: each thread updates its own objects;
    // no logical conflicts, so every increment must land.
    let stm = Stm::new(SharedCounter::new());
    const PER: usize = 4;
    const THREADS: usize = 4;
    const INCS: usize = 2_000;
    let vars: Vec<Vec<TVar<u64, u64>>> = (0..THREADS)
        .map(|_| (0..PER).map(|_| stm.new_tvar(0u64)).collect())
        .collect();
    std::thread::scope(|s| {
        for mine in &vars {
            let stm = stm.clone();
            let mine = mine.clone();
            s.spawn(move || {
                let mut h = stm.register();
                for i in 0..INCS {
                    let v = mine[i % PER].clone();
                    h.atomically(|tx| tx.modify(&v, |x| x + 1));
                }
                assert_eq!(h.stats().commits, INCS as u64);
            });
        }
    });
    for per_thread in &vars {
        let sum: u64 = per_thread.iter().map(|v| *v.snapshot_latest()).sum();
        assert_eq!(sum, INCS as u64);
    }
}

#[test]
fn write_write_conflicts_never_lose_updates() {
    // All threads increment the SAME counter: contention managers fight, but
    // the final value must equal the number of committed increments.
    let stm = Stm::new(PerfectClock::new());
    let shared = stm.new_tvar(0u64);
    const THREADS: usize = 4;
    const INCS: u64 = 1_000;
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let stm = stm.clone();
            let v = shared.clone();
            s.spawn(move || {
                let mut h = stm.register();
                for _ in 0..INCS {
                    h.atomically(|tx| tx.modify(&v, |x| x + 1));
                }
            });
        }
    });
    assert_eq!(*shared.snapshot_latest(), THREADS as u64 * INCS);
}

#[test]
fn aggressive_and_suicide_cms_still_correct() {
    for cm_name in ["aggressive", "suicide", "karma", "timestamp"] {
        let stm = match cm_name {
            "aggressive" => Stm::with_cm(PerfectClock::new(), StmConfig::default(), Aggressive),
            "suicide" => Stm::with_cm(PerfectClock::new(), StmConfig::default(), Suicide),
            "karma" => Stm::with_cm(PerfectClock::new(), StmConfig::default(), Karma),
            _ => Stm::with_cm(
                PerfectClock::new(),
                StmConfig::default(),
                TimestampCm::default(),
            ),
        };
        let v = stm.new_tvar(0u64);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let stm = stm.clone();
                let v = v.clone();
                s.spawn(move || {
                    let mut h = stm.register();
                    for _ in 0..300 {
                        h.atomically(|tx| tx.modify(&v, |x| x + 1));
                    }
                });
            }
        });
        assert_eq!(*v.snapshot_latest(), 900, "cm={cm_name}");
    }
}

#[test]
fn single_version_mode_concurrent_correctness() {
    let stm = Stm::with_config(SharedCounter::new(), StmConfig::single_version());
    let a = stm.new_tvar(500i64);
    let b = stm.new_tvar(500i64);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let stm = stm.clone();
            let (a, b) = (a.clone(), b.clone());
            s.spawn(move || {
                let mut h = stm.register();
                for i in 0..500 {
                    let amt = (i % 7) as i64;
                    h.atomically(|tx| {
                        let va = *tx.read(&a)?;
                        let vb = *tx.read(&b)?;
                        tx.write(&a, va - amt)?;
                        tx.write(&b, vb + amt)?;
                        Ok(())
                    });
                }
            });
        }
    });
    assert_eq!(*a.snapshot_latest() + *b.snapshot_latest(), 1000);
}
