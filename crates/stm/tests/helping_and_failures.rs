//! Deterministic helping and failure-injection scenarios.
//!
//! The concurrency smoke tests exercise helping probabilistically; these
//! tests construct the exact descriptor states the paper's Algorithm 3
//! line 13 and §2.3 describe — a writer *stuck* in the `Committing` state —
//! and verify that other transactions complete the commit on its behalf, set
//! its commit time from their own clocks, and observe its result.

use lsa_stm::object::{AnyObject, ReadAttempt, WriteAttempt};
use lsa_stm::prelude::*;
use lsa_stm::status::TxnStatus;
use lsa_stm::txn_shared::{CommitCtx, CtxEntry, TxnShared};
use lsa_time::counter::SharedCounter;
use lsa_time::ValidityRange;
use std::sync::Arc;

/// Build a "stuck" committing writer on a fresh object: registered, value
/// installed, context published, status = Committing, **no commit time** —
/// as if the owner thread was preempted right after the status CAS.
fn stuck_committing_writer(
    stm: &Stm<SharedCounter>,
    var: &TVar<u64, u64>,
    value: u64,
) -> Arc<TxnShared<u64>> {
    let writer: Arc<TxnShared<u64>> = Arc::new(TxnShared::new(0xDEAD));
    let spec_meta = match var.object_for_tests().try_write(&writer) {
        WriteAttempt::Registered { spec_meta, .. } => spec_meta,
        _ => panic!("fresh object must register"),
    };
    assert!(var
        .object_for_tests()
        .set_spec_value(writer.id(), Arc::new(value)));
    writer.publish_ctx(CommitCtx {
        entries: vec![CtxEntry {
            obj: Arc::clone(var.object_for_tests()) as Arc<dyn lsa_stm::object::AnyObject<u64>>,
            meta: spec_meta,
        }],
    });
    assert!(writer.transition(TxnStatus::Active, TxnStatus::Committing));
    let _ = stm;
    writer
}

#[test]
fn reader_helps_stuck_committer_and_sees_its_write() {
    let stm = Stm::new(SharedCounter::new());
    let var = stm.new_tvar(1u64);
    let writer = stuck_committing_writer(&stm, &var, 42);
    assert_eq!(writer.ct(), None, "owner never set a commit time");

    // A reader arriving now must help the commit finish (Algorithm 3
    // line 13) and then read the committed value 42.
    let mut h = stm.register();
    let seen = h.atomically(|tx| tx.read(&var).map(|v| *v));
    assert_eq!(seen, 42, "reader must observe the helped commit");
    assert_eq!(writer.status(), TxnStatus::Committed);
    assert!(
        writer.ct().is_some(),
        "a helper set the commit time from its clock"
    );
    assert!(h.stats().helps >= 1, "the help must be accounted");
}

#[test]
fn writer_helps_stuck_committer_before_taking_over() {
    let stm = Stm::new(SharedCounter::new());
    let var = stm.new_tvar(1u64);
    let writer = stuck_committing_writer(&stm, &var, 7);

    let mut h = stm.register();
    h.atomically(|tx| tx.modify(&var, |v| v * 10));
    assert_eq!(
        *var.snapshot_latest(),
        70,
        "helped commit (7) then ours (×10)"
    );
    assert_eq!(writer.status(), TxnStatus::Committed);
}

#[test]
fn raw_reader_gets_need_help_for_committing_writer() {
    let stm = Stm::new(SharedCounter::new());
    let var = stm.new_tvar(5u64);
    let writer = stuck_committing_writer(&stm, &var, 6);
    match var.object_for_tests().try_read(&ValidityRange::from(0u64)) {
        ReadAttempt::NeedHelp(w) => assert_eq!(w.id(), writer.id()),
        _ => panic!("committing writer must request help"),
    }
}

#[test]
fn killed_writer_mid_transaction_retries_cleanly() {
    // Inject a kill exactly between a transaction's open-for-write and its
    // commit; the victim must detect it (AbortReason::Killed), retry, and
    // still produce a correct result.
    let stm = Stm::new(SharedCounter::new());
    let var = stm.new_tvar(0u64);
    let mut h = stm.register();
    let mut injected = false;
    h.atomically(|tx| {
        tx.modify(&var, |v| v + 1)?;
        if !injected {
            injected = true;
            // Simulate an enemy contention manager: kill the current txn.
            // We reach the shared descriptor through the object's writer.
            let w = var
                .object_for_tests()
                .current_writer()
                .expect("we are the registered writer");
            assert!(w.transition(TxnStatus::Active, TxnStatus::Aborted));
        }
        // The very next operation must notice the kill and abort.
        tx.read(&var).map(|v| *v)
    });
    assert_eq!(
        *var.snapshot_latest(),
        1,
        "retry applied the increment once"
    );
    assert_eq!(h.stats().aborts_for(AbortReason::Killed), 1);
    assert_eq!(h.stats().commits, 1);
}

#[test]
fn aborted_stuck_writer_is_discarded_by_next_accessor() {
    // A writer that is killed while Active leaves a speculative version; the
    // next accessor folds it away without help.
    let stm = Stm::new(SharedCounter::new());
    let var = stm.new_tvar(9u64);
    let writer: Arc<TxnShared<u64>> = Arc::new(TxnShared::new(0xBEEF));
    assert!(matches!(
        var.object_for_tests().try_write(&writer),
        WriteAttempt::Registered { .. }
    ));
    var.object_for_tests()
        .set_spec_value(writer.id(), Arc::new(666));
    assert!(writer.transition(TxnStatus::Active, TxnStatus::Aborted));

    let mut h = stm.register();
    let seen = h.atomically(|tx| tx.read(&var).map(|v| *v));
    assert_eq!(seen, 9, "the aborted write must never surface");
    assert!(var.object_for_tests().current_writer().is_none());
}

#[test]
fn two_helpers_race_exactly_one_commit() {
    // Many threads help the same stuck committer; the version must be folded
    // exactly once and every reader agree on the value.
    let stm = Stm::new(SharedCounter::new());
    let var = stm.new_tvar(0u64);
    let writer = stuck_committing_writer(&stm, &var, 1234);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let stm = stm.clone();
            let var = var.clone();
            s.spawn(move || {
                let mut h = stm.register();
                let v = h.atomically(|tx| tx.read(&var).map(|v| *v));
                assert_eq!(v, 1234);
            });
        }
    });
    assert_eq!(writer.status(), TxnStatus::Committed);
    assert_eq!(*var.snapshot_latest(), 1234);
    assert_eq!(
        var.version_count(),
        2,
        "initial + exactly one helped commit"
    );
}
