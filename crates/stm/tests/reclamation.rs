//! Watermark reclamation: safety and leak witnesses (DESIGN.md §11).
//!
//! Three properties pin the epoch/arena version store down:
//!
//! 1. **Reclamation safety** — no version readable by a registered active
//!    snapshot is ever pruned or recycled out from under it. Witness: a
//!    reader that pins a snapshot and then watches an arbitrary number of
//!    watermark advances still commits its original consistent view, with
//!    zero aborts, on both the single-shard and the sharded engine.
//! 2. **No leaks** — every retired version is eventually released or
//!    recycled: after all threads quiesce, `versions_retired ==
//!    versions_reclaimed` and nothing is left sitting in thread-local pools.
//! 3. **Demand-driven retention beats fixed depth** — the acceptance demo:
//!    a long reader that loses its history under `max_versions = 8` keeps it
//!    (and commits abort-free) under watermark retention, while memory stays
//!    bounded by what that one snapshot actually pins.

use lsa_stm::prelude::*;
use lsa_time::counter::SharedCounter;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    /// Safety witness, single shard: a pinned snapshot survives any number
    /// of concurrent updates and watermark advances — the slot protocol must
    /// hold the watermark below the reader's lower bound, so the versions it
    /// needs are never pruned and never recycled into garbage values.
    fn pinned_reader_snapshot_survives_reclamation(
        updates in 1usize..48,
        interval in 1u64..6,
    ) {
        let cfg = StmConfig {
            wm_advance_interval: interval,
            ..StmConfig::watermark_retention()
        };
        let stm = Stm::with_config(SharedCounter::new(), cfg);
        let a = stm.new_tvar(0u64);
        let b = stm.new_tvar(0u64);
        let mut reader = stm.register();
        let mut writer = stm.register();

        let mut first = true;
        let pair = reader.atomically(|tx| {
            let va = *tx.read(&a)?;
            if first {
                first = false;
                // Every commit advances the clock and (at `interval`) the
                // watermark; with retention the reader's slot is the only
                // thing keeping the initial versions alive.
                for _ in 0..updates {
                    writer.atomically(|wtx| {
                        wtx.modify(&a, |v| v + 1)?;
                        wtx.modify(&b, |v| v + 1)
                    });
                }
            }
            Ok((va, *tx.read(&b)?))
        });
        prop_assert_eq!(pair, (0, 0));
        prop_assert_eq!(reader.stats().total_aborts(), 0);
        // Writers saw no interference either.
        prop_assert_eq!(*a.snapshot_latest(), updates as u64);
    }

    #[test]
    /// Safety witness, sharded: same property through the cross-shard commit
    /// protocol, with `a` and `b` pinned on different shards so the reader's
    /// slot must restrain EVERY shard's reclamation domain (one registry,
    /// per-shard watermark installs).
    fn sharded_pinned_reader_snapshot_survives_reclamation(
        updates in 1usize..48,
        interval in 1u64..6,
    ) {
        let cfg = StmConfig {
            wm_advance_interval: interval,
            ..StmConfig::watermark_retention()
        };
        let stm = ShardedStm::with_config(SharedCounter::new(), 4, cfg);
        let a = stm.new_tvar_on(0, 0u64);
        let b = stm.new_tvar_on(3, 0u64);
        let mut reader = stm.register();
        let mut writer = stm.register();

        let mut first = true;
        let pair = reader.atomically(|tx| {
            let va = *tx.read(&a)?;
            if first {
                first = false;
                for _ in 0..updates {
                    writer.atomically(|wtx| {
                        wtx.modify(&a, |v| v + 1)?;
                        wtx.modify(&b, |v| v + 1)
                    });
                }
            }
            Ok((va, *tx.read(&b)?))
        });
        prop_assert_eq!(pair, (0, 0));
        prop_assert_eq!(reader.stats().total_aborts(), 0);
        prop_assert_eq!(*a.snapshot_latest(), updates as u64);
    }

    #[test]
    /// Leak witness: after a randomized single-threaded workload quiesces,
    /// every retired version has been released or recycled — nothing is
    /// stranded in thread-local pools, and the live gauge equals what the
    /// chains still hold.
    fn quiesced_engine_retires_everything_it_reclaims(
        commits in 1usize..200,
        vars in 1usize..8,
        interval in 1u64..6,
    ) {
        let cfg = StmConfig {
            wm_advance_interval: interval,
            ..StmConfig::watermark_retention()
        };
        let stm = Stm::with_config(SharedCounter::new(), cfg);
        let tvars: Vec<_> = (0..vars).map(|_| stm.new_tvar(0u64)).collect();
        let mut h = stm.register();
        for i in 0..commits {
            let v = &tvars[i % vars];
            h.atomically(|tx| tx.modify(v, |x| x + 1));
        }
        stm.reclaim_quiesce();
        let s = stm.reclaim_stats();
        prop_assert_eq!(s.versions_retired, s.versions_reclaimed);
        prop_assert_eq!(s.versions_pooled, 0);
        let chain_total: u64 = tvars.iter().map(|v| v.version_count() as u64).sum();
        prop_assert_eq!(s.versions_live, chain_total);
    }
}

/// Concurrent leak + bounded-memory witness: transfer transactions hammer a
/// small variable set from several threads (no long readers), every thread
/// quiesces before exiting, and afterwards the arena accounts for every
/// node: retired == reclaimed, pools empty, and the live population is the
/// chains' actual residue — orders of magnitude below the commit count an
/// unbounded store would have accumulated.
#[test]
fn concurrent_transfers_reclaim_without_leaks() {
    const THREADS: usize = 4;
    const COMMITS: usize = 1_000;
    const PAIRS: usize = 8;

    let cfg = StmConfig {
        wm_advance_interval: 4,
        ..StmConfig::watermark_retention()
    };
    let stm = Stm::with_config(SharedCounter::new(), cfg);
    let vars: Vec<_> = (0..PAIRS * 2).map(|_| stm.new_tvar(0i64)).collect();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let stm = stm.clone();
            let vars = vars.clone();
            s.spawn(move || {
                let mut h = stm.register();
                for i in 0..COMMITS {
                    let p = (t + i) % PAIRS;
                    let (src, dst) = (vars[2 * p].clone(), vars[2 * p + 1].clone());
                    h.atomically(|tx| {
                        tx.modify(&src, |v| v - 1)?;
                        tx.modify(&dst, |v| v + 1)
                    });
                    // Interleave zero-sum audits: a recycled-too-early node
                    // would surface here as a torn balance.
                    if i % 64 == 0 {
                        let sum = h.atomically(|tx| {
                            let mut sum = 0i64;
                            for v in &vars {
                                sum += *tx.read(v)?;
                            }
                            Ok(sum)
                        });
                        assert_eq!(sum, 0, "transfer invariant torn by reclamation");
                    }
                }
                // Flush this thread's recycling pool before it exits so the
                // leak accounting below can be exact.
                stm.reclaim_quiesce();
            });
        }
    });
    stm.reclaim_quiesce();

    let s = stm.reclaim_stats();
    assert_eq!(
        s.versions_retired, s.versions_reclaimed,
        "retired versions leaked: {s:?}"
    );
    assert_eq!(s.versions_pooled, 0, "pools must be empty after quiesce");
    assert!(
        s.versions_reclaimed > 0,
        "reclamation never fired — the witness tested nothing"
    );
    let total_updates = (THREADS * COMMITS) as u64;
    assert!(
        s.versions_live < total_updates / 4,
        "live population {} is not bounded (of {} update commits)",
        s.versions_live,
        total_updates
    );
}

/// Acceptance demo: the workload the watermark exists for. A long reader
/// pins a snapshot, 32 write-both commits land behind its back. With the
/// fixed `max_versions = 8` policy the history it needs is pruned (a
/// `NoVersion` abort, then a retry on fresher state); with watermark
/// retention the exact versions the snapshot can still read are retained —
/// strictly fewer (here: zero) `NoVersion` aborts.
#[test]
fn watermark_retention_beats_fixed_depth_for_long_readers() {
    fn no_version_aborts(cfg: StmConfig) -> u64 {
        let stm = Stm::with_config(SharedCounter::new(), cfg);
        let a = stm.new_tvar(0u64);
        let b = stm.new_tvar(0u64);
        let mut reader = stm.register();
        let mut writer = stm.register();
        let mut first = true;
        let _ = reader.atomically(|tx| {
            let va = *tx.read(&a)?;
            if first {
                first = false;
                for _ in 0..32 {
                    writer.atomically(|wtx| {
                        wtx.modify(&a, |v| v + 1)?;
                        wtx.modify(&b, |v| v + 1)
                    });
                }
            }
            Ok((va, *tx.read(&b)?))
        });
        reader.stats().aborts_for(AbortReason::NoVersion)
    }

    let fixed = no_version_aborts(StmConfig::multi_version(8));
    let retained = no_version_aborts(StmConfig::watermark_retention());
    assert!(
        fixed >= 1,
        "fixed-depth baseline must lose the reader's history (got {fixed} aborts)"
    );
    assert_eq!(
        retained, 0,
        "watermark retention must keep every version an active snapshot can read"
    );
    assert!(retained < fixed);
}
