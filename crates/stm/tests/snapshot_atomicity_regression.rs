//! Regression test for the `getPrelimUB` atomicity race.
//!
//! The paper's pseudocode (Algorithm 3 lines 19–35) evaluates `getPrelimUB`
//! atomically. A naive implementation reads `v.upper` and `o.writer` as two
//! separate loads; if the reading thread stalls between them, `v` can be
//! superseded several times in the gap and the sampled writer belongs to a
//! much later generation — whose commit time says nothing about `v`'s
//! validity. The resulting snapshot claims an old version valid far beyond
//! its true range, and a read-only scan combines versions from different
//! commits.
//!
//! The fix re-checks the write-once `upper` bound after sampling the writer
//! (`prelim_raw`'s `finish`). This test is the distilled workload that
//! exposed the race within ~2 seconds on a 2-core host: one updater moving
//! value between two variables at maximum rate, one scanner asserting the
//! invariant. Run in a loop to give the scheduler many chances to preempt
//! between the two loads.

use lsa_stm::prelude::*;
use lsa_time::counter::SharedCounter;
use lsa_time::hardware::HardwareClock;
use lsa_time::TimeBase;

fn two_var_invariant_holds<B: TimeBase>(tb: B, iterations: usize) {
    let stm = Stm::new(tb);
    let a = stm.new_tvar(500i64);
    let b = stm.new_tvar(500i64);
    std::thread::scope(|s| {
        let stm2 = stm.clone();
        let (a2, b2) = (a.clone(), b.clone());
        s.spawn(move || {
            let mut h = stm2.register();
            for i in 0..iterations {
                let amt = (i % 9) as i64;
                h.atomically(|tx| {
                    let va = *tx.read(&a2)?;
                    let vb = *tx.read(&b2)?;
                    tx.write(&a2, va - amt)?;
                    tx.write(&b2, vb + amt)?;
                    Ok(())
                });
            }
        });
        let stm3 = stm.clone();
        let (a3, b3) = (a.clone(), b.clone());
        s.spawn(move || {
            let mut h = stm3.register();
            for j in 0..iterations {
                let total = h.atomically(|tx| Ok(*tx.read(&a3)? + *tx.read(&b3)?));
                assert_eq!(
                    total, 1_000,
                    "iteration {j}: scan combined versions from different commits"
                );
            }
        });
    });
    assert_eq!(*a.snapshot_latest() + *b.snapshot_latest(), 1_000);
}

#[test]
fn tight_two_var_scan_counter() {
    for _ in 0..8 {
        two_var_invariant_holds(SharedCounter::new(), 4_000);
    }
}

#[test]
fn tight_two_var_scan_counter_single_version() {
    let stm = Stm::with_config(SharedCounter::new(), StmConfig::single_version());
    let a = stm.new_tvar(500i64);
    let b = stm.new_tvar(500i64);
    std::thread::scope(|s| {
        let stm2 = stm.clone();
        let (a2, b2) = (a.clone(), b.clone());
        s.spawn(move || {
            let mut h = stm2.register();
            for i in 0..8_000 {
                let amt = (i % 9) as i64;
                h.atomically(|tx| {
                    let va = *tx.read(&a2)?;
                    let vb = *tx.read(&b2)?;
                    tx.write(&a2, va - amt)?;
                    tx.write(&b2, vb + amt)?;
                    Ok(())
                });
            }
        });
        let stm3 = stm.clone();
        let (a3, b3) = (a.clone(), b.clone());
        s.spawn(move || {
            let mut h = stm3.register();
            for _ in 0..8_000 {
                let total = h.atomically(|tx| Ok(*tx.read(&a3)? + *tx.read(&b3)?));
                assert_eq!(total, 1_000);
            }
        });
    });
}

#[test]
fn tight_two_var_scan_mmtimer() {
    for _ in 0..4 {
        two_var_invariant_holds(HardwareClock::mmtimer_free(), 3_000);
    }
}
