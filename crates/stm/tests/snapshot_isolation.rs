//! Snapshot-isolation mode (the authors' TRANSACT'06 work, cited as \[10\]
//! in the paper's §1): update transactions skip commit-time read validation.
//!
//! These tests pin down the semantic difference precisely:
//! * **write skew** — the textbook SI anomaly — is *prevented* in the default
//!   serializable mode and *permitted* under SI;
//! * lost updates remain impossible under SI (visible writes exclude
//!   write-write conflicts);
//! * read-only snapshots stay consistent under SI (that part of the
//!   guarantee never depended on commit validation).

use lsa_stm::prelude::*;
use lsa_time::counter::SharedCounter;
use std::sync::Barrier;

/// Classic write-skew setup: invariant `a + b >= 0`, both start at 1.
/// Each of two transactions reads both, checks the invariant would hold
/// after its own decrement, and decrements *its own* variable. Serializable
/// execution allows at most one to commit the decrement; SI lets both.
fn write_skew(cfg: StmConfig) -> i64 {
    let stm = Stm::with_config(SharedCounter::new(), cfg);
    let a = stm.new_tvar(1i64);
    let b = stm.new_tvar(1i64);
    let barrier = Barrier::new(2);

    std::thread::scope(|s| {
        let t1 = {
            let stm = stm.clone();
            let (a, b) = (a.clone(), b.clone());
            let barrier = &barrier;
            s.spawn(move || {
                let mut h = stm.register();
                let _ = h.try_atomically(1, |tx| {
                    let va = *tx.read(&a)?;
                    let vb = *tx.read(&b)?;
                    barrier.wait(); // both read the same snapshot state...
                    if va + vb >= 2 {
                        tx.write(&a, va - 1)?; // ...then each writes its own var
                    }
                    Ok(())
                });
            })
        };
        let t2 = {
            let stm = stm.clone();
            let (a, b) = (a.clone(), b.clone());
            let barrier = &barrier;
            s.spawn(move || {
                let mut h = stm.register();
                let _ = h.try_atomically(1, |tx| {
                    let va = *tx.read(&a)?;
                    let vb = *tx.read(&b)?;
                    barrier.wait();
                    if va + vb >= 2 {
                        tx.write(&b, vb - 1)?;
                    }
                    Ok(())
                });
            })
        };
        t1.join().unwrap();
        t2.join().unwrap();
    });

    *a.snapshot_latest() + *b.snapshot_latest()
}

#[test]
fn serializable_mode_prevents_write_skew() {
    // Under serializability at most one decrement commits in the same
    // instant: total stays >= 1 in every run.
    for _ in 0..50 {
        let total = write_skew(StmConfig::default());
        assert!(
            total >= 1,
            "write skew slipped through serializable mode: {total}"
        );
    }
}

#[test]
fn si_mode_admits_write_skew_eventually() {
    // Under SI both transactions may commit on the same snapshot; with the
    // barrier forcing overlap this happens essentially every run. Accept the
    // anomaly if we see it at least once across the attempts — that it CAN
    // happen is the semantic point.
    let mut skewed = false;
    for _ in 0..50 {
        if write_skew(StmConfig::snapshot_isolation()) == 0 {
            skewed = true;
            break;
        }
    }
    assert!(
        skewed,
        "SI mode never exhibited write skew — validation still on?"
    );
}

#[test]
fn si_mode_still_excludes_lost_updates() {
    let stm = Stm::with_config(SharedCounter::new(), StmConfig::snapshot_isolation());
    let v = stm.new_tvar(0u64);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let stm = stm.clone();
            let v = v.clone();
            s.spawn(move || {
                let mut h = stm.register();
                for _ in 0..1_000 {
                    h.atomically(|tx| tx.modify(&v, |x| x + 1));
                }
            });
        }
    });
    assert_eq!(*v.snapshot_latest(), 4_000, "SI must not lose updates");
}

#[test]
fn si_mode_keeps_read_only_snapshots_consistent() {
    let stm = Stm::with_config(SharedCounter::new(), StmConfig::snapshot_isolation());
    let a = stm.new_tvar(500i64);
    let b = stm.new_tvar(500i64);
    std::thread::scope(|s| {
        let stm2 = stm.clone();
        let (a2, b2) = (a.clone(), b.clone());
        s.spawn(move || {
            let mut h = stm2.register();
            for i in 0..2_000 {
                let amt = (i % 9) as i64;
                h.atomically(|tx| {
                    let va = *tx.read(&a2)?;
                    let vb = *tx.read(&b2)?;
                    tx.write(&a2, va - amt)?;
                    tx.write(&b2, vb + amt)?;
                    Ok(())
                });
            }
        });
        let stm3 = stm.clone();
        let (a3, b3) = (a.clone(), b.clone());
        s.spawn(move || {
            let mut h = stm3.register();
            for _ in 0..2_000 {
                let total = h.atomically(|tx| Ok(*tx.read(&a3)? + *tx.read(&b3)?));
                assert_eq!(total, 1_000, "SI read-only snapshot must be consistent");
            }
        });
    });
}
