//! Version-chain pruning vs long-running readers.
//!
//! Design claim (DESIGN.md §2, memory management): read sets hold
//! `Arc<VersionMeta>`, so pruning a version out of an object's chain never
//! invalidates a reader — a pruned version always has both range bounds
//! fixed, and `getPrelimUB` answers from the meta alone. These tests pin
//! that behaviour down.

use lsa_stm::prelude::*;
use lsa_time::counter::SharedCounter;

#[test]
fn long_reader_survives_pruning_of_its_version() {
    // Chain capacity 2: after two more commits, the version the reader used
    // is pruned from the chain — the reader must still commit fine (its
    // snapshot stays bounded by the meta's fixed upper bound).
    let stm = Stm::with_config(SharedCounter::new(), StmConfig::multi_version(2));
    let a = stm.new_tvar(1u64);
    let b = stm.new_tvar(100u64);
    let mut reader = stm.register();
    let mut writer = stm.register();

    let mut first = true;
    let (va, vb) = reader.atomically(|tx| {
        let va = *tx.read(&a)?;
        if first {
            first = false;
            // Concurrent commits supersede AND prune the version of `a`
            // the reader just used.
            for _ in 0..4 {
                writer.atomically(|wtx| wtx.modify(&a, |v| v + 1));
            }
            assert_eq!(a.version_count(), 2, "old versions pruned");
        }
        // Multi-version magic: `b` is untouched, so the snapshot
        // [origin-of-b ∩ validity-of-a@1] is still consistent.
        let vb = *tx.read(&b)?;
        Ok((va, vb))
    });
    assert_eq!((va, vb), (1, 100), "consistent snapshot from the past");
    assert_eq!(
        reader.stats().total_aborts(),
        0,
        "no abort needed: the old snapshot stayed completable"
    );
    assert_eq!(*a.snapshot_latest(), 5);
}

#[test]
fn reader_aborts_when_snapshot_needs_pruned_history_of_read_object() {
    // Single-version chains: the reader's first-read version of `a` is
    // superseded AND the transaction then needs a *newer* object whose only
    // version postdates its snapshot — it must abort and retry, never
    // return an inconsistent pair.
    let stm = Stm::with_config(SharedCounter::new(), StmConfig::single_version());
    let a = stm.new_tvar(0u64);
    let b = stm.new_tvar(0u64);
    let mut reader = stm.register();
    let mut writer = stm.register();

    let mut sabotage = true;
    let (va, vb) = reader.atomically(|tx| {
        let va = *tx.read(&a)?;
        if sabotage {
            sabotage = false;
            writer.atomically(|wtx| {
                wtx.modify(&a, |v| v + 1)?;
                wtx.modify(&b, |v| v + 1)
            });
        }
        let vb = *tx.read(&b)?;
        Ok((va, vb))
    });
    // Only consistent combinations may surface: (0,0) pre-update snapshot —
    // impossible in single-version mode once `b`'s old version is gone — or
    // (1,1) after retry.
    assert_eq!(
        (va, vb),
        (1, 1),
        "retry must land on the post-update snapshot"
    );
    assert!(
        reader.stats().total_aborts() >= 1,
        "first attempt had to abort"
    );
}

#[test]
fn deep_chains_serve_readers_across_many_generations() {
    let depth = 16;
    let stm = Stm::with_config(SharedCounter::new(), StmConfig::multi_version(depth));
    let a = stm.new_tvar(0u64);
    let b = stm.new_tvar(0u64);
    let mut reader = stm.register();
    let mut writer = stm.register();

    // Reader pins a snapshot, then `depth - 2` updates land on `a`.
    let mut first = true;
    let (va, vb) = reader.atomically(|tx| {
        let va = *tx.read(&a)?;
        if first {
            first = false;
            for _ in 0..depth - 2 {
                writer.atomically(|wtx| wtx.modify(&a, |v| v + 1));
            }
        }
        Ok((va, *tx.read(&b)?))
    });
    assert_eq!((va, vb), (0, 0));
    assert_eq!(reader.stats().total_aborts(), 0);
    assert!(a.version_count() <= depth);
}

#[test]
fn version_count_is_bounded_under_concurrency() {
    let stm = Stm::with_config(SharedCounter::new(), StmConfig::multi_version(4));
    let v = stm.new_tvar(0u64);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let stm = stm.clone();
            let v = v.clone();
            s.spawn(move || {
                let mut h = stm.register();
                for _ in 0..2_000 {
                    h.atomically(|tx| tx.modify(&v, |x| x + 1));
                }
            });
        }
    });
    assert_eq!(*v.snapshot_latest(), 8_000);
    assert!(
        v.version_count() <= 4,
        "pruning must keep the chain bounded"
    );
}
