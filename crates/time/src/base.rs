//! The time base abstraction (§2.1 of the paper).
//!
//! A *time base* provides every thread with the utility functions of
//! Algorithm 1: `getTime` (a monotonic reading of the global time) and
//! `getNewTS` (a reading strictly greater than anything this thread has seen
//! so far). Threads interact with the time base through a per-thread
//! [`ThreadClock`] handle obtained from [`TimeBase::register_thread`] — this
//! models the paper's "each thread p has access to a local clock Cp" (§3.1)
//! and lets implementations keep per-thread state (last returned value,
//! injected clock offsets, NUMA cache-line ownership) without sharing.

use crate::timestamp::Timestamp;
use std::sync::OnceLock;
use std::time::Instant;

/// A shared time base from which threads obtain their clock handles.
///
/// Implementations are cheap to share (`Arc` internally where needed) and
/// must guarantee that the timestamps handed out through *any* of their
/// [`ThreadClock`]s are mutually comparable with the semantics of
/// [`Timestamp`].
pub trait TimeBase: Send + Sync + 'static {
    /// The timestamp type produced by this base's clocks.
    type Ts: Timestamp;
    /// The per-thread clock handle type.
    type Clock: ThreadClock<Ts = Self::Ts>;

    /// Create a clock handle for the calling thread. Handles are `Send` but
    /// are meant to be used by a single thread at a time (they carry the
    /// thread-local monotonicity state).
    fn register_thread(&self) -> Self::Clock;

    /// A short human-readable name used in experiment output
    /// (e.g. `"shared-counter"`, `"mmtimer"`).
    fn name(&self) -> &'static str;
}

/// A per-thread clock handle implementing the paper's `getTime`/`getNewTS`.
pub trait ThreadClock: Send + 'static {
    /// The timestamp type produced by this clock.
    type Ts: Timestamp;

    /// The paper's `getTime()`: returns the current time as observed by this
    /// thread. Successive calls on the same handle return monotonically
    /// non-decreasing timestamps (`t2 ≽ t1`), but not necessarily strictly
    /// increasing ones — clocks that tick rarely (e.g. commit counters) may
    /// return the same value repeatedly.
    fn get_time(&mut self) -> Self::Ts;

    /// The paper's `getNewTS()`: returns a timestamp *strictly greater* than
    /// any timestamp previously returned to this thread by `get_time` or
    /// `get_new_ts`. Update transactions call this once at commit to obtain
    /// their tentative commit time (Algorithm 2 line 41).
    fn get_new_ts(&mut self) -> Self::Ts;
}

/// Start of the process-wide monotonic epoch. All real-time-flavoured time
/// bases in this crate derive their readings from one shared [`Instant`], so
/// readings taken by different threads are mutually consistent (Linux
/// `CLOCK_MONOTONIC` is globally coherent across CPUs, which is exactly the
/// "perfectly synchronized clock" hardware assumption of §3.1).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Offset added to all nanosecond readings so that downstream arithmetic
/// (e.g. `ts - dev` for externally synchronized clocks, `prior()`) can never
/// underflow near process start. Roughly 18 minutes.
pub const EPOCH_OFFSET_NS: u64 = 1 << 40;

/// Read the shared monotonic clock, in nanoseconds since an arbitrary (but
/// process-wide) epoch. This is the raw oscillator from which
/// [`crate::perfect::PerfectClock`], [`crate::hardware::HardwareClock`] and
/// [`crate::external::ExternalClock`] synthesize their readings.
#[inline]
pub fn monotonic_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64 + EPOCH_OFFSET_NS
}

/// Busy-wait for approximately `ns` nanoseconds. Used by the latency-emulating
/// time bases ([`crate::hardware::HardwareClock`] read cost,
/// [`crate::numa::NumaCounter`] remote-miss cost). Spinning (rather than
/// sleeping) matches what the modeled hardware does: the CPU is stalled on an
/// uncached load for the duration.
#[inline]
pub fn spin_for_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_ns_is_monotonic_and_offset() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
        assert!(a >= EPOCH_OFFSET_NS);
    }

    #[test]
    fn monotonic_ns_consistent_across_threads() {
        // A reading taken *after* a handshake must be >= a reading taken
        // before it, even when the two readings come from different threads:
        // this is the global-coherence property the paper's perfectly
        // synchronized clocks provide.
        let before = monotonic_ns();
        let from_thread = std::thread::spawn(monotonic_ns).join().unwrap();
        let after = monotonic_ns();
        assert!(from_thread >= before);
        assert!(after >= from_thread);
    }

    #[test]
    fn spin_for_ns_waits_at_least_that_long() {
        let start = Instant::now();
        spin_for_ns(200_000); // 200 µs
        assert!(start.elapsed().as_nanos() >= 200_000);
    }

    #[test]
    fn spin_for_zero_returns_immediately() {
        spin_for_ns(0);
    }
}
