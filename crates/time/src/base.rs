//! The time base abstraction (§2.1 of the paper) and the commit-arbitration
//! protocol layered on top of it.
//!
//! A *time base* provides every thread with the utility functions of
//! Algorithm 1: `getTime` (a monotonic reading of the global time) and
//! `getNewTS` (a reading strictly greater than anything this thread has seen
//! so far). Threads interact with the time base through a per-thread
//! [`ThreadClock`] handle obtained from [`TimeBase::register_thread`] — this
//! models the paper's "each thread p has access to a local clock Cp" (§3.1)
//! and lets implementations keep per-thread state (last returned value,
//! injected clock offsets, NUMA cache-line ownership) without sharing.
//!
//! ## Commit arbitration
//!
//! `getNewTS` alone cannot express the contention-avoiding tricks that make
//! shared-counter time bases scale (§1.2): TL2's GV4 "pass on failed CAS"
//! hands the *winner's* timestamp to the loser, GV5 derives the commit time
//! from a plain read without ever incrementing the counter, and batched
//! bases reserve whole blocks of timestamps per thread. All of these need a
//! richer answer than one scalar: the base must tell the engine whether the
//! timestamp is exclusively owned or shared with a concurrent committer.
//! [`ThreadClock::acquire_commit_ts`] is that two-phase protocol: the clock
//! forms a *tentative* commit time (phase one), arbitrates it against
//! concurrent committers (phase two — a CAS, a `fetch_max`, or nothing for
//! real-time clocks), and reports the outcome as a [`CommitTs`].
//! [`ThreadClock::get_ts_block`] exposes batched allocation, and
//! [`ThreadClock::note_abort`] closes the feedback loop GV5-style bases need
//! to keep lagging readers live. Per-base guarantees (uniqueness classes,
//! contention behaviour) are described by [`TimeBaseInfo`], which replaces
//! the bare `name()` string, and are asserted by [`crate::conformance`].

use crate::timestamp::Timestamp;
use std::sync::OnceLock;
use std::time::Instant;

/// How a commit timestamp was obtained from the time base — the outcome of
/// the two-phase [`ThreadClock::acquire_commit_ts`] arbitration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitTs<Ts> {
    /// The base arbitrated this timestamp to the caller alone: no other
    /// committer (past or concurrent) holds or will be handed the same
    /// value. Engines may use exclusivity for fast paths — e.g. TL2's
    /// "`wv == rv + 1` ⇒ nothing committed in between ⇒ skip read-set
    /// validation", which is only sound when `wv` is exclusively owned.
    ///
    /// This is a guarantee about *all* committers, not just other winners:
    /// a base whose losers can adopt a winner's value (GV4-style
    /// pass-on-failed-CAS) must report even its winners as [`Shared`] —
    /// exclusivity a concurrent adopter can void is no exclusivity at all.
    /// [`crate::conformance::exclusive_commit_ts_unique`] asserts that
    /// exclusive values never collide with any other arbitrated commit
    /// timestamp.
    Exclusive(Ts),
    /// The timestamp carries no exclusivity guarantee: it was adopted from a
    /// concurrent committer (TL2's GV4 pass-on-failed-CAS, GV5's
    /// read-derived commit times) or drawn from a base that cannot rule out
    /// coincident readings (real-time clocks). Sharing a commit time is
    /// sound for time-based STMs because two transactions may commit at the
    /// same time as long as they do not conflict (§2.3) — conflicting
    /// transactions are serialized by the object-level write protocol, never
    /// by the counter.
    Shared(Ts),
}

impl<Ts: Copy> CommitTs<Ts> {
    /// The arbitrated commit timestamp, regardless of ownership.
    #[inline]
    pub fn ts(self) -> Ts {
        match self {
            CommitTs::Exclusive(t) | CommitTs::Shared(t) => t,
        }
    }

    /// Whether the value was adopted from a concurrent committer.
    #[inline]
    pub fn is_shared(self) -> bool {
        matches!(self, CommitTs::Shared(_))
    }

    /// Arbitration-outcome label, matching the metric names the service
    /// layer exports (`time.commit_ts.shared` / `time.commit_ts.exclusive`)
    /// and the flight-recorder event kinds (`cts-shared` / `cts-exclusive`).
    #[inline]
    pub fn class(self) -> &'static str {
        match self {
            CommitTs::Exclusive(_) => "exclusive",
            CommitTs::Shared(_) => "shared",
        }
    }
}

/// Cross-thread uniqueness class of the timestamps a base hands out — the
/// per-base answer to the `getNewTS` contract question "strictly greater
/// than anything *this thread* has seen, but what about other threads?".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Uniqueness {
    /// No two calls — on any thread — ever return the same value (atomic
    /// `fetch_add` counters, disjoint reserved blocks).
    Unique,
    /// Values are unique on the uncontended path but may be *deliberately*
    /// shared between concurrent committers under contention (GV4 adoption,
    /// GV5 read-derived commit times).
    SharedUnderContention,
    /// Distinct threads may coincidentally draw equal readings (real-time
    /// clocks quantized to a tick; externally synchronized clock ensembles).
    /// Uniqueness is never guaranteed and engines must not rely on it.
    BestEffort,
}

/// Expected behaviour of the commit hot path under contention — the
/// "contention class" of §4.2's cost analysis, used to pick a base for a
/// workload and reported by the experiment harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContentionClass {
    /// Every commit performs a read-modify-write on one shared cache line
    /// (classical shared counter): each increment invalidates the line in
    /// every concurrent reader — the bottleneck the paper removes.
    SharedRmw,
    /// Commits still target one shared line but losers adopt the winner's
    /// value instead of retrying (GV4) or amortize allocation over blocks;
    /// the line is contended yet the retry storm is bounded.
    AdoptingRmw,
    /// Commits only *read* the shared line (GV5): no commit-time
    /// invalidation traffic at all, paid for with lagging readers and
    /// extra aborts.
    LoadOnly,
    /// Commits read a local or hardware clock: no shared-memory traffic
    /// (perfectly/externally synchronized clocks, MMTimer).
    LocalRead,
}

/// Static descriptor of a time base: its name plus the contract details the
/// bare `name()` string used to leave ambiguous. The conformance suite
/// ([`crate::conformance`]) asserts the advertised classes hold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeBaseInfo {
    /// Short human-readable name used in experiment output
    /// (e.g. `"shared-counter"`, `"mmtimer"`).
    pub name: &'static str,
    /// Cross-thread uniqueness of `get_new_ts` / `acquire_commit_ts`
    /// results. [`CommitTs::Exclusive`] values are globally unique
    /// regardless of this class — a base that cannot guarantee a value will
    /// never be handed to another committer (e.g. because a concurrent
    /// loser may adopt it) must report that value as [`CommitTs::Shared`];
    /// [`crate::conformance`] asserts this.
    pub uniqueness: Uniqueness,
    /// Cross-thread uniqueness of [`ThreadClock::get_ts_block`] values.
    /// Counter-backed bases reserve disjoint ranges ([`Uniqueness::Unique`]);
    /// real-time bases can only promise what `get_new_ts` promises.
    pub block_uniqueness: Uniqueness,
    /// Commit hot-path behaviour under contention.
    pub contention: ContentionClass,
    /// Whether every commit timestamp strictly exceeds every value any
    /// thread could read from `get_time` before the acquisition — the §2.4
    /// strictness property in its *global* form.
    ///
    /// Multi-version engines whose validity reasoning issues claims like
    /// "this version is valid at least until `t`" (LSA's `getPrelimUB`
    /// fallback) are only sound on bases where this holds: a later commit
    /// at a timestamp `≤ t` would retroactively falsify the claim. GV5
    /// deliberately gives this up (commit times run ahead of the readable
    /// counter), and so does GV4 adoption (a loser commits at a value the
    /// winner already made readable) — which is why LSA refuses
    /// non-monotonic bases while TL2, which re-checks every read against
    /// `rv` instead of issuing forward claims, accepts them.
    pub commit_monotonic: bool,
}

/// A shared time base from which threads obtain their clock handles.
///
/// Implementations are cheap to share (`Arc` internally where needed) and
/// must guarantee that the timestamps handed out through *any* of their
/// [`ThreadClock`]s are mutually comparable with the semantics of
/// [`Timestamp`].
pub trait TimeBase: Send + Sync + 'static {
    /// The timestamp type produced by this base's clocks.
    type Ts: Timestamp;
    /// The per-thread clock handle type.
    type Clock: ThreadClock<Ts = Self::Ts>;

    /// Create a clock handle for the calling thread. Handles are `Send` but
    /// are meant to be used by a single thread at a time (they carry the
    /// thread-local monotonicity state).
    fn register_thread(&self) -> Self::Clock;

    /// Static descriptor of this base: name, uniqueness guarantees and
    /// contention class.
    fn info(&self) -> TimeBaseInfo;

    /// Short human-readable name used in experiment output. Convenience
    /// accessor for [`TimeBaseInfo::name`].
    fn name(&self) -> &'static str {
        self.info().name
    }
}

/// A per-thread clock handle implementing the paper's `getTime`/`getNewTS`
/// plus the commit-arbitration extensions (GV4/GV5 adoption, batched
/// timestamp blocks, abort feedback).
pub trait ThreadClock: Send + 'static {
    /// The timestamp type produced by this clock.
    type Ts: Timestamp;

    /// The paper's `getTime()`: returns the current time as observed by this
    /// thread. Successive calls on the same handle return monotonically
    /// non-decreasing timestamps (`t2 ≽ t1`), but not necessarily strictly
    /// increasing ones — clocks that tick rarely (e.g. commit counters) may
    /// return the same value repeatedly.
    fn get_time(&mut self) -> Self::Ts;

    /// The paper's `getNewTS()`: returns a timestamp *strictly greater* than
    /// any timestamp previously returned to this thread by `get_time` or
    /// `get_new_ts`. Update transactions call this once at commit to obtain
    /// their tentative commit time (Algorithm 2 line 41).
    ///
    /// **Cross-thread guarantees are per-base**, not part of this contract:
    /// whether two threads can ever receive the same value is described by
    /// [`TimeBaseInfo::uniqueness`] and asserted by [`crate::conformance`].
    /// What *is* guaranteed globally (§2.4, required for the soundness of
    /// the STM's validity reasoning) is that the result strictly exceeds
    /// every reading whose publication happened-before this call.
    fn get_new_ts(&mut self) -> Self::Ts;

    /// Acquire a commit timestamp through the base's arbitration protocol.
    ///
    /// `observed` is the caller's latest own observation of the time base
    /// (for an STM: the join of its snapshot bounds and its last `get_time`)
    /// — the *tentative* phase anchors the commit time strictly above it.
    /// The *confirmation* phase arbitrates against concurrent committers;
    /// the returned timestamp is strictly greater than both `observed` and
    /// everything previously returned to this thread, and the
    /// [`CommitTs`] wrapper says whether the value is exclusively owned or
    /// adopted from the winner of a lost arbitration (GV4/GV5).
    ///
    /// The default implementation draws `get_new_ts()` and reports it as
    /// [`CommitTs::Shared`] — the conservative answer, because exclusivity
    /// is a *guarantee* engines build fast paths on (TL2 skips read-set
    /// validation for an exclusive `wv == rv + 1`) and the trait cannot know
    /// whether a base's timestamps are globally unique. Bases whose
    /// arbitration actually proves exclusivity (atomic counters, reserved
    /// blocks) override this to return [`CommitTs::Exclusive`].
    fn acquire_commit_ts(&mut self, observed: Self::Ts) -> CommitTs<Self::Ts> {
        let _ = observed;
        CommitTs::Shared(self.get_new_ts())
    }

    /// Reserve `n` timestamps for this thread in one arbitration round.
    ///
    /// Contract: the returned values are strictly increasing, each strictly
    /// greater than any timestamp previously returned to this thread, and
    /// their cross-thread uniqueness is [`TimeBaseInfo::block_uniqueness`].
    /// **Blocks are not real-time ordered**: a reserved value may be smaller
    /// than a `get_time` reading another thread takes before the value is
    /// used. Blocks are therefore suitable for id/epoch allocation and for
    /// pre-partitioned (sharded) time domains, but must NOT be used directly
    /// as commit timestamps — commit times go through
    /// [`acquire_commit_ts`](Self::acquire_commit_ts), which re-arbitrates
    /// block values against the published commit frontier (see
    /// `BlockCounter` in [`crate::counter`]).
    ///
    /// The default implementation draws `n` successive `get_new_ts` values.
    fn get_ts_block(&mut self, n: usize) -> Vec<Self::Ts> {
        (0..n).map(|_| self.get_new_ts()).collect()
    }

    /// Out-of-band timestamp feedback: the engine learned `ts` from shared
    /// state (typically a version stamp read from an object) rather than
    /// from this clock.
    ///
    /// Lazy bases whose counter deliberately lags the committed versions
    /// (GV5) fold observed stamps into their freshness state so that one
    /// abort — not one abort per lagging tick — suffices to catch a reader
    /// up to the version that outran it. Other bases ignore it (the
    /// default). Must never make `get_time` exceed real commit times: only
    /// timestamps that already back committed data may be passed.
    fn observe_ts(&mut self, ts: Self::Ts) {
        let _ = ts;
    }

    /// Abort feedback: the engine failed an attempt that used this clock.
    ///
    /// GV5-style bases (commit = read + 1, counter never incremented on
    /// commit) rely on this to advance the shared counter past timestamps
    /// that already back committed versions — without it, readers whose
    /// `get_time` lags those versions would retry forever. Other bases
    /// ignore it (the default).
    ///
    /// Implementations must bound the advance by timestamps known to back
    /// committed (readable) state: a commit time handed out by
    /// [`acquire_commit_ts`](Self::acquire_commit_ts) is *tentative* until
    /// the engine publishes it — engines call `note_abort` precisely when
    /// an attempt (including its validation after acquiring a commit time)
    /// failed, and leaking such a timestamp into readable time would hand
    /// readers a snapshot time at an in-flight committer's commit time.
    fn note_abort(&mut self) {}
}

/// Start of the process-wide monotonic epoch. All real-time-flavoured time
/// bases in this crate derive their readings from one shared [`Instant`], so
/// readings taken by different threads are mutually consistent (Linux
/// `CLOCK_MONOTONIC` is globally coherent across CPUs, which is exactly the
/// "perfectly synchronized clock" hardware assumption of §3.1).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Offset added to all nanosecond readings so that downstream arithmetic
/// (e.g. `ts - dev` for externally synchronized clocks, `prior()`) can never
/// underflow near process start. Roughly 18 minutes.
pub const EPOCH_OFFSET_NS: u64 = 1 << 40;

/// Read the shared monotonic clock, in nanoseconds since an arbitrary (but
/// process-wide) epoch. This is the raw oscillator from which
/// [`crate::perfect::PerfectClock`], [`crate::hardware::HardwareClock`] and
/// [`crate::external::ExternalClock`] synthesize their readings.
#[inline]
pub fn monotonic_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64 + EPOCH_OFFSET_NS
}

/// Busy-wait for approximately `ns` nanoseconds. Used by the latency-emulating
/// time bases ([`crate::hardware::HardwareClock`] read cost,
/// [`crate::numa::NumaCounter`] remote-miss cost). Spinning (rather than
/// sleeping) matches what the modeled hardware does: the CPU is stalled on an
/// uncached load for the duration.
#[inline]
pub fn spin_for_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_ns_is_monotonic_and_offset() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
        assert!(a >= EPOCH_OFFSET_NS);
    }

    #[test]
    fn monotonic_ns_consistent_across_threads() {
        // A reading taken *after* a handshake must be >= a reading taken
        // before it, even when the two readings come from different threads:
        // this is the global-coherence property the paper's perfectly
        // synchronized clocks provide.
        let before = monotonic_ns();
        let from_thread = std::thread::spawn(monotonic_ns).join().unwrap();
        let after = monotonic_ns();
        assert!(from_thread >= before);
        assert!(after >= from_thread);
    }

    #[test]
    fn spin_for_ns_waits_at_least_that_long() {
        let start = Instant::now();
        spin_for_ns(200_000); // 200 µs
        assert!(start.elapsed().as_nanos() >= 200_000);
    }

    #[test]
    fn spin_for_zero_returns_immediately() {
        spin_for_ns(0);
    }

    #[test]
    fn commit_ts_accessors() {
        assert_eq!(CommitTs::Exclusive(7u64).ts(), 7);
        assert_eq!(CommitTs::Shared(9u64).ts(), 9);
        assert!(!CommitTs::Exclusive(7u64).is_shared());
        assert!(CommitTs::Shared(9u64).is_shared());
        assert_eq!(CommitTs::Exclusive(7u64).class(), "exclusive");
        assert_eq!(CommitTs::Shared(9u64).class(), "shared");
    }

    #[test]
    fn default_arbitration_is_conservative_shared_get_new_ts() {
        // A clock that only implements the mandatory methods inherits a
        // sound (if trick-free) arbitration protocol: fresh timestamps,
        // but no exclusivity claim an engine could build a fast path on.
        struct Seq(u64);
        impl ThreadClock for Seq {
            type Ts = u64;
            fn get_time(&mut self) -> u64 {
                self.0
            }
            fn get_new_ts(&mut self) -> u64 {
                self.0 += 1;
                self.0
            }
        }
        let mut c = Seq(10);
        let ct = c.acquire_commit_ts(10);
        assert_eq!(ct, CommitTs::Shared(11));
        assert_eq!(c.get_ts_block(3), vec![12, 13, 14]);
        c.note_abort(); // default: no-op
        assert_eq!(c.get_time(), 14);
    }
}
