//! Time-base conformance checks: the contract suite every [`TimeBase`] must
//! pass, mirroring the engine-level suite in `lsa_engine::conformance`.
//!
//! The `getTime`/`getNewTS` contracts used to be asserted ad hoc per base in
//! `tests/clock_properties.rs`; the commit-arbitration redesign added
//! per-base *classes* of guarantees ([`TimeBaseInfo`]) that deserve uniform
//! checking: what exactly does `get_new_ts` promise across threads? Are
//! reserved blocks really disjoint? Does `acquire_commit_ts` always clear
//! the caller's observation? This module answers those questions generically
//! so every base — including the GV4/GV5/block arbitration variants — is
//! certified by the same code, and a new base inherits the suite by being
//! added to the `timebase_conformance` integration test.
//!
//! The checkers panic with the base's name on violation; they are meant to
//! run under `cargo test` (see `crates/time/tests/timebase_conformance.rs`,
//! which also drives [`thread_contract`] from proptest-generated patterns).

use crate::base::{ThreadClock, TimeBase, Uniqueness};
use crate::sharded::ShardedTimeBase;
use crate::timestamp::Timestamp;

/// One operation of a [`thread_contract`] pattern.
#[derive(Clone, Copy, Debug)]
pub enum ClockOp {
    /// `get_time` — monotonically non-decreasing.
    Time,
    /// `get_new_ts` — strictly increasing.
    NewTs,
    /// `acquire_commit_ts(latest observation)` — strictly increasing.
    Commit,
    /// `get_ts_block(n)` — every value strictly increasing.
    Block(usize),
}

/// Strictly-after check that works for totally ordered timestamps and for
/// same-clock externally synchronized timestamps alike: later `ge` earlier,
/// and not equal.
fn strictly_after<Ts: Timestamp>(later: Ts, earlier: Ts) -> bool {
    later.ge(earlier) && later != earlier
}

/// Per-thread contract under an arbitrary interleaving of all four clock
/// operations:
///
/// * `get_time` never moves backwards *relative to earlier `get_time`
///   calls*. It may legitimately return less than an earlier `get_new_ts`
///   result: lazy bases (GV5, block reservation) hand out commit times that
///   run ahead of the *published* time readers are allowed to observe.
/// * `get_new_ts`, `acquire_commit_ts` and every `get_ts_block` value are
///   strictly greater than **everything** previously returned to the thread
///   (any operation).
/// * `acquire_commit_ts` strictly clears the observation passed in, and
///   bases advertising [`Uniqueness::Unique`] never report a shared commit
///   timestamp.
pub fn thread_contract<B: TimeBase>(tb: &B, ops: &[ClockOp]) {
    let info = tb.info();
    let name = info.name;
    let mut clock = tb.register_thread();
    // Join of every value returned so far (strict ops must clear it) and
    // the last get_time reading (get_time must not fall below it).
    let mut seen: Option<B::Ts> = None;
    let mut last_time: Option<B::Ts> = None;
    fn fold<Ts: Timestamp>(acc: &mut Option<Ts>, t: Ts) {
        *acc = Some(match *acc {
            Some(prev) => prev.join(t),
            None => t,
        });
    }
    let mut time = |clock: &mut B::Clock, seen: &mut Option<B::Ts>| {
        let t = clock.get_time();
        if let Some(prev) = last_time {
            assert!(
                t.ge(prev),
                "{name}: get_time moved backwards: {t:?} after {prev:?}"
            );
        }
        last_time = Some(t);
        fold(seen, t);
        t
    };
    let strict = |t: B::Ts, seen: &mut Option<B::Ts>| {
        if let Some(prev) = *seen {
            assert!(
                strictly_after(t, prev),
                "{name}: strict op returned {t:?} after seeing {prev:?}"
            );
        }
        fold(seen, t);
    };
    for &op in ops {
        match op {
            ClockOp::Time => {
                time(&mut clock, &mut seen);
            }
            ClockOp::NewTs => {
                let t = clock.get_new_ts();
                strict(t, &mut seen);
            }
            ClockOp::Commit => {
                let observed = time(&mut clock, &mut seen);
                let ct = clock.acquire_commit_ts(observed);
                assert!(
                    strictly_after(ct.ts(), observed),
                    "{name}: commit ts {:?} does not clear observation {observed:?}",
                    ct.ts()
                );
                if info.uniqueness == Uniqueness::Unique {
                    assert!(
                        !ct.is_shared(),
                        "{name}: advertises unique timestamps but shared {:?}",
                        ct.ts()
                    );
                }
                strict(ct.ts(), &mut seen);
            }
            ClockOp::Block(n) => {
                for t in clock.get_ts_block(n) {
                    strict(t, &mut seen);
                }
            }
        }
    }
}

/// Cross-thread `get_new_ts` uniqueness for bases advertising
/// [`Uniqueness::Unique`]: no two calls, on any thread, return the same
/// value.
pub fn new_ts_cross_thread_unique<B: TimeBase>(tb: &B, threads: usize, per: usize) {
    let name = tb.info().name;
    assert_eq!(
        tb.info().uniqueness,
        Uniqueness::Unique,
        "{name}: uniqueness check only applies to Unique bases"
    );
    let mut all = collect_values(tb, threads, |clock, out| {
        for _ in 0..per {
            out.push(clock.get_new_ts().raw_value());
        }
    });
    let n = all.len();
    assert_eq!(n, threads * per, "{name}: lost timestamps");
    all.sort_unstable();
    all.dedup();
    assert_eq!(n, all.len(), "{name}: get_new_ts returned duplicates");
}

/// Cross-thread exclusivity of commit timestamps: whatever the base's
/// sharing behaviour, a [`crate::base::CommitTs::Exclusive`] value must
/// never collide with **any** other arbitrated commit timestamp —
/// exclusive *or* shared. A winner reported `Exclusive` whose value a
/// concurrent loser adopts as `Shared` is precisely the violation that
/// breaks engines' exclusivity fast paths (TL2's `wv == rv + 1`
/// validation skip), and the one an exclusive-vs-exclusive check alone
/// cannot see. (For [`Uniqueness::BestEffort`] bases exclusivity is not
/// meaningful and the check is skipped by [`full_suite`].)
pub fn exclusive_commit_ts_unique<B: TimeBase>(tb: &B, threads: usize, per: usize) {
    let name = tb.info().name;
    let mut all: Vec<(i128, bool)> = collect_values(tb, threads, |clock, out| {
        for _ in 0..per {
            let observed = clock.get_time();
            let ct = clock.acquire_commit_ts(observed);
            assert!(
                strictly_after(ct.ts(), observed),
                "{name}: commit ts does not clear observation under contention"
            );
            out.push((ct.ts().raw_value(), ct.is_shared()));
        }
    });
    assert_eq!(all.len(), threads * per, "{name}: lost commit timestamps");
    all.sort_unstable();
    for run in all.chunk_by(|a, b| a.0 == b.0) {
        if run.len() > 1 {
            assert!(
                run.iter().all(|&(_, shared)| shared),
                "{name}: exclusive commit timestamp {} was also handed to \
                 another committer",
                run[0].0
            );
        }
    }
}

/// Concurrent block reservations for bases advertising unique blocks: all
/// values of all blocks, across all threads, are pairwise distinct.
///
/// Reservations are interleaved with commit acquisitions on the same
/// clocks: lazy bases (GV5, block reservation) let a thread's commit
/// frontier run ahead of the shared counter, and a reservation taken from
/// such a run-ahead clock is exactly where a careless implementation hands
/// out overlapping ranges.
pub fn blocks_are_disjoint<B: TimeBase>(tb: &B, threads: usize, calls: usize, n: usize) {
    let name = tb.info().name;
    assert_eq!(
        tb.info().block_uniqueness,
        Uniqueness::Unique,
        "{name}: block-uniqueness check only applies to Unique blocks"
    );
    let mut all = collect_values(tb, threads, |clock, out| {
        for call in 0..calls {
            // Let the commit frontier run ahead of the counter on lazy
            // bases before every other reservation.
            if call % 2 == 0 {
                let observed = clock.get_time();
                clock.acquire_commit_ts(observed);
            }
            let before = clock.get_time();
            let block = clock.get_ts_block(n);
            assert_eq!(block.len(), n, "{name}: short block");
            let mut prev = before;
            for &t in &block {
                assert!(
                    strictly_after(t, prev),
                    "{name}: block value {t:?} after {prev:?}"
                );
                prev = t;
            }
            out.extend(block.into_iter().map(|t| t.raw_value()));
        }
    });
    let total = all.len();
    assert_eq!(total, threads * calls * n, "{name}: lost block values");
    all.sort_unstable();
    all.dedup();
    assert_eq!(total, all.len(), "{name}: reserved blocks overlap");
}

/// Spawn `threads` clocks, run `body` on each, and collect the values
/// every thread pushed.
fn collect_values<B, T, F>(tb: &B, threads: usize, body: F) -> Vec<T>
where
    B: TimeBase,
    T: Send,
    F: Fn(&mut B::Clock, &mut Vec<T>) + Sync,
{
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let mut clock = tb.register_thread();
                let body = &body;
                s.spawn(move || {
                    let mut out = Vec::new();
                    body(&mut clock, &mut out);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
}

/// Tiny deterministic generator (same shape as the engine conformance
/// suite's) so [`full_suite`] needs no external dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0 >> 11
    }
}

/// A deterministic mixed-operation pattern for [`thread_contract`].
pub fn mixed_ops(seed: u64, len: usize) -> Vec<ClockOp> {
    let mut rng = Lcg(seed);
    (0..len)
        .map(|_| match rng.next() % 4 {
            0 => ClockOp::Time,
            1 => ClockOp::NewTs,
            2 => ClockOp::Commit,
            _ => ClockOp::Block(1 + (rng.next() % 5) as usize),
        })
        .collect()
}

/// The whole conformance suite at test-friendly sizes, selecting checks by
/// the base's advertised [`TimeBaseInfo`] classes. One call certifies a
/// base; `note_abort` is exercised for crash-freedom on every base.
pub fn full_suite<B: TimeBase>(tb: &B) {
    let info = tb.info();
    for seed in [1u64, 0xBEE5, 0xC0FFEE] {
        thread_contract(tb, &mixed_ops(seed, 60));
    }
    // Abort feedback must be callable at any point without disturbing the
    // per-thread contract.
    {
        let mut clock = tb.register_thread();
        let a = clock.get_new_ts();
        clock.note_abort();
        let b = clock.get_new_ts();
        assert!(
            strictly_after(b, a),
            "{}: note_abort broke monotonicity",
            info.name
        );
    }
    if info.uniqueness != Uniqueness::BestEffort {
        exclusive_commit_ts_unique(tb, 4, 1_000);
    }
    if info.uniqueness == Uniqueness::Unique {
        new_ts_cross_thread_unique(tb, 4, 1_000);
    }
    if info.block_uniqueness == Uniqueness::Unique {
        blocks_are_disjoint(tb, 4, 100, 7);
    }
}

/// Per-shard `get_ts_block` domains of a [`ShardedTimeBase`] must be
/// pairwise disjoint — across shards *and* across threads within a shard.
/// This is the property the sharded STM's per-shard id spaces and epoch
/// allocation build on. The check drives shard-*pinned* composite clocks
/// ([`ShardedTimeBase::shard_clock`]), i.e. the same routing a
/// single-shard transaction uses inside the engine, so a composite whose
/// internal per-shard clocks developed overlapping block state would fail
/// here even if its default (shard-0) path stayed clean.
pub fn sharded_blocks_disjoint<B: TimeBase>(tb: &ShardedTimeBase<B>, calls: usize, n: usize) {
    let name = tb.info().name;
    let mut all: Vec<i128> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..tb.shards())
            .map(|shard| {
                let mut clock = tb.shard_clock(shard);
                s.spawn(move || {
                    let mut out = Vec::new();
                    for _ in 0..calls {
                        out.extend(clock.get_ts_block(n).into_iter().map(|t| t.raw_value()));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let total = all.len();
    assert_eq!(total, tb.shards() * calls * n, "{name}: lost block values");
    all.sort_unstable();
    all.dedup();
    assert_eq!(total, all.len(), "{name}: per-shard block domains overlap");
}

/// Per-shard commit monotonicity in the composite's *global* form: a commit
/// timestamp arbitrated through shard `i`'s clock strictly exceeds every
/// reading any thread previously took through any *other* shard's clock.
/// This is the cross-shard half of the §2.4 strictness property — the one
/// that keeps validity claims carried across shards sound — and it holds
/// precisely because all shard clocks share one inner domain.
pub fn sharded_commit_monotonic_across_shards<B: TimeBase>(tb: &ShardedTimeBase<B>, rounds: usize) {
    let name = tb.info().name;
    let shards = tb.shards();
    let mut clocks: Vec<_> = (0..shards).map(|s| tb.shard_clock(s)).collect();
    for round in 0..rounds {
        let reader = round % shards;
        let committer = (round + 1 + round % (shards.max(2) - 1)) % shards;
        let observed = clocks[reader].get_time();
        let own = clocks[committer].get_time();
        let ct = clocks[committer].acquire_commit_ts(own);
        assert!(
            strictly_after(ct.ts(), observed),
            "{name}: shard {committer} commit {:?} does not clear shard \
             {reader}'s earlier reading {observed:?}",
            ct.ts()
        );
    }
}

/// Cross-shard exclusivity: commit timestamps arbitrated concurrently
/// through *different shards'* clocks must never collide when reported
/// [`crate::base::CommitTs::Exclusive`] — a per-shard arbitration that
/// leaked the same value to two shards would break every engine fast path
/// built on exclusivity, and is exactly the collision an unsharded
/// uniqueness check cannot see.
pub fn sharded_exclusive_no_cross_shard_collision<B: TimeBase>(
    tb: &ShardedTimeBase<B>,
    per: usize,
) {
    let name = tb.info().name;
    let mut all: Vec<(i128, bool)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..tb.shards())
            .map(|shard| {
                let mut clock = tb.shard_clock(shard);
                s.spawn(move || {
                    let mut out = Vec::new();
                    for _ in 0..per {
                        let observed = clock.get_time();
                        let ct = clock.acquire_commit_ts(observed);
                        out.push((ct.ts().raw_value(), ct.is_shared()));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(
        all.len(),
        tb.shards() * per,
        "{name}: lost commit timestamps"
    );
    all.sort_unstable();
    for run in all.chunk_by(|a, b| a.0 == b.0) {
        if run.len() > 1 {
            assert!(
                run.iter().all(|&(_, shared)| shared),
                "{name}: exclusive commit timestamp {} was arbitrated on two \
                 different shards",
                run[0].0
            );
        }
    }
}

/// The sharded composition suite: the composite passes the *whole* standard
/// suite (it is a [`TimeBase`] like any other), plus the three properties
/// sharding adds — per-shard block-domain disjointness, cross-shard commit
/// monotonicity, and no cross-shard `Exclusive` collision. One call
/// certifies a composite; drive it per inner base from
/// `crates/time/tests/timebase_conformance.rs`.
pub fn sharded_suite<B: TimeBase>(tb: &ShardedTimeBase<B>) {
    full_suite(tb);
    sharded_multi_shard_thread_contract(tb, 0xD1CE, 120);
    sharded_blocks_disjoint(tb, 50, 5);
    sharded_commit_monotonic_across_shards(tb, 400);
    if tb.info().uniqueness != Uniqueness::BestEffort {
        sharded_exclusive_no_cross_shard_collision(tb, 1_000);
    }
}

/// The per-thread strictness contract under *varying shard selections*:
/// one composite clock, with the touch mask re-chosen before every
/// operation and commit acquisitions alternating between single-shard
/// (unarmed) and chained cross-shard (armed) arbitration, interleaved with
/// `get_ts_block` and `get_new_ts` — each strict result must clear
/// everything the composite previously returned regardless of which shard
/// clock served it. This is the multi-shard case the plain
/// [`thread_contract`] (which never selects shards) cannot reach: a
/// composite whose internal per-shard clocks cached stale block or
/// arbitration state would fail here while the shard-0 path stayed clean.
pub fn sharded_multi_shard_thread_contract<B: TimeBase>(
    tb: &ShardedTimeBase<B>,
    seed: u64,
    ops: usize,
) {
    let name = tb.info().name;
    let shards = tb.shards();
    let mut clock = tb.register_thread();
    let touch = clock.touch_set();
    let mut rng = Lcg(seed);
    let mut seen: Option<B::Ts> = None;
    let strict = |t: B::Ts, seen: &mut Option<B::Ts>, what: &str| {
        if let Some(prev) = *seen {
            assert!(
                strictly_after(t, prev),
                "{name}: {what} returned {t:?} after the composite already \
                 handed out {prev:?}"
            );
        }
        *seen = Some(match *seen {
            Some(prev) => prev.join(t),
            None => t,
        });
    };
    for _ in 0..ops {
        touch.clear();
        touch.touch(rng.next() as usize % shards);
        if rng.next().is_multiple_of(2) {
            touch.touch(rng.next() as usize % shards);
        }
        match rng.next() % 4 {
            0 => {
                let t = clock.get_new_ts();
                strict(t, &mut seen, "get_new_ts");
            }
            1 => {
                // Unarmed: single-shard helper/prelim-style arbitration.
                let observed = clock.get_time();
                let ct = clock.acquire_commit_ts(observed);
                strict(ct.ts(), &mut seen, "unarmed acquire_commit_ts");
            }
            2 => {
                // Armed: the chained cross-shard commit acquisition.
                touch.arm_commit();
                let observed = clock.get_time();
                let ct = clock.acquire_commit_ts(observed);
                assert!(
                    strictly_after(ct.ts(), observed),
                    "{name}: armed arbitration did not clear the observation"
                );
                strict(ct.ts(), &mut seen, "armed acquire_commit_ts");
            }
            _ => {
                for t in clock.get_ts_block(1 + rng.next() as usize % 5) {
                    strict(t, &mut seen, "get_ts_block");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::SharedCounter;

    #[test]
    fn mixed_ops_is_deterministic() {
        let a = format!("{:?}", mixed_ops(7, 16));
        let b = format!("{:?}", mixed_ops(7, 16));
        assert_eq!(a, b);
    }

    #[test]
    fn suite_passes_on_the_reference_base() {
        full_suite(&SharedCounter::new());
    }
}
