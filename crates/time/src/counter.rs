//! Shared-integer-counter time bases (§1.2 of the paper) and their
//! contention-avoiding commit-arbitration variants.
//!
//! The classical time base of LSA and TL2: a single global integer counter,
//! read at every transaction start (`getTime`) and incremented by every
//! committing update transaction (`getNewTS`). On small multi-cores the cost
//! is negligible; on larger machines every increment causes cache misses in
//! *all* concurrent transactions, which is precisely the bottleneck the paper
//! sets out to remove (§4.2, Figure 2).
//!
//! Four variants are provided, in increasing order of arbitration trickery:
//!
//! * [`SharedCounter`] — plain `fetch_add` counter; every commit is an
//!   exclusive RMW ([`ContentionClass::SharedRmw`]).
//! * [`Gv4Counter`] — TL2's **GV4** optimization: a transaction whose
//!   timestamp-acquiring compare-and-swap fails *adopts* the timestamp
//!   installed by the winner instead of retrying. Because a loser can be
//!   handed exactly the value the winner installed, *every* GV4 commit
//!   timestamp is [`CommitTs::Shared`] — winners included — and the base is
//!   not commit-monotonic (an adopted value was readable before the loser
//!   commits with it). The paper reports GV4 "showed no advantages on our
//!   hardware" (§4.2); the [`Gv4Counter::shared_acquisitions`] statistic
//!   lets the benchmarks verify both behaviours.
//! * [`Gv5Counter`] — TL2's **GV5**: the commit time is a *plain read* of
//!   the counter plus one; the counter is never incremented on commit, only
//!   on abort (via [`ThreadClock::note_abort`]) so lagging readers catch up.
//!   Commits cause no invalidation traffic at all, paid for with extra
//!   aborts ([`ContentionClass::LoadOnly`]).
//! * [`BlockCounter`] — batched allocation: each thread reserves blocks of
//!   `k` timestamps with one RMW on a *reservation* counter, and publishes
//!   the values it actually uses to a separate *commit frontier* with
//!   `fetch_max`. Readers only touch the frontier; allocation traffic is
//!   amortized `k`-fold. A lost `fetch_max` discards the stale value and
//!   re-arbitrates with the next reserved value — never adopts — so every
//!   commit timestamp is exclusively owned, globally unique, and
//!   commit-monotonic. See the module-level soundness discussion below.
//!
//! ## Why batched timestamps still need a published frontier
//!
//! A naïvely batched counter (hand out `[B, B+k)` and let `getTime` read the
//! allocation frontier) is **unsound** for time-based STMs: a reader that
//! observes the frontier at `B+k` may conclude a version is valid until
//! `B+k`, after which a buffered committer supersedes that version at some
//! `v < B+k` from its stale block — a consistency violation (§2.4 requires
//! commit times to strictly exceed every previously readable clock value).
//! [`BlockCounter`] therefore keeps the *issued* frontier separate: readers
//! see only published commit times, and a committer confirms a block value
//! `v` by `fetch_max(frontier, v)` — if the frontier already moved past `v`,
//! the value is stale, gets discarded, and the committer re-arbitrates with
//! its next fresh block value (re-reserving when the block runs dry).
//! Adopting the frontier value GV4-style would be unsound twice over: the
//! adopter would commit at a previously readable value (forfeiting commit
//! monotonicity), and the winner's supposedly exclusive timestamp would be
//! handed to a second committer (forfeiting the [`CommitTs::Exclusive`]
//! contract engines build validation-skip fast paths on). Only the
//! reservation traffic amortizes; publication remains one RMW per commit —
//! which is exactly the paper's skepticism about counter batching, now
//! stated as an API-level invariant (DESIGN.md §8).

use crate::base::{CommitTs, ContentionClass, ThreadClock, TimeBase, TimeBaseInfo, Uniqueness};
use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The classical global shared integer counter time base.
///
/// `getTime` is a single atomic load; `getNewTS` is a `fetch_add(1)` whose
/// result is strictly greater than every previously published timestamp,
/// satisfying the `getNewTS` contract trivially. The counter is cache-padded
/// so that the *only* sharing the benchmarks observe is the true sharing of
/// the counter itself, not false sharing with neighbouring data.
#[derive(Clone, Debug, Default)]
pub struct SharedCounter {
    counter: Arc<CachePadded<AtomicU64>>,
}

impl SharedCounter {
    /// Create a counter starting at 1 (0 is never produced, so callers can
    /// use 0 as an "unset" sentinel as the paper does with `T.CT ← 0`).
    pub fn new() -> Self {
        SharedCounter {
            counter: Arc::new(CachePadded::new(AtomicU64::new(1))),
        }
    }

    /// Current raw value of the counter (for statistics/tests).
    pub fn current(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }
}

/// Per-thread handle to a [`SharedCounter`].
#[derive(Clone, Debug)]
pub struct SharedCounterClock {
    counter: Arc<CachePadded<AtomicU64>>,
}

impl TimeBase for SharedCounter {
    type Ts = u64;
    type Clock = SharedCounterClock;

    fn register_thread(&self) -> SharedCounterClock {
        SharedCounterClock {
            counter: Arc::clone(&self.counter),
        }
    }

    fn info(&self) -> TimeBaseInfo {
        TimeBaseInfo {
            name: "shared-counter",
            uniqueness: Uniqueness::Unique,
            // `get_ts_block` reserves a disjoint range with one fetch_add.
            block_uniqueness: Uniqueness::Unique,
            contention: ContentionClass::SharedRmw,
            commit_monotonic: true,
        }
    }
}

impl ThreadClock for SharedCounterClock {
    type Ts = u64;

    #[inline]
    fn get_time(&mut self) -> u64 {
        // Acquire: a transaction that observes counter value t must also
        // observe all writes of the transactions that committed at <= t.
        self.counter.load(Ordering::Acquire)
    }

    #[inline]
    fn get_new_ts(&mut self) -> u64 {
        // AcqRel: the increment both publishes our commit (Release) and
        // brings us up to date with earlier committers (Acquire).
        self.counter.fetch_add(1, Ordering::AcqRel) + 1
    }

    #[inline]
    fn acquire_commit_ts(&mut self, observed: u64) -> CommitTs<u64> {
        // fetch_add results are globally unique, so the arbitration outcome
        // is always exclusive — no tricks, full cache-line contention.
        let _ = observed; // always exceeded: the counter is >= any reading
        CommitTs::Exclusive(self.get_new_ts())
    }

    fn get_ts_block(&mut self, n: usize) -> Vec<u64> {
        // One RMW reserves the whole block; the values are globally unique
        // (disjoint ranges) and strictly increasing, but NOT real-time
        // ordered — see the trait-level contract.
        let base = self.counter.fetch_add(n as u64, Ordering::AcqRel);
        (1..=n as u64).map(|i| base + i).collect()
    }
}

/// TL2's **GV4** counter: on a failed timestamp-acquiring CAS the
/// transaction adopts the winner's timestamp instead of retrying (§1.2).
///
/// Sharing a commit timestamp is sound for time-based STMs because two
/// transactions may commit at the same time as long as they do not conflict
/// (§2.3) — and conflicting transactions are serialized by the object-level
/// write protocol, never by the counter. Two consequences for the
/// arbitration contract:
///
/// * **Every commit timestamp is [`CommitTs::Shared`] — winners included.**
///   A CAS winner's value is exactly what a concurrent loser adopts, so the
///   winner can never promise that no other committer holds its timestamp;
///   reporting it [`CommitTs::Exclusive`] would let engines skip read-set
///   validation (TL2's `wv == rv + 1` shortcut) while an adopter that holds
///   locks commits at the very same instant. This is why classic TL2
///   forbids the `rv + 1` shortcut under GV4.
/// * **The base is not commit-monotonic.** An adopted value equals a
///   counter value the winner already installed, so a reader can observe
///   `get_time` at the adopted timestamp before the loser commits with it.
///   Engines that issue forward validity claims (LSA's `getPrelimUB`)
///   must refuse this base, exactly like GV5; TL2, which re-checks every
///   read against `rv`, is the intended consumer.
#[derive(Clone, Debug, Default)]
pub struct Gv4Counter {
    counter: Arc<CachePadded<AtomicU64>>,
    shared: Arc<CachePadded<AtomicU64>>,
}

impl Gv4Counter {
    /// Create a counter starting at 1.
    pub fn new() -> Self {
        Gv4Counter {
            counter: Arc::new(CachePadded::new(AtomicU64::new(1))),
            shared: Arc::new(CachePadded::new(AtomicU64::new(0))),
        }
    }

    /// Current raw value of the counter (for statistics/tests).
    pub fn current(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }

    /// How many commit-time acquisitions returned a timestamp installed by
    /// another thread (i.e. how often the optimization actually fired).
    pub fn shared_acquisitions(&self) -> u64 {
        self.shared.load(Ordering::Relaxed)
    }
}

/// Per-thread handle to a [`Gv4Counter`].
#[derive(Clone, Debug)]
pub struct Gv4CounterClock {
    counter: Arc<CachePadded<AtomicU64>>,
    shared: Arc<CachePadded<AtomicU64>>,
    /// Largest timestamp this thread has returned so far; the shared-on-failure
    /// path may only return values strictly greater than this.
    last_seen: u64,
}

impl TimeBase for Gv4Counter {
    type Ts = u64;
    type Clock = Gv4CounterClock;

    fn register_thread(&self) -> Gv4CounterClock {
        Gv4CounterClock {
            counter: Arc::clone(&self.counter),
            shared: Arc::clone(&self.shared),
            last_seen: 0,
        }
    }

    fn info(&self) -> TimeBaseInfo {
        TimeBaseInfo {
            name: "gv4",
            uniqueness: Uniqueness::SharedUnderContention,
            block_uniqueness: Uniqueness::Unique,
            contention: ContentionClass::AdoptingRmw,
            // An adopted value equals a counter value the winner already
            // installed, so a reader can observe get_time at the adopted
            // timestamp before the loser commits with it — a commit at a
            // value <= a previously readable reading. Engines whose
            // validity reasoning issues forward claims (LSA) reject this
            // base at construction; see DESIGN.md §8.
            commit_monotonic: false,
        }
    }
}

impl Gv4CounterClock {
    /// The GV4 arbitration loop: CAS to increment; on failure, adopt the
    /// observed winner value when it is fresh for this thread (strictly
    /// above both `floor` and everything previously returned).
    ///
    /// Every outcome — the winner's included — is [`CommitTs::Shared`]: a
    /// concurrent loser adopts exactly the value a winner installs, so no
    /// GV4 timestamp can carry the [`CommitTs::Exclusive`] guarantee that
    /// no other committer holds it.
    #[inline]
    fn arbitrate(&mut self, floor: u64) -> CommitTs<u64> {
        let floor = floor.max(self.last_seen);
        let mut cur = self.counter.load(Ordering::Acquire);
        loop {
            match self.counter.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.last_seen = self.last_seen.max(cur + 1);
                    return CommitTs::Shared(cur + 1);
                }
                Err(observed) => {
                    // GV4: adopt the winner's timestamp — but only if it
                    // satisfies the strict getNewTS contract for this
                    // thread and exceeds the caller's own observations.
                    if observed > floor {
                        self.shared.fetch_add(1, Ordering::Relaxed);
                        self.last_seen = observed;
                        return CommitTs::Shared(observed);
                    }
                    cur = observed;
                }
            }
        }
    }
}

impl ThreadClock for Gv4CounterClock {
    type Ts = u64;

    #[inline]
    fn get_time(&mut self) -> u64 {
        let t = self.counter.load(Ordering::Acquire);
        self.last_seen = self.last_seen.max(t);
        t
    }

    #[inline]
    fn get_new_ts(&mut self) -> u64 {
        self.arbitrate(self.last_seen).ts()
    }

    #[inline]
    fn acquire_commit_ts(&mut self, observed: u64) -> CommitTs<u64> {
        self.arbitrate(observed)
    }

    fn get_ts_block(&mut self, n: usize) -> Vec<u64> {
        let base = self.counter.fetch_add(n as u64, Ordering::AcqRel);
        self.last_seen = self.last_seen.max(base + n as u64);
        (1..=n as u64).map(|i| base + i).collect()
    }
}

/// TL2's **GV5** counter: the commit time is `read + 1` and the counter is
/// *never incremented on commit* — only [`ThreadClock::note_abort`] advances
/// it.
///
/// Commits therefore cause no shared-line invalidation at all
/// ([`ContentionClass::LoadOnly`]): the commit hot path is one load. The
/// price is that the counter lags the committed versions by design, so
/// readers whose snapshots stall behind a committed version abort once and
/// bump the counter on the way out (TL2's companion rule "increment GV on
/// abort") — the [`Gv5Counter::abort_bumps`] statistic counts those.
///
/// Every arbitration returns [`CommitTs::Shared`]: concurrent committers
/// that read the same counter value share `read + 1`, which is sound for
/// non-conflicting transactions (§2.3) and strictly exceeds every counter
/// value readable before the commit (the load happens after the committer
/// becomes visible — §2.4).
#[derive(Clone, Debug, Default)]
pub struct Gv5Counter {
    counter: Arc<CachePadded<AtomicU64>>,
    bumps: Arc<CachePadded<AtomicU64>>,
}

impl Gv5Counter {
    /// Create a counter starting at 1.
    pub fn new() -> Self {
        Gv5Counter {
            counter: Arc::new(CachePadded::new(AtomicU64::new(1))),
            bumps: Arc::new(CachePadded::new(AtomicU64::new(0))),
        }
    }

    /// Current raw value of the counter (for statistics/tests).
    pub fn current(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }

    /// How many aborts advanced the counter (the GV5 catch-up rule).
    pub fn abort_bumps(&self) -> u64 {
        self.bumps.load(Ordering::Relaxed)
    }
}

/// Per-thread handle to a [`Gv5Counter`].
#[derive(Clone, Debug)]
pub struct Gv5CounterClock {
    counter: Arc<CachePadded<AtomicU64>>,
    bumps: Arc<CachePadded<AtomicU64>>,
    /// Largest timestamp this thread has returned so far — including
    /// *tentative* commit times from [`ThreadClock::acquire_commit_ts`]
    /// whose commits may yet fail. Freshness floor for generating new
    /// values; must never leak into the readable counter (see `published`).
    last_seen: u64,
    /// Largest timestamp known to back committed, readable state: the join
    /// of this thread's `get_time` readings and `observe_ts` stamps.
    /// [`ThreadClock::note_abort`] may advance the shared counter only to
    /// here + 1 — tentative commit times of attempts that later fail
    /// validation back no committed data and must stay unreadable.
    published: u64,
}

impl TimeBase for Gv5Counter {
    type Ts = u64;
    type Clock = Gv5CounterClock;

    fn register_thread(&self) -> Gv5CounterClock {
        Gv5CounterClock {
            counter: Arc::clone(&self.counter),
            bumps: Arc::clone(&self.bumps),
            last_seen: 0,
            published: 0,
        }
    }

    fn info(&self) -> TimeBaseInfo {
        TimeBaseInfo {
            name: "gv5",
            uniqueness: Uniqueness::SharedUnderContention,
            block_uniqueness: Uniqueness::Unique,
            contention: ContentionClass::LoadOnly,
            // Commit times deliberately run ahead of the readable counter:
            // a commit at `read + 1` can be smaller than a version stamp
            // another thread already holds. Engines that issue forward
            // validity claims (LSA) must refuse this base.
            commit_monotonic: false,
        }
    }
}

impl ThreadClock for Gv5CounterClock {
    type Ts = u64;

    #[inline]
    fn get_time(&mut self) -> u64 {
        // Readers must only observe *published* time — the counter itself.
        // Own commit times and observed stamps (tracked in `last_seen`) are
        // deliberately not returned: handing unpublished times to readers
        // would let snapshots claim validity at times later commits can
        // still undercut. Successive loads of the monotone counter keep
        // `get_time` non-decreasing per thread.
        let t = self.counter.load(Ordering::Acquire);
        self.last_seen = self.last_seen.max(t);
        self.published = self.published.max(t);
        t
    }

    #[inline]
    fn get_new_ts(&mut self) -> u64 {
        self.acquire_commit_ts(self.last_seen).ts()
    }

    #[inline]
    fn acquire_commit_ts(&mut self, observed: u64) -> CommitTs<u64> {
        // Tentative phase: read the counter fresh (after the caller became
        // visible as a committer); confirmed phase: nothing to win — the
        // value is `read + 1`, shared with every committer that read the
        // same counter value. The result goes into `last_seen` only: it is
        // tentative until the engine's validation passes, so it must not
        // raise the `published` floor note_abort feeds the counter from.
        let g = self.counter.load(Ordering::Acquire);
        self.published = self.published.max(g);
        let v = g.max(self.last_seen).max(observed) + 1;
        self.last_seen = v;
        CommitTs::Shared(v)
    }

    fn get_ts_block(&mut self, n: usize) -> Vec<u64> {
        // Blocks DO advance the counter (they are allocation, not commit) —
        // and because GV5 commit times run ahead of the lazy counter, the
        // reservation must start above this thread's own run-ahead frontier
        // (`last_seen`) too. A plain fetch_add would let a later reservation
        // by another thread overlap the skipped-ahead range, so advance by
        // CAS from max(counter, last_seen): every reservation moves the
        // counter past its own end, keeping reserved ranges pairwise
        // disjoint. (Blocks may still coincide with *commit* timestamps
        // other threads have not published — consistent with the base's
        // `SharedUnderContention` timestamp class.)
        let n = n as u64;
        let mut cur = self.counter.load(Ordering::Acquire);
        loop {
            let base = cur.max(self.last_seen);
            match self.counter.compare_exchange_weak(
                cur,
                base + n,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.last_seen = base + n;
                    // The reservation moved the readable counter itself to
                    // base + n, so the published floor may follow.
                    self.published = self.published.max(base + n);
                    return (1..=n).map(|i| base + i).collect();
                }
                Err(observed) => cur = observed,
            }
        }
    }

    #[inline]
    fn observe_ts(&mut self, ts: u64) {
        // A version stamp the engine read from shared state: a real commit
        // time backing committed data, so folding it into both floors is
        // sound and lets one abort catch this clock up however far the
        // versions ran ahead.
        self.last_seen = self.last_seen.max(ts);
        self.published = self.published.max(ts);
    }

    #[inline]
    fn note_abort(&mut self) {
        // TL2's GV5 companion rule: an abort advances the clock so the
        // retry observes a fresh enough time to reach the versions that
        // made it abort (including any stamp fed in via `observe_ts`). The
        // bump target is the *published* frontier plus one — NOT
        // `last_seen`, which also holds tentative commit times from
        // acquire_commit_ts. TL2 acquires `wv` before validating and calls
        // note_abort when validation fails; bumping past such a `wv` would
        // make get_time exceed timestamps that back no committed data and
        // hand readers an rv at an in-flight committer's commit time.
        let target = self.published + 1;
        self.counter.fetch_max(target, Ordering::AcqRel);
        self.bumps.fetch_add(1, Ordering::Relaxed);
        // The counter itself is now readable at >= target.
        self.published = target;
        self.last_seen = self.last_seen.max(target);
    }
}

/// Default block size of [`BlockCounter`]: one cache line's worth of
/// timestamps per reservation.
pub const DEFAULT_TS_BLOCK: u64 = 64;

/// Batched-allocation counter: per-thread blocks of `k` timestamps from a
/// *reservation* counter, published to a separate *commit frontier* on use.
///
/// * [`ThreadClock::get_ts_block`] / allocation: one `fetch_add(k)` on the
///   reservation counter per `k` timestamps — the amortized path.
/// * [`ThreadClock::get_time`]: a load of the commit *frontier* (only
///   published timestamps are readable, which is what makes block
///   reservation sound — see the module docs).
/// * [`ThreadClock::acquire_commit_ts`]: confirm the next block value `v`
///   with `fetch_max(frontier, v)`. Losing the `fetch_max` means another
///   committer published a higher timestamp first; the stale value is
///   discarded and the next fresh block value re-arbitrated (re-reserving
///   when the block runs dry). Commit timestamps are therefore never
///   shared: every confirmed value is [`CommitTs::Exclusive`], drawn from
///   this thread's disjoint reservation ([`Uniqueness::Unique`]), and
///   strictly exceeds everything previously readable (commit-monotonic).
#[derive(Clone, Debug)]
pub struct BlockCounter {
    /// Allocation frontier: every reserved timestamp is ≤ this.
    reserve: Arc<CachePadded<AtomicU64>>,
    /// Commit frontier: the largest *published* timestamp; `get_time` reads
    /// only this, so unissued block values are never observable.
    issued: Arc<CachePadded<AtomicU64>>,
    refills: Arc<CachePadded<AtomicU64>>,
    block: u64,
}

impl Default for BlockCounter {
    fn default() -> Self {
        Self::new(DEFAULT_TS_BLOCK)
    }
}

impl BlockCounter {
    /// Create a block counter reserving `block` timestamps per refill.
    ///
    /// # Panics
    /// Panics if `block` is 0.
    pub fn new(block: u64) -> Self {
        assert!(block > 0, "block size must be positive");
        BlockCounter {
            reserve: Arc::new(CachePadded::new(AtomicU64::new(1))),
            issued: Arc::new(CachePadded::new(AtomicU64::new(1))),
            refills: Arc::new(CachePadded::new(AtomicU64::new(0))),
            block,
        }
    }

    /// The configured block size.
    pub fn block_size(&self) -> u64 {
        self.block
    }

    /// Current commit frontier (for statistics/tests).
    pub fn current(&self) -> u64 {
        self.issued.load(Ordering::SeqCst)
    }

    /// How many block reservations were performed (allocation RMWs). With
    /// `b` the block size and `c` exclusive commits, `refills ≈ c / b` when
    /// blocks stay fresh — the amortization the batching buys.
    pub fn refills(&self) -> u64 {
        self.refills.load(Ordering::Relaxed)
    }
}

/// Per-thread handle to a [`BlockCounter`].
#[derive(Clone, Debug)]
pub struct BlockCounterClock {
    reserve: Arc<CachePadded<AtomicU64>>,
    issued: Arc<CachePadded<AtomicU64>>,
    refills: Arc<CachePadded<AtomicU64>>,
    block: u64,
    /// Next unissued value of the current block (0 = no block).
    next: u64,
    /// One past the last value of the current block.
    end: u64,
    last_seen: u64,
}

impl TimeBase for BlockCounter {
    type Ts = u64;
    type Clock = BlockCounterClock;

    fn register_thread(&self) -> BlockCounterClock {
        BlockCounterClock {
            reserve: Arc::clone(&self.reserve),
            issued: Arc::clone(&self.issued),
            refills: Arc::clone(&self.refills),
            block: self.block,
            next: 0,
            end: 0,
            last_seen: 0,
        }
    }

    fn info(&self) -> TimeBaseInfo {
        TimeBaseInfo {
            name: "block",
            // Commit times come from disjoint per-thread reservations and
            // lost confirmations are discarded, never adopted — no two
            // acquisitions ever return the same value.
            uniqueness: Uniqueness::Unique,
            block_uniqueness: Uniqueness::Unique,
            contention: ContentionClass::AdoptingRmw,
            // A commit wins its fetch_max only while the frontier is still
            // below its value, and readers only ever see the frontier — so
            // every confirmed commit time strictly exceeds everything
            // previously readable. This holds precisely because lost
            // arbitrations re-arbitrate instead of adopting.
            commit_monotonic: true,
        }
    }
}

impl BlockCounterClock {
    /// Reserve a fresh block `(base, base + n]` from the allocation frontier.
    fn refill(&mut self, n: u64) -> u64 {
        self.refills.fetch_add(1, Ordering::Relaxed);
        self.reserve.fetch_add(n, Ordering::AcqRel)
    }
}

impl ThreadClock for BlockCounterClock {
    type Ts = u64;

    #[inline]
    fn get_time(&mut self) -> u64 {
        // Readers observe the published commit frontier only — raw block
        // reservations (and commit times about to be confirmed) stay
        // invisible until the fetch_max publication.
        let t = self.issued.load(Ordering::Acquire);
        self.last_seen = self.last_seen.max(t);
        t
    }

    #[inline]
    fn get_new_ts(&mut self) -> u64 {
        self.acquire_commit_ts(self.last_seen).ts()
    }

    fn acquire_commit_ts(&mut self, observed: u64) -> CommitTs<u64> {
        let mut floor = self
            .issued
            .load(Ordering::Acquire)
            .max(self.last_seen)
            .max(observed);
        loop {
            // Skip block values at or below the floor: they are stale —
            // readers may already have observed the frontier past them.
            if self.next <= floor {
                self.next = floor + 1;
            }
            if self.next >= self.end {
                // Block exhausted (or fully stale): reserve a new one. The
                // reservation frontier is ≥ every reserved — hence every
                // published — timestamp, so the new block starts above
                // `floor` whenever the floor came from published values;
                // the skip-forward above handles the remaining case of a
                // caller-supplied `observed` floor inside the new block.
                let base = self.refill(self.block);
                self.next = base + 1;
                self.end = base + self.block + 1;
                if self.next <= floor {
                    self.next = floor + 1;
                }
                if self.next >= self.end {
                    continue;
                }
            }
            let v = self.next;
            self.next += 1;
            // Confirm: publish v as the new commit frontier. Winning the
            // fetch_max means no reader could have observed a frontier ≥ v
            // before now — and v comes from this thread's disjoint
            // reservation, so no other committer ever holds it: a sound,
            // exclusively owned, commit-monotonic commit time.
            let prev = self.issued.fetch_max(v, Ordering::AcqRel);
            if prev < v {
                self.last_seen = self.last_seen.max(v);
                return CommitTs::Exclusive(v);
            }
            // Lost: another committer published prev ≥ v first, so v is
            // stale — a reader may already have observed the frontier at
            // prev. Discard it and re-arbitrate with the next fresh block
            // value. Adopting prev GV4-style would be unsound twice over:
            // this commit would land at a previously readable value
            // (forfeiting commit monotonicity), and the winner's exclusive
            // timestamp would be handed to a second committer (forfeiting
            // the Exclusive contract engines build fast paths on).
            self.last_seen = self.last_seen.max(prev);
            floor = prev.max(floor);
        }
    }

    fn get_ts_block(&mut self, n: usize) -> Vec<u64> {
        // Raw reservation: globally unique (disjoint ranges), per-thread
        // fresh (the reservation frontier is ≥ everything this thread ever
        // saw), but NOT published — not usable as commit times directly.
        let base = self.refill(n as u64).max(self.last_seen);
        self.last_seen = base + n as u64;
        (1..=n as u64).map(|i| base + i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_starts_above_zero() {
        let tb = SharedCounter::new();
        let mut c = tb.register_thread();
        assert!(c.get_time() >= 1);
    }

    #[test]
    fn get_new_ts_is_strictly_increasing_per_thread() {
        let tb = SharedCounter::new();
        let mut c = tb.register_thread();
        let mut last = c.get_time();
        for _ in 0..100 {
            let t = c.get_new_ts();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn get_time_sees_other_threads_commits() {
        let tb = SharedCounter::new();
        let mut a = tb.register_thread();
        let mut b = tb.register_thread();
        let t1 = a.get_new_ts();
        assert!(b.get_time() >= t1);
    }

    #[test]
    fn concurrent_new_ts_are_unique_for_plain_counter() {
        let tb = SharedCounter::new();
        let threads = 4;
        let per = 10_000;
        let mut all: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let mut clk = tb.register_thread();
                    s.spawn(move || (0..per).map(|_| clk.get_new_ts()).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            threads * per,
            "plain counter timestamps are unique"
        );
    }

    #[test]
    fn gv4_counter_monotonic_per_thread_under_contention() {
        let tb = Gv4Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let mut clk = tb.register_thread();
                s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..10_000 {
                        let t = clk.get_new_ts();
                        assert!(t > last, "strictly increasing per thread");
                        last = t;
                    }
                });
            }
        });
    }

    #[test]
    fn gv4_counter_may_share_timestamps() {
        let tb = Gv4Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let mut clk = tb.register_thread();
                s.spawn(move || {
                    for _ in 0..50_000 {
                        clk.get_new_ts();
                    }
                });
            }
        });
        // With 4 threads hammering the counter some CASes fail; we only check
        // that the statistic is wired up (0 is possible on a 1-CPU box, so
        // don't assert > 0 — just that the total adds up).
        let issued = tb.current() - 1;
        let shared = tb.shared_acquisitions();
        assert_eq!(issued + shared, 4 * 50_000);
    }

    #[test]
    fn gv4_arbitration_never_claims_exclusivity() {
        // Even an uncontended CAS winner's value is exactly what a
        // concurrent loser would adopt, so GV4 must not report Exclusive —
        // engines build validation-skip fast paths on that claim.
        let tb = Gv4Counter::new();
        let mut c = tb.register_thread();
        let observed = c.get_time();
        let ct = c.acquire_commit_ts(observed);
        assert!(ct.is_shared(), "GV4 commit times are shared-class");
        assert!(ct.ts() > observed);
    }

    #[test]
    fn gv5_commit_never_advances_the_counter() {
        let tb = Gv5Counter::new();
        let mut c = tb.register_thread();
        let g0 = tb.current();
        let t0 = c.get_time();
        let ct = c.acquire_commit_ts(t0);
        assert!(ct.is_shared(), "GV5 commit times are shared-class");
        assert_eq!(ct.ts(), g0 + 1, "commit = read + 1");
        assert_eq!(tb.current(), g0, "counter unchanged by commit");
        // Successive commits on the same thread stay strictly increasing
        // even while the counter stands still.
        let t1 = c.get_time();
        let ct2 = c.acquire_commit_ts(t1);
        assert!(ct2.ts() > ct.ts());
        assert_eq!(tb.current(), g0);
    }

    #[test]
    fn gv5_note_abort_bumps_the_counter() {
        let tb = Gv5Counter::new();
        let mut w = tb.register_thread();
        let mut r = tb.register_thread();
        let w0 = w.get_time();
        let ct = w.acquire_commit_ts(w0).ts();
        assert!(r.get_time() < ct, "reader lags the committed version");
        // The reader's failed attempt advances the clock...
        r.note_abort();
        assert!(tb.abort_bumps() >= 1);
        // ...and a retry by a third party now observes a fresh enough time
        // after enough bumps (one per lagging unit here).
        let mut r2 = tb.register_thread();
        assert!(r2.get_time() >= ct.saturating_sub(1));
    }

    #[test]
    fn gv5_abort_bump_stops_at_the_published_frontier() {
        // Regression: TL2 acquires wv before validating and calls
        // note_abort when validation fails. Such a wv backs no committed
        // data, so the abort bump must not push the readable counter past
        // it — only one past the published frontier (get_time readings and
        // observe_ts stamps).
        let tb = Gv5Counter::new();
        let mut c = tb.register_thread();
        let t0 = c.get_time();
        let mut wv = 0;
        for _ in 0..3 {
            // Three tentative commit times whose commits all "fail":
            // last_seen runs ahead to 4 while nothing was published.
            wv = c.acquire_commit_ts(t0).ts();
        }
        assert_eq!(wv, 4);
        c.note_abort();
        assert_eq!(
            tb.current(),
            2,
            "abort may advance the counter one past the published frontier only"
        );
        // Once a stamp is known to back committed data (observe_ts), one
        // abort reaches past it as before.
        c.observe_ts(wv);
        c.note_abort();
        assert!(tb.current() > wv);
    }

    #[test]
    fn gv5_commit_exceeds_every_prior_reading() {
        let tb = Gv5Counter::new();
        let mut a = tb.register_thread();
        let mut b = tb.register_thread();
        for _ in 0..200 {
            let before = a.get_time();
            let b0 = b.get_time();
            let fresh = b.acquire_commit_ts(b0).ts();
            assert!(fresh > before, "commit time must exceed prior readings");
            b.note_abort(); // keep the counter moving so readings vary
        }
    }

    #[test]
    fn gv5_blocks_stay_disjoint_after_run_ahead_commits() {
        // Regression: GV5 commits run ahead of the lazy counter
        // (last_seen > counter). A reservation by the run-ahead thread must
        // advance the counter past its skipped-ahead range, or another
        // thread's later reservation overlaps it.
        let tb = Gv5Counter::new();
        let mut a = tb.register_thread();
        let mut b = tb.register_thread();
        for _ in 0..5 {
            let t = a.get_time();
            a.acquire_commit_ts(t); // counter never advances; a.last_seen does
        }
        let block_a = a.get_ts_block(4);
        let block_b = b.get_ts_block(8);
        for v in &block_a {
            assert!(
                !block_b.contains(v),
                "blocks overlap: {block_a:?} vs {block_b:?}"
            );
        }
        assert!(block_b[0] > *block_a.last().unwrap());
    }

    #[test]
    fn block_counter_commit_ts_are_exclusive_and_unique() {
        // Lost confirmations are discarded, never adopted: every
        // acquisition is Exclusive and no value is ever handed out twice.
        let tb = BlockCounter::new(8);
        let threads = 4;
        let per = 10_000usize;
        let mut all: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let mut clk = tb.register_thread();
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for _ in 0..per {
                            let observed = clk.get_time();
                            let ct = clk.acquire_commit_ts(observed);
                            assert!(!ct.is_shared(), "block commits are never shared");
                            out.push(ct.ts());
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let n = all.len();
        assert_eq!(n, threads * per);
        all.sort_unstable();
        all.dedup();
        assert_eq!(n, all.len(), "commit times must be unique");
    }

    #[test]
    fn block_counter_amortizes_allocation_when_uncontended() {
        let tb = BlockCounter::new(64);
        let mut c = tb.register_thread();
        for _ in 0..640 {
            let observed = c.get_time();
            c.acquire_commit_ts(observed);
        }
        // 640 commits at block size 64: at most a handful of reservations
        // beyond the ideal 10 (staleness skips can cost a few extra).
        assert!(
            tb.refills() <= 20,
            "expected ~10 refills for 640 commits, got {}",
            tb.refills()
        );
    }

    #[test]
    fn block_counter_commit_exceeds_observed_and_history() {
        let tb = BlockCounter::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let mut clk = tb.register_thread();
                s.spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..5_000 {
                        let observed = clk.get_time();
                        let ct = clk.acquire_commit_ts(observed);
                        assert!(ct.ts() > observed, "commit must exceed observation");
                        assert!(ct.ts() > last, "strictly increasing per thread");
                        last = ct.ts();
                    }
                });
            }
        });
    }

    #[test]
    fn block_counter_readers_only_see_published_frontier() {
        let tb = BlockCounter::new(16);
        let mut w = tb.register_thread();
        let mut r = tb.register_thread();
        // Reserving a raw block moves the allocation frontier but must not
        // move what readers observe.
        let before = r.get_time();
        let blk = w.get_ts_block(16);
        assert_eq!(r.get_time(), before, "raw reservation is unobservable");
        // Publishing a commit moves the observable frontier.
        let w1 = w.get_time();
        let ct = w.acquire_commit_ts(w1).ts();
        assert!(
            ct > *blk.last().unwrap(),
            "commit re-arbitrates past blocks"
        );
        assert!(r.get_time() >= ct);
    }

    #[test]
    fn raw_blocks_are_disjoint_across_threads() {
        let tb = BlockCounter::new(8);
        let mut all: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let mut clk = tb.register_thread();
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for _ in 0..500 {
                            out.extend(clk.get_ts_block(8));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let n = all.len();
        assert_eq!(n, 4 * 500 * 8);
        all.sort_unstable();
        all.dedup();
        assert_eq!(n, all.len(), "reserved blocks must be disjoint");
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_is_rejected() {
        let _ = BlockCounter::new(0);
    }

    #[test]
    fn info_names_match_registry_expectations() {
        assert_eq!(SharedCounter::new().name(), "shared-counter");
        assert_eq!(Gv4Counter::new().name(), "gv4");
        assert_eq!(Gv5Counter::new().name(), "gv5");
        assert_eq!(BlockCounter::default().name(), "block");
        assert_eq!(
            SharedCounter::new().info().contention,
            ContentionClass::SharedRmw
        );
        assert_eq!(
            Gv5Counter::new().info().contention,
            ContentionClass::LoadOnly
        );
    }
}
