//! Shared-integer-counter time bases (§1.2 of the paper).
//!
//! The classical time base of LSA and TL2: a single global integer counter,
//! read at every transaction start (`getTime`) and incremented by every
//! committing update transaction (`getNewTS`). On small multi-cores the cost
//! is negligible; on larger machines every increment causes cache misses in
//! *all* concurrent transactions, which is precisely the bottleneck the paper
//! sets out to remove (§4.2, Figure 2).
//!
//! Two variants are provided:
//!
//! * [`SharedCounter`] — plain `fetch_add` counter,
//! * [`Tl2Counter`] — the TL2 optimization in which a transaction whose
//!   timestamp-acquiring compare-and-swap fails *shares* the timestamp
//!   installed by the winner instead of retrying. The paper reports this
//!   "showed no advantages on our hardware" (§4.2); the
//!   [`Tl2Counter::shared_acquisitions`] statistic lets the benchmarks verify
//!   both behaviours.

use crate::base::{ThreadClock, TimeBase};
use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The classical global shared integer counter time base.
///
/// `getTime` is a single atomic load; `getNewTS` is a `fetch_add(1)` whose
/// result is strictly greater than every previously published timestamp,
/// satisfying the `getNewTS` contract trivially. The counter is cache-padded
/// so that the *only* sharing the benchmarks observe is the true sharing of
/// the counter itself, not false sharing with neighbouring data.
#[derive(Clone, Debug, Default)]
pub struct SharedCounter {
    counter: Arc<CachePadded<AtomicU64>>,
}

impl SharedCounter {
    /// Create a counter starting at 1 (0 is never produced, so callers can
    /// use 0 as an "unset" sentinel as the paper does with `T.CT ← 0`).
    pub fn new() -> Self {
        SharedCounter {
            counter: Arc::new(CachePadded::new(AtomicU64::new(1))),
        }
    }

    /// Current raw value of the counter (for statistics/tests).
    pub fn current(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }
}

/// Per-thread handle to a [`SharedCounter`].
#[derive(Clone, Debug)]
pub struct SharedCounterClock {
    counter: Arc<CachePadded<AtomicU64>>,
}

impl TimeBase for SharedCounter {
    type Ts = u64;
    type Clock = SharedCounterClock;

    fn register_thread(&self) -> SharedCounterClock {
        SharedCounterClock {
            counter: Arc::clone(&self.counter),
        }
    }

    fn name(&self) -> &'static str {
        "shared-counter"
    }
}

impl ThreadClock for SharedCounterClock {
    type Ts = u64;

    #[inline]
    fn get_time(&mut self) -> u64 {
        // Acquire: a transaction that observes counter value t must also
        // observe all writes of the transactions that committed at <= t.
        self.counter.load(Ordering::Acquire)
    }

    #[inline]
    fn get_new_ts(&mut self) -> u64 {
        // AcqRel: the increment both publishes our commit (Release) and
        // brings us up to date with earlier committers (Acquire).
        self.counter.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// TL2-style counter: on a failed timestamp-acquiring CAS the transaction
/// adopts the winner's timestamp instead of retrying (§1.2).
///
/// Sharing a commit timestamp is sound for time-based STMs because two
/// transactions may commit at the same time as long as they do not conflict
/// (§2.3) — and conflicting transactions are serialized by the object-level
/// write protocol, never by the counter.
#[derive(Clone, Debug, Default)]
pub struct Tl2Counter {
    counter: Arc<CachePadded<AtomicU64>>,
    shared: Arc<CachePadded<AtomicU64>>,
}

impl Tl2Counter {
    /// Create a counter starting at 1.
    pub fn new() -> Self {
        Tl2Counter {
            counter: Arc::new(CachePadded::new(AtomicU64::new(1))),
            shared: Arc::new(CachePadded::new(AtomicU64::new(0))),
        }
    }

    /// Current raw value of the counter (for statistics/tests).
    pub fn current(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }

    /// How many `get_new_ts` calls returned a timestamp installed by another
    /// thread (i.e. how often the optimization actually fired).
    pub fn shared_acquisitions(&self) -> u64 {
        self.shared.load(Ordering::Relaxed)
    }
}

/// Per-thread handle to a [`Tl2Counter`].
#[derive(Clone, Debug)]
pub struct Tl2CounterClock {
    counter: Arc<CachePadded<AtomicU64>>,
    shared: Arc<CachePadded<AtomicU64>>,
    /// Largest timestamp this thread has returned so far; the shared-on-failure
    /// path may only return values strictly greater than this.
    last_seen: u64,
}

impl TimeBase for Tl2Counter {
    type Ts = u64;
    type Clock = Tl2CounterClock;

    fn register_thread(&self) -> Tl2CounterClock {
        Tl2CounterClock {
            counter: Arc::clone(&self.counter),
            shared: Arc::clone(&self.shared),
            last_seen: 0,
        }
    }

    fn name(&self) -> &'static str {
        "tl2-counter"
    }
}

impl ThreadClock for Tl2CounterClock {
    type Ts = u64;

    #[inline]
    fn get_time(&mut self) -> u64 {
        let t = self.counter.load(Ordering::Acquire);
        self.last_seen = self.last_seen.max(t);
        t
    }

    #[inline]
    fn get_new_ts(&mut self) -> u64 {
        let mut cur = self.counter.load(Ordering::Acquire);
        loop {
            match self.counter.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.last_seen = cur + 1;
                    return cur + 1;
                }
                Err(observed) => {
                    // TL2 optimization: adopt the winner's timestamp — but
                    // only if it satisfies the strict getNewTS contract for
                    // this thread.
                    if observed > self.last_seen {
                        self.shared.fetch_add(1, Ordering::Relaxed);
                        self.last_seen = observed;
                        return observed;
                    }
                    cur = observed;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_starts_above_zero() {
        let tb = SharedCounter::new();
        let mut c = tb.register_thread();
        assert!(c.get_time() >= 1);
    }

    #[test]
    fn get_new_ts_is_strictly_increasing_per_thread() {
        let tb = SharedCounter::new();
        let mut c = tb.register_thread();
        let mut last = c.get_time();
        for _ in 0..100 {
            let t = c.get_new_ts();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn get_time_sees_other_threads_commits() {
        let tb = SharedCounter::new();
        let mut a = tb.register_thread();
        let mut b = tb.register_thread();
        let t1 = a.get_new_ts();
        assert!(b.get_time() >= t1);
    }

    #[test]
    fn concurrent_new_ts_are_unique_for_plain_counter() {
        let tb = SharedCounter::new();
        let threads = 4;
        let per = 10_000;
        let mut all: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let mut clk = tb.register_thread();
                    s.spawn(move || (0..per).map(|_| clk.get_new_ts()).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            threads * per,
            "plain counter timestamps are unique"
        );
    }

    #[test]
    fn tl2_counter_monotonic_per_thread_under_contention() {
        let tb = Tl2Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let mut clk = tb.register_thread();
                s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..10_000 {
                        let t = clk.get_new_ts();
                        assert!(t > last, "strictly increasing per thread");
                        last = t;
                    }
                });
            }
        });
    }

    #[test]
    fn tl2_counter_may_share_timestamps() {
        let tb = Tl2Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let mut clk = tb.register_thread();
                s.spawn(move || {
                    for _ in 0..50_000 {
                        clk.get_new_ts();
                    }
                });
            }
        });
        // With 4 threads hammering the counter some CASes fail; we only check
        // that the statistic is wired up (0 is possible on a 1-CPU box, so
        // don't assert > 0 — just that the total adds up).
        let issued = tb.current() - 1;
        let shared = tb.shared_acquisitions();
        assert_eq!(issued + shared, 4 * 50_000);
    }
}
