//! Externally synchronized real-time clocks (§3.2, Algorithm 5).
//!
//! Each thread `p` reads a local clock `ECp` whose deviation from real time
//! is bounded: `|ECp(t) − t| ≤ dev`. A timestamp is therefore a triple
//! `(ts, cid, dev)` — the local reading, the identifier of the clock that
//! produced it, and the deviation bound. Comparisons between timestamps from
//! the *same* clock need no slack; comparisons across clocks must assume the
//! worst-case deviation of both sides (Algorithm 5 line 14). `max`/`min` of
//! incomparable timestamps *poison* the clock id (`cid = undefined`) so that
//! all future comparisons keep accounting for the uncertainty.
//!
//! Masking uncertainty this way virtually shrinks every version's validity
//! range by `dev` on each side, creating gaps of `2·dev` between versions
//! (§3.2) — the effect quantified by the `err_sweep` experiment (EXP-ERR in
//! DESIGN.md).
//!
//! [`ExternalClock`] *injects* per-thread offsets (bounded by `dev`) on top
//! of the globally coherent monotonic clock, so the uncertainty handling is
//! exercised for real: two threads genuinely disagree about the current time,
//! by up to `2·dev`.

use crate::base::{monotonic_ns, ThreadClock, TimeBase};
use crate::timestamp::Timestamp;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Clock identifier carried by an [`ExtTimestamp`]. [`ClockId::UNDEFINED`]
/// marks a timestamp that resulted from `max`/`min` of incomparable inputs
/// and must always be compared with deviation slack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ClockId(pub u32);

impl ClockId {
    /// The paper's `undefined` clock id.
    pub const UNDEFINED: ClockId = ClockId(u32::MAX);

    /// Whether this id is the `undefined` marker.
    #[inline]
    pub fn is_undefined(self) -> bool {
        self == Self::UNDEFINED
    }
}

/// A timestamp from an externally synchronized clock: `(ts, cid, dev)`
/// (§3.2). `ts` and `dev` are in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExtTimestamp {
    /// Local clock reading (nanoseconds).
    pub ts: u64,
    /// Identifier of the producing clock, or [`ClockId::UNDEFINED`].
    pub cid: ClockId,
    /// Maximum deviation of the producing clock from real time (nanoseconds).
    pub dev: u64,
}

impl ExtTimestamp {
    /// Construct a timestamp.
    #[inline]
    pub fn new(ts: u64, cid: ClockId, dev: u64) -> Self {
        ExtTimestamp { ts, cid, dev }
    }

    /// Latest real time at which this reading could have been taken.
    #[inline]
    pub fn upper_ns(self) -> u64 {
        self.ts.saturating_add(self.dev)
    }

    /// Earliest real time at which this reading could have been taken.
    #[inline]
    pub fn lower_ns(self) -> u64 {
        self.ts.saturating_sub(self.dev)
    }
}

impl Timestamp for ExtTimestamp {
    /// Algorithm 5, function `≽`: same-clock timestamps compare exactly;
    /// cross-clock comparisons require the intervals of possible real times
    /// to be disjoint in the right direction.
    #[inline]
    fn ge(self, other: Self) -> bool {
        if self.cid == other.cid && !self.cid.is_undefined() {
            self.ts >= other.ts
        } else {
            self.lower_ns() >= other.upper_ns()
        }
    }

    /// Algorithm 5, function `max`.
    #[inline]
    fn join(self, other: Self) -> Self {
        if self.ge(other) {
            self
        } else if other.ge(self) {
            other
        } else if self.upper_ns() > other.upper_ns() {
            ExtTimestamp {
                cid: ClockId::UNDEFINED,
                ..self
            }
        } else {
            ExtTimestamp {
                cid: ClockId::UNDEFINED,
                ..other
            }
        }
    }

    /// Algorithm 5, function `min`.
    #[inline]
    fn meet(self, other: Self) -> Self {
        if self.ge(other) {
            other
        } else if other.ge(self) {
            self
        } else if self.lower_ns() < other.lower_ns() {
            ExtTimestamp {
                cid: ClockId::UNDEFINED,
                ..self
            }
        } else {
            ExtTimestamp {
                cid: ClockId::UNDEFINED,
                ..other
            }
        }
    }

    #[inline]
    fn prior(self) -> Self {
        ExtTimestamp {
            ts: self.ts.saturating_sub(1),
            ..self
        }
    }

    #[inline]
    fn raw_value(self) -> i128 {
        self.ts as i128
    }

    #[inline]
    fn origin() -> Self {
        // dev = 0 so that `t.ge(origin)` holds for every real reading `t`
        // (cross-clock comparison needs t.lower_ns() >= 0) and
        // `origin.ge(t)` never holds for t produced by a clock (all readings
        // sit above EPOCH_OFFSET_NS).
        ExtTimestamp {
            ts: 0,
            cid: ClockId::UNDEFINED,
            dev: 0,
        }
    }
}

/// How per-thread clock offsets are assigned by an [`ExternalClock`].
#[derive(Clone, Debug)]
pub enum OffsetPolicy {
    /// All local clocks agree with real time exactly (offset 0); the
    /// *comparisons* still apply the full deviation slack. Useful to isolate
    /// the algorithmic cost of uncertainty from actual disagreement.
    Zero,
    /// Deterministic hash-spread of offsets over `[-dev, +dev]`.
    Spread,
    /// Alternate the extremes: clock 0 gets `-dev`, clock 1 gets `+dev`,
    /// clock 2 gets `-dev`, … — the worst case for cross-clock gaps.
    Alternating,
    /// Explicit offsets (nanoseconds) per registration order; registrations
    /// beyond the list wrap around. Every value must satisfy `|o| ≤ dev`.
    Explicit(Vec<i64>),
}

/// An externally synchronized clock ensemble with deviation bound `dev`
/// (§3.2). Every registered thread gets its own [`ClockId`] and a bounded
/// offset from real time chosen by the [`OffsetPolicy`].
#[derive(Clone, Debug)]
pub struct ExternalClock {
    dev_ns: u64,
    policy: OffsetPolicy,
    next_cid: Arc<AtomicU32>,
}

impl ExternalClock {
    /// Ensemble with hash-spread offsets in `[-dev_ns, +dev_ns]`.
    pub fn new(dev_ns: u64) -> Self {
        Self::with_policy(dev_ns, OffsetPolicy::Spread)
    }

    /// Ensemble with an explicit offset assignment policy.
    ///
    /// # Panics
    /// Panics if an [`OffsetPolicy::Explicit`] offset exceeds the deviation
    /// bound.
    pub fn with_policy(dev_ns: u64, policy: OffsetPolicy) -> Self {
        if let OffsetPolicy::Explicit(offsets) = &policy {
            for &o in offsets {
                assert!(
                    o.unsigned_abs() <= dev_ns,
                    "explicit offset {o} exceeds deviation bound {dev_ns}"
                );
            }
        }
        ExternalClock {
            dev_ns,
            policy,
            next_cid: Arc::new(AtomicU32::new(0)),
        }
    }

    /// The deviation bound `dev` (nanoseconds).
    pub fn dev_ns(&self) -> u64 {
        self.dev_ns
    }

    fn offset_for(&self, index: u32) -> i64 {
        let dev = self.dev_ns as i64;
        match &self.policy {
            OffsetPolicy::Zero => 0,
            OffsetPolicy::Spread => {
                if dev == 0 {
                    0
                } else {
                    // Deterministic multiplicative hash spread over [-dev, dev].
                    let h = (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16;
                    (h % (2 * dev as u64 + 1)) as i64 - dev
                }
            }
            OffsetPolicy::Alternating => {
                if index.is_multiple_of(2) {
                    -dev
                } else {
                    dev
                }
            }
            OffsetPolicy::Explicit(offsets) => {
                if offsets.is_empty() {
                    0
                } else {
                    offsets[index as usize % offsets.len()]
                }
            }
        }
    }
}

/// Per-thread handle to an [`ExternalClock`]: the thread's local clock `ECp`.
#[derive(Clone, Debug)]
pub struct ExternalClockHandle {
    cid: ClockId,
    offset_ns: i64,
    dev_ns: u64,
    last_ts: u64,
}

impl ExternalClockHandle {
    /// The clock id of this handle.
    pub fn clock_id(&self) -> ClockId {
        self.cid
    }

    /// The injected offset of this local clock from real time (nanoseconds).
    pub fn offset_ns(&self) -> i64 {
        self.offset_ns
    }

    #[inline]
    fn read_local(&self) -> u64 {
        // ECp(t) = t + offset, with |offset| <= dev: the paper's bounded
        // deviation model. Saturating add keeps the reading a valid u64 even
        // for extreme negative offsets near the epoch (EPOCH_OFFSET_NS makes
        // this unreachable in practice).
        let t = monotonic_ns();
        if self.offset_ns >= 0 {
            t.saturating_add(self.offset_ns as u64)
        } else {
            t.saturating_sub(self.offset_ns.unsigned_abs())
        }
    }
}

impl TimeBase for ExternalClock {
    type Ts = ExtTimestamp;
    type Clock = ExternalClockHandle;

    fn register_thread(&self) -> ExternalClockHandle {
        let index = self.next_cid.fetch_add(1, Ordering::Relaxed);
        assert!(index < u32::MAX - 1, "too many clock registrations");
        ExternalClockHandle {
            cid: ClockId(index),
            offset_ns: self.offset_for(index),
            dev_ns: self.dev_ns,
            last_ts: 0,
        }
    }

    fn info(&self) -> crate::base::TimeBaseInfo {
        crate::base::TimeBaseInfo {
            name: "external-clock",
            // Distinct clocks can draw overlapping (ts, cid, dev) readings;
            // only the uncertainty algebra orders them.
            uniqueness: crate::base::Uniqueness::BestEffort,
            block_uniqueness: crate::base::Uniqueness::BestEffort,
            contention: crate::base::ContentionClass::LocalRead,
            // The uncertainty algebra (Algorithm 5) masks deviations, so
            // guaranteed comparisons never contradict commit order.
            commit_monotonic: true,
        }
    }
}

impl ThreadClock for ExternalClockHandle {
    type Ts = ExtTimestamp;

    #[inline]
    fn get_time(&mut self) -> ExtTimestamp {
        let ts = self.read_local().max(self.last_ts);
        self.last_ts = ts;
        ExtTimestamp::new(ts, self.cid, self.dev_ns)
    }

    #[inline]
    fn get_new_ts(&mut self) -> ExtTimestamp {
        // §3.2: with dev > 0 the uncertainty masking already guarantees that
        // versions are never valid exactly at their commit time, so getNewTS
        // is just getTime. With dev == 0 the ensemble degenerates to a
        // perfectly synchronized clock and we need Algorithm 4's loop.
        if self.dev_ns > 0 {
            self.get_time()
        } else {
            loop {
                let ts = self.read_local();
                if ts > self.last_ts {
                    self.last_ts = ts;
                    return ExtTimestamp::new(ts, self.cid, 0);
                }
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64, cid: u32, dev: u64) -> ExtTimestamp {
        ExtTimestamp::new(v, ClockId(cid), dev)
    }

    #[test]
    fn same_clock_compares_exactly() {
        assert!(ts(100, 1, 50).ge(ts(99, 1, 50)));
        assert!(ts(100, 1, 50).ge(ts(100, 1, 50)));
        assert!(!ts(99, 1, 50).ge(ts(100, 1, 50)));
    }

    #[test]
    fn cross_clock_requires_deviation_gap() {
        // dev = 10 on both sides: need ts1 - 10 >= ts2 + 10, i.e. gap >= 20.
        assert!(ts(120, 1, 10).ge(ts(100, 2, 10)));
        assert!(!ts(119, 1, 10).ge(ts(100, 2, 10)));
        // Within the uncertainty window, *neither* dominates...
        assert!(!ts(110, 1, 10).ge(ts(100, 2, 10)));
        assert!(!ts(100, 2, 10).ge(ts(110, 1, 10)));
        // ...so each is "possibly later" than the other.
        assert!(ts(110, 1, 10).possibly_later(ts(100, 2, 10)));
        assert!(ts(100, 2, 10).possibly_later(ts(110, 1, 10)));
    }

    #[test]
    fn undefined_cid_always_uses_deviation() {
        let a = ts(100, u32::MAX, 10); // undefined
        let b = ts(100, u32::MAX, 10);
        assert!(
            !a.ge(b),
            "same values but undefined cid: not comparable exactly"
        );
    }

    #[test]
    fn join_picks_dominant_or_poisons() {
        let a = ts(200, 1, 10);
        let b = ts(100, 2, 10);
        assert_eq!(a.join(b), a, "clearly later keeps its cid");
        let c = ts(105, 1, 10);
        let d = ts(100, 2, 10);
        let j = c.join(d);
        assert!(j.cid.is_undefined(), "incomparable join poisons cid");
        assert_eq!(j.ts, 105, "larger upper bound wins (105+10 > 100+10)");
    }

    #[test]
    fn meet_picks_dominated_or_poisons() {
        let a = ts(200, 1, 10);
        let b = ts(100, 2, 10);
        assert_eq!(a.meet(b), b);
        let c = ts(105, 1, 10);
        let d = ts(100, 2, 10);
        let m = c.meet(d);
        assert!(m.cid.is_undefined());
        assert_eq!(m.ts, 100, "smaller lower bound wins (100-10 < 105-10)");
    }

    #[test]
    fn join_semantics_any_later_ts_is_later_than_both() {
        // For t3 ≽ join(t1,t2) (cross-clock), t3 must be ≽ t1 and ≽ t2.
        let t1 = ts(105, 1, 10);
        let t2 = ts(100, 2, 10);
        let j = t1.join(t2);
        let t3 = ts(j.ts + j.dev + 25, 3, 5);
        assert!(t3.ge(j));
        assert!(t3.ge(t1));
        assert!(t3.ge(t2));
    }

    #[test]
    fn handles_get_bounded_offsets() {
        for policy in [
            OffsetPolicy::Spread,
            OffsetPolicy::Alternating,
            OffsetPolicy::Zero,
        ] {
            let tb = ExternalClock::with_policy(1000, policy);
            for _ in 0..16 {
                let h = tb.register_thread();
                assert!(h.offset_ns().unsigned_abs() <= 1000);
            }
        }
    }

    #[test]
    fn readings_stay_within_dev_of_real_time() {
        let tb = ExternalClock::with_policy(5_000, OffsetPolicy::Alternating);
        let mut h = tb.register_thread();
        for _ in 0..100 {
            let before = monotonic_ns();
            let t = h.get_time();
            let after = monotonic_ns();
            assert!(t.ts + t.dev >= before, "reading too far in the past");
            assert!(t.ts <= after + t.dev, "reading too far in the future");
        }
    }

    #[test]
    fn per_thread_monotonic_despite_offsets() {
        let tb = ExternalClock::with_policy(1_000_000, OffsetPolicy::Alternating);
        let mut h = tb.register_thread();
        let mut last = h.get_time();
        for _ in 0..100 {
            let t = h.get_time();
            assert!(t.ts >= last.ts);
            last = t;
        }
    }

    #[test]
    fn two_handles_disagree_when_offsets_differ() {
        let tb = ExternalClock::with_policy(1_000_000_000, OffsetPolicy::Alternating);
        let mut a = tb.register_thread(); // -1 s
        let mut b = tb.register_thread(); // +1 s
        let ta = a.get_time();
        let tb2 = b.get_time();
        // b's reading is ~2 s ahead of a's: not within exact comparability,
        // but ge still must NOT claim a ≽ b.
        assert!(!ta.ge(tb2));
    }

    #[test]
    fn explicit_offsets_are_validated() {
        let result = std::panic::catch_unwind(|| {
            ExternalClock::with_policy(10, OffsetPolicy::Explicit(vec![50]))
        });
        assert!(result.is_err(), "offset beyond dev must panic");
    }

    #[test]
    fn dev_zero_get_new_ts_is_strict() {
        let tb = ExternalClock::with_policy(0, OffsetPolicy::Zero);
        let mut h = tb.register_thread();
        let a = h.get_new_ts();
        let b = h.get_new_ts();
        assert!(b.ts > a.ts);
    }
}
