//! A simulated *MMTimer*: the synchronized hardware clock of the SGI Altix
//! used in the paper's case study (§4.1).
//!
//! The MMTimer is a real-time clock ticking at 20 MHz whose read always takes
//! 7–8 of its own ticks, so the effective granularity is coarser than the
//! nominal frequency and the returned values are *strictly* monotonic: both
//! `getTime` and `getNewTS` can simply return the current register value
//! (§4.1). It is synchronized across all nodes of the machine by a dedicated
//! clock-distribution network, i.e. it behaves as a linearizable perfectly
//! synchronized clock.
//!
//! [`HardwareClock`] reproduces those properties on a commodity host:
//! readings are the globally coherent monotonic clock quantized to a
//! configurable tick frequency, and each read optionally *pays* the modeled
//! read latency by spinning (the CPU of the modeled machine is stalled on an
//! uncached register read for that long — see DESIGN.md §3 for the
//! substitution argument).

use crate::base::{
    monotonic_ns, spin_for_ns, ContentionClass, ThreadClock, TimeBase, TimeBaseInfo, Uniqueness,
};

/// Nominal MMTimer frequency on the SGI Altix 3700: 20 MHz.
pub const MMTIMER_FREQ_HZ: u64 = 20_000_000;

/// Modeled MMTimer read latency: 7.5 ticks at 20 MHz = 375 ns (the paper
/// reports "7 to 8 ticks").
pub const MMTIMER_READ_LATENCY_NS: u64 = 375;

/// A simulated synchronized hardware clock (MMTimer-like).
#[derive(Clone, Copy, Debug)]
pub struct HardwareClock {
    /// Tick period in nanoseconds (`1e9 / frequency`).
    period_ns: u64,
    /// Emulated cost of one read, in nanoseconds (0 = free reads).
    read_latency_ns: u64,
}

impl HardwareClock {
    /// A clock with the given tick frequency and per-read latency.
    ///
    /// # Panics
    /// Panics if `freq_hz` is 0 or above 1 GHz (the underlying source has
    /// nanosecond resolution).
    pub fn new(freq_hz: u64, read_latency_ns: u64) -> Self {
        assert!(freq_hz > 0 && freq_hz <= 1_000_000_000, "freq out of range");
        HardwareClock {
            period_ns: 1_000_000_000 / freq_hz,
            read_latency_ns,
        }
    }

    /// The paper's MMTimer: 20 MHz, reads cost 7.5 ticks (375 ns).
    pub fn mmtimer() -> Self {
        Self::new(MMTIMER_FREQ_HZ, MMTIMER_READ_LATENCY_NS)
    }

    /// An MMTimer-frequency clock with *free* reads, for tests and for
    /// separating quantization effects from latency effects in benchmarks.
    pub fn mmtimer_free() -> Self {
        Self::new(MMTIMER_FREQ_HZ, 0)
    }

    /// Tick period in nanoseconds.
    pub fn period_ns(&self) -> u64 {
        self.period_ns
    }

    /// Modeled read latency in nanoseconds.
    pub fn read_latency_ns(&self) -> u64 {
        self.read_latency_ns
    }

    #[inline]
    fn read_register(&self) -> u64 {
        monotonic_ns() / self.period_ns
    }
}

/// Per-thread handle to a [`HardwareClock`].
#[derive(Clone, Copy, Debug)]
pub struct HardwareClockHandle {
    clock: HardwareClock,
    last: u64,
}

impl TimeBase for HardwareClock {
    type Ts = u64;
    type Clock = HardwareClockHandle;

    fn register_thread(&self) -> HardwareClockHandle {
        HardwareClockHandle {
            clock: *self,
            last: 0,
        }
    }

    fn info(&self) -> TimeBaseInfo {
        TimeBaseInfo {
            name: "mmtimer",
            // Ticks are coarse (50 ns at 20 MHz): concurrent reads collide.
            uniqueness: Uniqueness::BestEffort,
            block_uniqueness: Uniqueness::BestEffort,
            contention: ContentionClass::LocalRead,
            commit_monotonic: true,
        }
    }
}

impl ThreadClock for HardwareClockHandle {
    type Ts = u64;

    #[inline]
    fn get_time(&mut self) -> u64 {
        // Pay the register read cost, then sample. With latency >= one tick
        // the sample is strictly greater than the previous one, matching the
        // MMTimer's strict monotonicity (§4.1).
        spin_for_ns(self.clock.read_latency_ns);
        let t = self.read_and_clamp();
        self.last = t;
        t
    }

    #[inline]
    fn get_new_ts(&mut self) -> u64 {
        // §4.1: "both GetTime and GetNewTS just return the value of MMTimer"
        // because reading takes longer than a tick — the post-latency reading
        // is strictly greater than the register value at invocation time, as
        // §2.4 requires. The loop below only spins when the clock is
        // configured with free reads or a sub-tick latency.
        let entry = self.clock.read_register().max(self.last);
        loop {
            spin_for_ns(self.clock.read_latency_ns);
            let t = self.read_and_clamp();
            if t > entry {
                self.last = t;
                return t;
            }
            std::hint::spin_loop();
        }
    }
}

impl HardwareClockHandle {
    #[inline]
    fn read_and_clamp(&self) -> u64 {
        self.clock.read_register().max(self.last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn quantizes_to_tick_period() {
        let hw = HardwareClock::new(1_000_000, 0); // 1 MHz -> 1 µs ticks
        let mut c = hw.register_thread();
        let t0 = c.get_time();
        spin_for_ns(5_000);
        let t1 = c.get_time();
        // 5 µs elapsed => roughly 5 ticks; definitely between 3 and 1000.
        assert!(t1 > t0);
        assert!(t1 - t0 >= 3, "at least ~5 ticks expected, got {}", t1 - t0);
    }

    #[test]
    fn mmtimer_reads_are_strictly_monotonic() {
        let hw = HardwareClock::mmtimer();
        let mut c = hw.register_thread();
        let mut last = c.get_time();
        for _ in 0..50 {
            let t = c.get_time();
            assert!(t > last, "read latency > tick period implies strictness");
            last = t;
        }
    }

    #[test]
    fn mmtimer_read_costs_modeled_latency() {
        let hw = HardwareClock::mmtimer();
        let mut c = hw.register_thread();
        let start = Instant::now();
        let n = 200;
        for _ in 0..n {
            c.get_time();
        }
        let per_read = start.elapsed().as_nanos() as u64 / n;
        assert!(
            per_read >= MMTIMER_READ_LATENCY_NS,
            "each read must cost at least the modeled {MMTIMER_READ_LATENCY_NS} ns, got {per_read}"
        );
    }

    #[test]
    fn get_new_ts_strictly_increases_even_with_free_reads() {
        let hw = HardwareClock::mmtimer_free();
        let mut c = hw.register_thread();
        let mut last = c.get_new_ts();
        for _ in 0..1000 {
            let t = c.get_new_ts();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn cross_thread_coherence() {
        let hw = HardwareClock::mmtimer_free();
        let mut main = hw.register_thread();
        let t0 = main.get_new_ts();
        let t1 = std::thread::spawn(move || {
            let mut c = hw.register_thread();
            c.get_time()
        })
        .join()
        .unwrap();
        assert!(t1 >= t0, "happens-before implies clock order");
    }
}
