//! # lsa-time — scalable time bases for time-based transactional memory
//!
//! This crate implements the *time base* abstraction of the SPAA'07 paper
//! ["Time-based Transactional Memory with Scalable Time Bases"][paper]
//! (Riegel, Fetzer, Felber), together with every concrete time base the paper
//! discusses:
//!
//! * [`counter::SharedCounter`] — the classical global shared integer counter
//!   used by LSA and TL2 (incremented by every committing update transaction),
//! * [`counter::Gv4Counter`] — the TL2 GV4 optimization that lets
//!   transactions share a commit timestamp when the timestamp-acquiring CAS
//!   fails,
//! * [`counter::Gv5Counter`] — TL2's GV5: commit = read + 1, the counter is
//!   never incremented on commit (aborts advance it instead),
//! * [`counter::BlockCounter`] — batched per-thread timestamp blocks with a
//!   separately published commit frontier,
//! * [`perfect::PerfectClock`] — a perfectly synchronized real-time clock
//!   (Algorithm 4 of the paper),
//! * [`hardware::HardwareClock`] — a simulated *MMTimer*: a globally
//!   synchronized hardware clock with a configurable tick frequency
//!   (20 MHz in the paper) and a read latency larger than one tick,
//! * [`external::ExternalClock`] — externally synchronized clocks with a
//!   bounded deviation `dev`; timestamps are `(ts, cid, dev)` triples and
//!   compare according to Algorithm 5 of the paper,
//! * [`numa::NumaCounter`] / [`numa::NumaModel`] — a ccNUMA interconnect cost
//!   model used to reproduce the paper's SGI-Altix contention behaviour on a
//!   small host (see DESIGN.md §3),
//! * [`sharded::ShardedTimeBase`] — the composite base for sharded STMs:
//!   per-shard clock instances over one arbitration-comparable domain, with
//!   disjoint per-shard `get_ts_block` domains and a capability check that
//!   rejects inner bases whose guarantees do not survive composition
//!   (see DESIGN.md §9).
//!
//! The abstraction is split in two traits:
//!
//! * [`Timestamp`] captures the *timestamp algebra* of Algorithm 1: the
//!   "guaranteed later than or equal" relation `≼` ([`Timestamp::ge`]), the
//!   derived "possibly later than" relation `≾`
//!   ([`Timestamp::possibly_later`]), and uncertainty-aware
//!   [`Timestamp::join`] (max) and [`Timestamp::meet`] (min).
//! * [`TimeBase`] produces per-thread clock handles ([`ThreadClock`]) whose
//!   [`ThreadClock::get_time`] and [`ThreadClock::get_new_ts`] implement the
//!   paper's `getTime`/`getNewTS` utility functions. On top of those,
//!   [`ThreadClock::acquire_commit_ts`] is the commit-arbitration protocol
//!   (GV4/GV5 timestamp sharing as [`CommitTs`]),
//!   [`ThreadClock::get_ts_block`] batched allocation, and every base
//!   describes its guarantees through a [`TimeBaseInfo`] descriptor whose
//!   claims the [`conformance`] suite asserts.
//!
//! The crate also contains the measurement infrastructure used for the
//! paper's Figure 1 ([`sync_measure`]) and a software clock-synchronization
//! simulator ([`sync_sim`]).
//!
//! [paper]: https://doi.org/10.1145/1248377.1248415

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod base;
pub mod conformance;
pub mod counter;
pub mod external;
pub mod hardware;
pub mod numa;
pub mod perfect;
pub mod range;
pub mod sharded;
pub mod sync_measure;
pub mod sync_sim;
pub mod timestamp;

pub use base::{CommitTs, ContentionClass, ThreadClock, TimeBase, TimeBaseInfo, Uniqueness};
pub use range::ValidityRange;
pub use sharded::{ShardedClock, ShardedTimeBase, TouchSet};
pub use timestamp::Timestamp;

/// Convenient re-exports of every concrete time base.
pub mod prelude {
    pub use crate::base::{CommitTs, ThreadClock, TimeBase, TimeBaseInfo};
    pub use crate::counter::{BlockCounter, Gv4Counter, Gv5Counter, SharedCounter};
    pub use crate::external::{ExtTimestamp, ExternalClock};
    pub use crate::hardware::HardwareClock;
    pub use crate::numa::{NumaCounter, NumaModel};
    pub use crate::perfect::PerfectClock;
    pub use crate::range::ValidityRange;
    pub use crate::sharded::{ShardedTimeBase, TouchSet};
    pub use crate::timestamp::Timestamp;
}
