//! A ccNUMA interconnect cost model for the shared-counter time base.
//!
//! The paper's case study runs on a 16-CPU partition of an SGI Altix 3700, a
//! ccNUMA machine on which transferring the counter's cache line between
//! processors costs several hundred nanoseconds. On a small commodity host
//! the *algorithmic* contention is identical but the *cost* of a line
//! transfer is tens of nanoseconds, which hides the bottleneck the paper
//! demonstrates.
//!
//! [`NumaCounter`] makes the cost explicit: it wraps the shared counter and
//! charges every access that misses in the (modeled) local cache with a
//! configurable remote-transfer latency, following an invalidation-based
//! (MESI-like) protocol:
//!
//! * every write (timestamp acquisition) invalidates all remote copies, so a
//!   subsequent access by any *other* thread pays [`NumaModel::remote_ns`];
//! * repeated accesses by the same thread with no intervening remote write
//!   hit the local cache and pay only [`NumaModel::local_ns`].
//!
//! The model intentionally charges the latency by *spinning* — on the modeled
//! machine the CPU is stalled on the uncached access for that long, and a
//! stalled CPU cannot run other transactions, which is exactly the effect
//! that limits throughput in Figure 2. See DESIGN.md §3 for the substitution
//! argument, and `lsa_harness::altix_sim` for the discrete-event model that
//! reproduces the 16-CPU curves exactly.

use crate::base::{spin_for_ns, ThreadClock, TimeBase};
use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Latency parameters of the modeled ccNUMA interconnect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NumaModel {
    /// Cost (ns) of an access that must fetch the counter's cache line from
    /// a remote node (read miss or read-for-ownership).
    pub remote_ns: u64,
    /// Cost (ns) of an access that hits the local cache.
    pub local_ns: u64,
}

impl NumaModel {
    /// Altix-3700-like parameters: ~600 ns remote transfer, ~5 ns local hit.
    pub fn altix() -> Self {
        NumaModel {
            remote_ns: 600,
            local_ns: 5,
        }
    }

    /// A free interconnect (turns [`NumaCounter`] into a plain
    /// [`crate::counter::SharedCounter`] with extra bookkeeping) — for tests.
    pub fn free() -> Self {
        NumaModel {
            remote_ns: 0,
            local_ns: 0,
        }
    }
}

#[derive(Debug)]
struct NumaShared {
    counter: CachePadded<AtomicU64>,
    /// Incremented on every write; a thread whose cached copy of this value
    /// is stale has (in the model) had its cache line invalidated.
    line_version: CachePadded<AtomicU64>,
    /// Registration id of the last writer (the modeled line owner).
    owner: CachePadded<AtomicU64>,
    next_id: CachePadded<AtomicU64>,
}

/// A shared integer counter behind the [`NumaModel`] cost model.
#[derive(Clone, Debug)]
pub struct NumaCounter {
    shared: Arc<NumaShared>,
    model: NumaModel,
}

impl NumaCounter {
    /// A counter starting at 1 with the given interconnect model.
    pub fn new(model: NumaModel) -> Self {
        NumaCounter {
            shared: Arc::new(NumaShared {
                counter: CachePadded::new(AtomicU64::new(1)),
                line_version: CachePadded::new(AtomicU64::new(0)),
                owner: CachePadded::new(AtomicU64::new(u64::MAX)),
                next_id: CachePadded::new(AtomicU64::new(0)),
            }),
            model,
        }
    }

    /// Current raw counter value (for statistics/tests).
    pub fn current(&self) -> u64 {
        self.shared.counter.load(Ordering::SeqCst)
    }

    /// The interconnect model in use.
    pub fn model(&self) -> NumaModel {
        self.model
    }
}

/// Per-thread handle to a [`NumaCounter`]; tracks the modeled local cache
/// state (which line version this thread last observed).
#[derive(Debug)]
pub struct NumaCounterClock {
    shared: Arc<NumaShared>,
    model: NumaModel,
    id: u64,
    cached_line_version: u64,
    /// Number of modeled remote misses this thread has paid (statistics).
    remote_misses: u64,
}

impl NumaCounterClock {
    /// Modeled remote misses paid by this thread so far.
    pub fn remote_misses(&self) -> u64 {
        self.remote_misses
    }
}

impl TimeBase for NumaCounter {
    type Ts = u64;
    type Clock = NumaCounterClock;

    fn register_thread(&self) -> NumaCounterClock {
        NumaCounterClock {
            shared: Arc::clone(&self.shared),
            model: self.model,
            id: self.shared.next_id.fetch_add(1, Ordering::Relaxed),
            cached_line_version: u64::MAX, // first access is always a miss
            remote_misses: 0,
        }
    }

    fn info(&self) -> crate::base::TimeBaseInfo {
        crate::base::TimeBaseInfo {
            name: "numa-counter",
            uniqueness: crate::base::Uniqueness::Unique,
            block_uniqueness: crate::base::Uniqueness::Unique,
            contention: crate::base::ContentionClass::SharedRmw,
            commit_monotonic: true,
        }
    }
}

impl ThreadClock for NumaCounterClock {
    type Ts = u64;

    #[inline]
    fn get_time(&mut self) -> u64 {
        let v = self.shared.line_version.load(Ordering::Acquire);
        if v != self.cached_line_version {
            // Line was invalidated by a writer on another node: read miss.
            spin_for_ns(self.model.remote_ns);
            self.remote_misses += 1;
            self.cached_line_version = self.shared.line_version.load(Ordering::Acquire);
        } else {
            spin_for_ns(self.model.local_ns);
        }
        self.shared.counter.load(Ordering::Acquire)
    }

    #[inline]
    fn get_new_ts(&mut self) -> u64 {
        // Read-for-ownership: if another thread owns the line (it wrote
        // last), fetching it exclusively costs a remote transfer.
        if self.shared.owner.load(Ordering::Acquire) != self.id {
            spin_for_ns(self.model.remote_ns);
            self.remote_misses += 1;
        } else {
            spin_for_ns(self.model.local_ns);
        }
        let t = self.shared.counter.fetch_add(1, Ordering::AcqRel) + 1;
        self.shared.owner.store(self.id, Ordering::Release);
        let lv = self.shared.line_version.fetch_add(1, Ordering::AcqRel) + 1;
        // Our own write leaves the line in our cache in modified state.
        self.cached_line_version = lv;
        t
    }

    #[inline]
    fn acquire_commit_ts(&mut self, observed: u64) -> crate::base::CommitTs<u64> {
        // fetch_add results are globally unique: exclusive, no adoption —
        // this base models exactly the contended baseline of §4.2.
        let _ = observed;
        crate::base::CommitTs::Exclusive(self.get_new_ts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn behaves_like_a_counter() {
        let tb = NumaCounter::new(NumaModel::free());
        let mut c = tb.register_thread();
        let t0 = c.get_time();
        let t1 = c.get_new_ts();
        assert!(t1 > t0);
        assert_eq!(c.get_time(), t1);
    }

    #[test]
    fn single_thread_pays_remote_only_once() {
        let model = NumaModel {
            remote_ns: 50_000,
            local_ns: 0,
        };
        let tb = NumaCounter::new(model);
        let mut c = tb.register_thread();
        c.get_new_ts(); // first access: one RFO miss
        let start = Instant::now();
        for _ in 0..100 {
            c.get_new_ts(); // owner stays us: all local
            c.get_time(); // line version cached: all local
        }
        let elapsed = start.elapsed().as_nanos() as u64;
        assert!(
            elapsed < model.remote_ns * 20,
            "200 local accesses must not pay remote latency (took {elapsed} ns)"
        );
        assert_eq!(c.remote_misses(), 1);
    }

    #[test]
    fn alternating_writers_pay_remote_every_time() {
        let model = NumaModel {
            remote_ns: 10_000,
            local_ns: 0,
        };
        let tb = NumaCounter::new(model);
        let mut a = tb.register_thread();
        let mut b = tb.register_thread();
        for _ in 0..10 {
            a.get_new_ts();
            b.get_new_ts();
        }
        assert_eq!(a.remote_misses(), 10);
        assert_eq!(b.remote_misses(), 10);
    }

    #[test]
    fn reader_misses_after_every_remote_write() {
        let model = NumaModel {
            remote_ns: 1_000,
            local_ns: 0,
        };
        let tb = NumaCounter::new(model);
        let mut writer = tb.register_thread();
        let mut reader = tb.register_thread();
        reader.get_time(); // initial miss
        let base = reader.remote_misses();
        for i in 0..5 {
            writer.get_new_ts();
            reader.get_time();
            assert_eq!(reader.remote_misses(), base + i + 1);
            reader.get_time(); // second read hits
            assert_eq!(reader.remote_misses(), base + i + 1);
        }
    }

    #[test]
    fn timestamps_unique_under_concurrency() {
        let tb = NumaCounter::new(NumaModel::free());
        let mut all: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let mut c = tb.register_thread();
                    s.spawn(move || (0..5_000).map(|_| c.get_new_ts()).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4 * 5_000);
    }
}
