//! Perfectly synchronized real-time clocks (§3.1, Algorithm 4).
//!
//! Each thread `p` has access to a local clock `Cp`; the clocks are perfectly
//! synchronized when `Cp(t) = t` for all threads at all real times `t`.
//! Reading such a clock is linearizable and contention-free — this is the
//! ideal time base the paper argues hardware should provide.
//!
//! On Linux, `CLOCK_MONOTONIC` (what [`std::time::Instant`] reads, via vDSO,
//! in ~20–30 ns without any shared-memory traffic) is globally coherent
//! across CPUs, so it *is* a perfectly synchronized clock for our purposes:
//! if thread A's read happens-before thread B's read, B observes a value
//! `≥` A's. [`PerfectClock`] exposes it at full nanosecond resolution.

use crate::base::{monotonic_ns, ContentionClass, ThreadClock, TimeBase, TimeBaseInfo, Uniqueness};

/// A perfectly synchronized real-time clock at nanosecond resolution
/// (Algorithm 4 of the paper).
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfectClock;

impl PerfectClock {
    /// Create the clock (stateless; all threads read the same global time).
    pub fn new() -> Self {
        PerfectClock
    }
}

/// Per-thread handle to a [`PerfectClock`].
///
/// Carries the thread's high-water mark so that `get_time` is monotonic and
/// `get_new_ts` is strictly increasing even if the underlying clock were to
/// tick slower than the read rate (Algorithm 4's busy-waiting loop).
#[derive(Clone, Copy, Debug)]
pub struct PerfectClockHandle {
    last: u64,
}

impl TimeBase for PerfectClock {
    type Ts = u64;
    type Clock = PerfectClockHandle;

    fn register_thread(&self) -> PerfectClockHandle {
        PerfectClockHandle { last: 0 }
    }

    fn info(&self) -> TimeBaseInfo {
        TimeBaseInfo {
            name: "perfect-clock",
            // Two threads reading in the same nanosecond draw equal values.
            uniqueness: Uniqueness::BestEffort,
            block_uniqueness: Uniqueness::BestEffort,
            contention: ContentionClass::LocalRead,
            commit_monotonic: true,
        }
    }
}

impl ThreadClock for PerfectClockHandle {
    type Ts = u64;

    #[inline]
    fn get_time(&mut self) -> u64 {
        // Algorithm 4: getTime simply reads Cp. The max() keeps the reading
        // monotonic per thread even on platforms with coarse clocks.
        let t = monotonic_ns().max(self.last);
        self.last = t;
        t
    }

    #[inline]
    fn get_new_ts(&mut self) -> u64 {
        // Algorithm 4 lines 5–11: read the clock at entry, then busy-wait
        // until it has advanced *past the entry reading* (§2.4: getNewTS must
        // return a timestamp strictly larger than the time at which it was
        // invoked — this is what guarantees that a later committer's commit
        // time strictly exceeds any commit time validated earlier). At
        // nanosecond resolution the loop almost never iterates.
        let entry = monotonic_ns().max(self.last);
        loop {
            let t = monotonic_ns();
            if t > entry {
                self.last = t;
                return t;
            }
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_time_is_monotonic() {
        let tb = PerfectClock::new();
        let mut c = tb.register_thread();
        let mut last = 0;
        for _ in 0..1000 {
            let t = c.get_time();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn get_new_ts_is_strictly_increasing_even_interleaved_with_get_time() {
        let tb = PerfectClock::new();
        let mut c = tb.register_thread();
        let mut last = c.get_time();
        for i in 0..1000 {
            let t = if i % 2 == 0 {
                c.get_new_ts()
            } else {
                c.get_time()
            };
            if i % 2 == 0 {
                assert!(t > last, "getNewTS must be strictly greater");
            } else {
                assert!(t >= last);
            }
            last = last.max(t);
        }
    }

    #[test]
    fn cross_thread_happens_before_is_respected() {
        // Perfect synchronization: a read that happens-after another thread's
        // read observes a greater-or-equal value.
        let tb = PerfectClock::new();
        let mut main = tb.register_thread();
        let t0 = main.get_new_ts();
        let t1 = std::thread::spawn(move || {
            let mut c = tb.register_thread();
            c.get_new_ts()
        })
        .join()
        .unwrap();
        let t2 = main.get_time();
        assert!(t1 > 0);
        assert!(t2 >= t0);
        assert!(t1 >= t0, "spawn edge orders the reads");
        assert!(t2 >= t1, "join edge orders the reads");
    }
}
