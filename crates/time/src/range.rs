//! Validity ranges over uncertain timestamps.
//!
//! The paper associates a *validity range* `v.R = [⌊v.R⌋, ⌈v.R⌉]` with every
//! object version (the interval between the commit that created the version
//! and the commit that superseded it) and a validity range `T.R` with every
//! transaction (the intersection of the ranges of all versions it accessed;
//! §1.1). A still-valid version and a fresh transaction have `⌈R⌉ = ∞`,
//! modeled here as `upper == None`.

use crate::timestamp::Timestamp;

/// A (possibly right-open) interval of timestamps: `[lower, upper]` with
/// `upper == None` meaning `∞`.
///
/// All mutating operations use the uncertainty-aware [`Timestamp::join`] /
/// [`Timestamp::meet`] so that the interval arithmetic stays conservative
/// under clock reading errors (§3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidityRange<Ts: Timestamp> {
    /// Lower bound `⌊R⌋`: the earliest time at which the snapshot/version is
    /// known to be valid.
    pub lower: Ts,
    /// Upper bound `⌈R⌉`: `None` encodes `∞` (still valid / not yet bounded).
    pub upper: Option<Ts>,
}

impl<Ts: Timestamp> ValidityRange<Ts> {
    /// A fresh right-open range `[lower, ∞]` (Algorithm 2 line 3).
    #[inline]
    pub fn from(lower: Ts) -> Self {
        ValidityRange { lower, upper: None }
    }

    /// A fully bounded range `[lower, upper]`.
    #[inline]
    pub fn bounded(lower: Ts, upper: Ts) -> Self {
        ValidityRange {
            lower,
            upper: Some(upper),
        }
    }

    /// Raise the lower bound: `⌊R⌋ ← max(⌊R⌋, ts)` (Algorithm 2 line 28).
    #[inline]
    pub fn restrict_lower(&mut self, ts: Ts) {
        self.lower = self.lower.join(ts);
    }

    /// Lower the upper bound: `⌈R⌉ ← min(⌈R⌉, ts)` (Algorithm 2 line 29),
    /// treating the current `None` as `∞`.
    #[inline]
    pub fn restrict_upper(&mut self, ts: Ts) {
        self.upper = Some(match self.upper {
            None => ts,
            Some(u) => u.meet(ts),
        });
    }

    /// Overwrite the upper bound unconditionally (used by `Extend`,
    /// Algorithm 3 line 2, before re-minimizing over the read set).
    #[inline]
    pub fn set_upper(&mut self, ts: Ts) {
        self.upper = Some(ts);
    }

    /// Whether the range is still *guaranteed* non-empty: the paper aborts
    /// when `⌊T.R⌋ ≿ ⌈T.R⌉` (lower *possibly later* than upper, Algorithm 2
    /// line 30); the range is consistent iff `⌈R⌉ ≽ ⌊R⌋`.
    #[inline]
    pub fn is_consistent(&self) -> bool {
        match self.upper {
            None => true,
            Some(u) => u.ge(self.lower),
        }
    }

    /// Guaranteed overlap test used by `getVersion` (Algorithm 3 line 9):
    /// `⌈v.R⌉ ≽ ⌊R⌋ ∧ ⌈R⌉ ≽ ⌊v.R⌋`, with `None` upper bounds passing
    /// trivially (`∞` is later than everything).
    #[inline]
    pub fn overlaps(&self, other: &Self) -> bool {
        let upper_ok = match self.upper {
            None => true,
            Some(u) => u.ge(other.lower),
        };
        let lower_ok = match other.upper {
            None => true,
            Some(u) => u.ge(self.lower),
        };
        upper_ok && lower_ok
    }

    /// Whether `ts` is guaranteed to lie within the range.
    #[inline]
    pub fn contains(&self, ts: Ts) -> bool {
        ts.ge(self.lower)
            && match self.upper {
                None => true,
                Some(u) => u.ge(ts),
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_range_is_consistent_and_open() {
        let r = ValidityRange::from(10u64);
        assert!(r.is_consistent());
        assert_eq!(r.upper, None);
        assert!(r.contains(10));
        assert!(r.contains(u64::MAX));
        assert!(!r.contains(9));
    }

    #[test]
    fn restrict_lower_takes_join() {
        let mut r = ValidityRange::from(10u64);
        r.restrict_lower(5);
        assert_eq!(r.lower, 10);
        r.restrict_lower(20);
        assert_eq!(r.lower, 20);
    }

    #[test]
    fn restrict_upper_takes_meet_and_handles_infinity() {
        let mut r = ValidityRange::from(10u64);
        r.restrict_upper(50);
        assert_eq!(r.upper, Some(50));
        r.restrict_upper(70);
        assert_eq!(r.upper, Some(50));
        r.restrict_upper(30);
        assert_eq!(r.upper, Some(30));
    }

    #[test]
    fn consistency_matches_paper_abort_condition() {
        let mut r = ValidityRange::from(10u64);
        r.restrict_upper(10);
        assert!(r.is_consistent(), "[10,10] is a valid snapshot point");
        r.restrict_lower(11);
        assert!(!r.is_consistent(), "[11,10] is empty");
    }

    #[test]
    fn overlap_is_symmetric_for_total_orders() {
        let a = ValidityRange::bounded(0u64, 10);
        let b = ValidityRange::bounded(10u64, 20);
        let c = ValidityRange::bounded(11u64, 20);
        assert!(a.overlaps(&b), "touching at 10");
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
        let open = ValidityRange::from(5u64);
        assert!(open.overlaps(&a));
        assert!(a.overlaps(&open));
    }

    #[test]
    fn set_upper_overwrites_even_upward() {
        // Extend() first *raises* ⌈T.R⌉ to now, then re-minimizes.
        let mut r = ValidityRange::bounded(0u64, 5);
        r.set_upper(100);
        assert_eq!(r.upper, Some(100));
    }
}
