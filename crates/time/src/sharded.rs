//! Composite time base for sharded STMs: per-shard clock instances over one
//! arbitration-comparable time domain.
//!
//! The §6 scalable time bases break the single-counter bottleneck at the
//! *clock* level; a sharded STM breaks it at the *system* level by splitting
//! the object table into disjoint shards, each arbitrating commits on its own
//! time base. [`ShardedTimeBase`] is the composite that makes the second
//! step sound: it wraps one inner [`TimeBase`] and hands out *per-shard*
//! [`ThreadClock`] instances, so every shard has its own arbitration state
//! (its own reserved timestamp blocks, its own modeled NUMA cache line, its
//! own adoption history) while all timestamps remain mutually comparable.
//!
//! ## Why one domain, not one counter per shard
//!
//! The tempting design — a fully independent counter per shard, with
//! transactions keeping one validity range per shard — is **unsound** for a
//! multi-version STM that issues forward validity claims (LSA's
//! `getPrelimUB` fallback "this version is valid at least until `t`"):
//!
//! 1. *Torn cuts.* A cross-shard transaction `Tc` that updates `x` on shard
//!    A and `y` on shard B commits at unrelated per-shard times `(ctA,
//!    ctB)`. A reader that observed old-`x` before `Tc` and new-`y` after it
//!    holds per-shard ranges that are each non-empty — nothing links `ctA`
//!    to `ctB`, so the torn snapshot of `Tc` is accepted.
//! 2. *Cross-shard claim leakage.* A reader whose joined observation is
//!    dominated by a fast shard B (say 100) opens the latest version on a
//!    slow shard A (counter at 5) and claims it valid until 100; a later
//!    shard-A commit at 6 then supersedes the version *inside* the claimed
//!    range. Read-only transactions never validate, so the stale claim is
//!    never caught.
//!
//! Keeping every shard's clocks on **one inner base** removes both hazards
//! by construction: a cross-shard commit can anchor all its per-shard
//! acquisitions to one final commit time (the last acquisition, which
//! dominates the earlier ones), and the §2.4 strictness property ("commit
//! times exceed everything previously readable") holds globally, so claims
//! carried across shards stay sound. What remains genuinely per shard is the
//! arbitration *state*: block-reserving bases ([`crate::counter::BlockCounter`])
//! give every shard clock its own disjoint reservation, and
//! [`ShardedTimeBase::shard_clock`] carves disjoint `get_ts_block` domains
//! per shard for id/epoch allocation. See `DESIGN.md` §9.
//!
//! ## Composition requirements
//!
//! Not every base survives this composition, and [`ShardedTimeBase::new`]
//! rejects the ones that do not — the same fail-loud policy as LSA's
//! constructor refusing non-commit-monotonic bases:
//!
//! * `block_uniqueness` must be [`Uniqueness::Unique`]: per-shard
//!   `get_ts_block` domains must be disjoint, which best-effort real-time
//!   bases cannot promise.
//! * `commit_monotonic` must hold: bases whose per-clock state runs ahead of
//!   the readable time (GV5 lazy counters, GV4 adoption) break the
//!   composite's per-thread strictness contract when arbitration alternates
//!   between shard clocks — one shard clock's run-ahead is invisible to its
//!   siblings, so a later sibling acquisition could return a smaller value
//!   than the composite already handed out.

use crate::base::{CommitTs, ThreadClock, TimeBase, TimeBaseInfo, Uniqueness};
use crate::timestamp::Timestamp;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Upper bound on the shard count: shard sets are tracked as a 64-bit mask.
pub const MAX_SHARDS: usize = 64;

/// Intern a composite base name so [`TimeBaseInfo::name`] can stay
/// `&'static str`; names are tiny and the set of distinct composites per
/// process is bounded, so the leak is bounded too.
fn intern_name(s: String) -> &'static str {
    static POOL: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut pool = pool.lock().expect("name pool poisoned");
    if let Some(&v) = pool.get(&s) {
        return v;
    }
    let leaked: &'static str = Box::leak(s.clone().into_boxed_str());
    pool.insert(s, leaked);
    leaked
}

/// The set of shards a transaction has touched, shared between the STM
/// runtime (which marks shards as objects are opened) and the
/// [`ShardedClock`] (which arbitrates the commit across exactly those
/// shards). Cloning shares the underlying mask.
///
/// Arbitration requests come in two flavours, and the runtime signals which
/// with [`TouchSet::arm_commit`]: the *commit* acquisition of an update
/// transaction chains through every touched shard (pushing each frontier),
/// while every other acquisition — helper commit-time races, `getPrelimUB`
/// resolution mid-read — needs just one sound timestamp and arbitrates on a
/// single touched shard, since fanning those out would multiply exactly the
/// shared-line traffic sharding removes. The armed flag is consumed by the
/// next arbitration and reset by [`TouchSet::clear`].
#[derive(Clone, Debug, Default)]
pub struct TouchSet {
    bits: Arc<AtomicU64>,
    commit_armed: Arc<AtomicBool>,
}

impl TouchSet {
    /// Empty set.
    pub fn new() -> Self {
        TouchSet::default()
    }

    /// Remove every shard and disarm the commit flag (start of a
    /// transaction attempt).
    pub fn clear(&self) {
        self.bits.store(0, Ordering::Relaxed);
        self.commit_armed.store(false, Ordering::Relaxed);
    }

    /// Mark `shard` as touched.
    pub fn touch(&self, shard: usize) {
        debug_assert!(shard < MAX_SHARDS);
        self.bits.fetch_or(1u64 << shard, Ordering::Relaxed);
    }

    /// The raw bit mask (bit `i` = shard `i` touched).
    pub fn mask(&self) -> u64 {
        self.bits.load(Ordering::Relaxed)
    }

    /// Number of distinct shards touched.
    pub fn count(&self) -> u32 {
        self.mask().count_ones()
    }

    /// Declare the next arbitration to be an update transaction's commit
    /// acquisition: it will chain through every touched shard instead of
    /// arbitrating on one.
    pub fn arm_commit(&self) {
        self.commit_armed.store(true, Ordering::Relaxed);
    }

    fn take_commit_armed(&self) -> bool {
        self.commit_armed.swap(false, Ordering::Relaxed)
    }
}

/// A composite time base carving one inner [`TimeBase`] into per-shard clock
/// domains. See the module docs for the soundness story.
pub struct ShardedTimeBase<B: TimeBase> {
    inner: Arc<B>,
    shards: usize,
    name: &'static str,
}

impl<B: TimeBase> Clone for ShardedTimeBase<B> {
    fn clone(&self) -> Self {
        ShardedTimeBase {
            inner: Arc::clone(&self.inner),
            shards: self.shards,
            name: self.name,
        }
    }
}

impl<B: TimeBase> ShardedTimeBase<B> {
    /// Wrap `inner` into a `shards`-way composite.
    ///
    /// # Panics
    /// Panics if `shards` is 0 or exceeds [`MAX_SHARDS`], and — the
    /// composition capability check — if the inner base's advertised classes
    /// do not survive sharding: block domains that are not
    /// [`Uniqueness::Unique`] (per-shard domains must be disjoint) or a base
    /// that is not commit-monotonic (per-clock run-ahead state breaks the
    /// composite per-thread contract; see the module docs).
    pub fn new(inner: B, shards: usize) -> Self {
        assert!(
            (1..=MAX_SHARDS).contains(&shards),
            "shard count must be in 1..={MAX_SHARDS}, got {shards}"
        );
        let info = inner.info();
        assert!(
            info.block_uniqueness == Uniqueness::Unique,
            "sharding requires disjoint per-shard timestamp-block domains; {} \
             only promises {:?} blocks and cannot be composed",
            info.name,
            info.block_uniqueness
        );
        assert!(
            info.commit_monotonic,
            "sharding requires a commit-monotonic base; {}'s per-clock \
             run-ahead state (lazy/adopting arbitration) does not survive \
             composition across shard clocks",
            info.name
        );
        let name = intern_name(format!("sharded{}x-{}", shards, info.name));
        ShardedTimeBase {
            inner: Arc::new(inner),
            shards,
            name,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The wrapped base.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// A composite clock pinned to one shard: its [`TouchSet`] permanently
    /// selects `shard`, so commit arbitration, `get_ts_block` allocation and
    /// abort feedback all route through that shard's internal clock — the
    /// same path a single-shard transaction takes inside the sharded STM.
    /// `get_ts_block` domains of clocks pinned to different shards are
    /// disjoint (guaranteed by the inner base's `Unique` block class,
    /// asserted at construction and by `conformance::sharded_suite`).
    ///
    /// # Panics
    /// Panics if `shard >= self.shards()`.
    pub fn shard_clock(&self, shard: usize) -> ShardedClock<B> {
        assert!(shard < self.shards, "shard {shard} out of range");
        let clock = self.register_thread();
        clock.touch.touch(shard);
        clock
    }
}

impl<B: TimeBase> TimeBase for ShardedTimeBase<B> {
    type Ts = B::Ts;
    type Clock = ShardedClock<B>;

    fn register_thread(&self) -> ShardedClock<B> {
        ShardedClock {
            clocks: (0..self.shards)
                .map(|_| self.inner.register_thread())
                .collect(),
            touch: TouchSet::new(),
            seen: None,
        }
    }

    fn info(&self) -> TimeBaseInfo {
        // The composite inherits the inner base's classes: same domain, same
        // arbitration, one clock instance per shard. Only the name changes.
        // Bases whose classes would *not* carry over were rejected by
        // `new` — that rejection is the composite's capability check.
        TimeBaseInfo {
            name: self.name,
            ..self.inner.info()
        }
    }
}

/// Per-thread handle to a [`ShardedTimeBase`]: one inner clock per shard
/// plus the [`TouchSet`] that selects which shards the next commit
/// arbitration must cover.
pub struct ShardedClock<B: TimeBase> {
    clocks: Vec<B::Clock>,
    touch: TouchSet,
    /// Join of every timestamp this composite handle has returned, across
    /// all shard clocks — the freshness floor that keeps the per-thread
    /// `get_new_ts` contract intact when arbitration alternates shards.
    seen: Option<B::Ts>,
}

impl<B: TimeBase> ShardedClock<B> {
    /// The shard-selection mask shared with the owning STM runtime: the
    /// runtime marks shards as the transaction opens objects, and the next
    /// [`ThreadClock::acquire_commit_ts`] arbitrates across exactly those
    /// shards (shard 0 when none are marked).
    pub fn touch_set(&self) -> TouchSet {
        self.touch.clone()
    }

    /// Number of shards this clock spans.
    pub fn shards(&self) -> usize {
        self.clocks.len()
    }

    fn fold_seen(&mut self, t: B::Ts) {
        self.seen = Some(match self.seen {
            Some(prev) => prev.join(t),
            None => t,
        });
    }

    fn floor(&mut self) -> B::Ts {
        match self.seen {
            Some(t) => t,
            None => {
                let t = self.clocks[0].get_time();
                self.fold_seen(t);
                t
            }
        }
    }

    /// The arbitration dispatcher. When the [`TouchSet`] was armed for a
    /// commit ([`TouchSet::arm_commit`] — consumed here), acquire a commit
    /// timestamp from every selected shard's clock in ascending shard
    /// order, chaining each result into the next acquisition's floor: the
    /// final acquisition dominates all earlier ones and every selected
    /// shard's arbitration frontier has been pushed above the caller's
    /// observation — the per-shard half of the cross-shard commit protocol.
    /// Earlier (dominated) values are discarded, which is sound: for
    /// frontier-publishing bases they act as commits of nothing, and their
    /// exclusivity (if any) is simply never used.
    ///
    /// Unarmed arbitrations (helper commit-time races, `getPrelimUB`
    /// resolution, `get_new_ts`) need one sound timestamp, not a frontier
    /// push per shard — they arbitrate on the lowest selected shard alone,
    /// keeping mid-transaction resolutions to a single shared-line RMW.
    fn arbitrate(&mut self, observed: B::Ts) -> CommitTs<B::Ts> {
        let mut mask = self.touch.mask() & mask_for(self.clocks.len());
        if mask == 0 {
            mask = 1; // no selection: arbitrate on shard 0
        }
        if !self.touch.take_commit_armed() {
            mask = mask & mask.wrapping_neg(); // lowest selected shard only
        }
        let mut floor = observed;
        let mut last = None;
        for shard in 0..self.clocks.len() {
            if mask & (1u64 << shard) == 0 {
                continue;
            }
            let ct = self.clocks[shard].acquire_commit_ts(floor);
            floor = floor.join(ct.ts());
            last = Some(ct);
        }
        let ct = last.expect("mask is non-empty");
        self.fold_seen(ct.ts());
        ct
    }
}

fn mask_for(shards: usize) -> u64 {
    if shards >= 64 {
        u64::MAX
    } else {
        (1u64 << shards) - 1
    }
}

impl<B: TimeBase> ThreadClock for ShardedClock<B> {
    type Ts = B::Ts;

    fn get_time(&mut self) -> B::Ts {
        // All shard clocks read the same inner domain; shard 0's handle
        // carries this composite's get_time monotonicity state.
        let t = self.clocks[0].get_time();
        self.fold_seen(t);
        t
    }

    fn get_new_ts(&mut self) -> B::Ts {
        let floor = self.floor();
        self.arbitrate(floor).ts()
    }

    fn acquire_commit_ts(&mut self, observed: B::Ts) -> CommitTs<B::Ts> {
        let floor = observed.join(self.floor());
        self.arbitrate(floor)
    }

    fn get_ts_block(&mut self, n: usize) -> Vec<B::Ts> {
        // Allocation goes to the first selected shard's clock (shard 0 by
        // default): inner `Unique` blocks keep composite blocks disjoint
        // across threads and shards alike.
        let shard = self.touch.mask().trailing_zeros() as usize;
        let shard = if shard < self.clocks.len() { shard } else { 0 };
        let block = self.clocks[shard].get_ts_block(n);
        if let Some(&last) = block.last() {
            self.fold_seen(last);
        }
        block
    }

    fn observe_ts(&mut self, ts: B::Ts) {
        // A stamp known to back committed data is valid feedback for every
        // shard's clock (one domain); forwarding costs only local updates.
        for c in &mut self.clocks {
            c.observe_ts(ts);
        }
    }

    fn note_abort(&mut self) {
        // Feed the abort back to the shards the failed attempt touched —
        // those are the clocks whose lag made it fail (shard 0 when the
        // attempt recorded nothing).
        let mut mask = self.touch.mask() & mask_for(self.clocks.len());
        if mask == 0 {
            mask = 1;
        }
        for shard in 0..self.clocks.len() {
            if mask & (1u64 << shard) != 0 {
                self.clocks[shard].note_abort();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{BlockCounter, Gv5Counter, SharedCounter};
    use crate::hardware::HardwareClock;

    #[test]
    fn composite_info_derives_from_inner() {
        let tb = ShardedTimeBase::new(SharedCounter::new(), 8);
        let info = tb.info();
        assert_eq!(info.name, "sharded8x-shared-counter");
        assert_eq!(info.uniqueness, Uniqueness::Unique);
        assert!(info.commit_monotonic);
        assert_eq!(tb.shards(), 8);
        // Interning: a second identical composite shares the same &'static.
        let tb2 = ShardedTimeBase::new(SharedCounter::new(), 8);
        assert!(std::ptr::eq(tb.info().name, tb2.info().name));
    }

    #[test]
    #[should_panic(expected = "commit-monotonic")]
    fn rejects_lazy_bases() {
        // GV5's per-clock run-ahead does not survive composition across
        // shard clocks (a sibling acquisition cannot see it).
        let _ = ShardedTimeBase::new(Gv5Counter::new(), 4);
    }

    #[test]
    #[should_panic(expected = "block domains")]
    fn rejects_best_effort_block_bases() {
        // Real-time bases cannot carve disjoint per-shard block domains.
        let _ = ShardedTimeBase::new(HardwareClock::mmtimer_free(), 4);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn rejects_zero_shards() {
        let _ = ShardedTimeBase::new(SharedCounter::new(), 0);
    }

    #[test]
    fn touch_set_selects_arbitration_shards() {
        let tb = ShardedTimeBase::new(SharedCounter::new(), 4);
        let mut clock = tb.register_thread();
        let touch = clock.touch_set();
        touch.touch(1);
        touch.touch(3);
        assert_eq!(touch.count(), 2);
        let t0 = clock.get_time();
        let ct = clock.acquire_commit_ts(t0);
        assert!(ct.ts() > t0, "commit must clear the observation");
        touch.clear();
        assert_eq!(touch.count(), 0);
    }

    #[test]
    fn cross_shard_arbitration_is_strictly_increasing() {
        let tb = ShardedTimeBase::new(BlockCounter::new(8), 4);
        let mut clock = tb.register_thread();
        let touch = clock.touch_set();
        let mut last = clock.get_time();
        for round in 0..200 {
            touch.clear();
            touch.touch(round % 4);
            touch.touch((round + 1) % 4);
            touch.arm_commit(); // commit acquisitions chain across shards
            let ct = clock.acquire_commit_ts(last);
            assert!(ct.ts() > last, "round {round}: {:?} !> {last:?}", ct.ts());
            last = ct.ts();
        }
    }

    #[test]
    fn unarmed_arbitration_stays_on_one_shard() {
        // Helper/prelim acquisitions must not fan out: with two shards
        // selected but no commit armed, only the lowest selected shard's
        // clock arbitrates — one reservation stream advances, not two.
        let tb = ShardedTimeBase::new(BlockCounter::new(4), 4);
        let inner = tb.inner().clone();
        let mut clock = tb.register_thread();
        let touch = clock.touch_set();
        touch.touch(1);
        touch.touch(3);
        let before = inner.refills();
        let t0 = clock.get_time();
        let mut prev = t0;
        for _ in 0..16 {
            let ct = clock.acquire_commit_ts(prev);
            assert!(ct.ts() > prev);
            prev = ct.ts();
        }
        // 16 single-shard acquisitions at block 4: a handful of refills.
        // A fanned-out version would pay on both shards' clocks (~double).
        let unarmed_refills = inner.refills() - before;
        assert!(
            unarmed_refills <= 8,
            "unarmed arbitration consumed {unarmed_refills} refills — \
             it fanned out across shards"
        );
    }

    #[test]
    fn shard_clocks_have_disjoint_block_domains() {
        let tb = ShardedTimeBase::new(BlockCounter::new(16), 4);
        let mut all: Vec<u64> = Vec::new();
        for shard in 0..4 {
            let mut clock = tb.shard_clock(shard);
            for _ in 0..10 {
                all.extend(clock.get_ts_block(16));
            }
        }
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(n, all.len(), "per-shard block domains overlap");
    }

    #[test]
    fn commits_are_visible_across_shard_clocks() {
        // One domain: a commit arbitrated through shard 3's clock is
        // readable through shard 0's clock (this is what keeps cross-shard
        // snapshots sound).
        let tb = ShardedTimeBase::new(SharedCounter::new(), 4);
        let mut committer = tb.shard_clock(3);
        let mut reader = tb.shard_clock(0);
        let before = reader.get_time();
        let ct = committer.acquire_commit_ts(before).ts();
        assert!(reader.get_time() >= ct, "commit invisible across shards");
    }
}
