//! Clock-synchronization measurement (the methodology behind Figure 1).
//!
//! The paper measures the MMTimer's synchronization quality by "having
//! threads on different CPUs read from the MMTimer and comparing the clock
//! value obtained at each CPU with a reference value published by a thread on
//! another CPU" (§4.1). Each comparison yields an *offset estimate* (the
//! estimated difference between the local clock and the reference clock) and
//! an *error* (the largest possible deviation between the estimated offset
//! and the true offset, caused by the unknown communication delay through
//! shared memory).
//!
//! [`measure`] reproduces that experiment for any [`TimeBase`]: one reference
//! thread answers timestamp requests through a shared-memory mailbox; every
//! probe thread performs a Cristian-style exchange
//!
//! ```text
//! t0 = local();  ask reference;  (reference reads R)  t1 = local()
//! offset ≈ R − (t0 + t1)/2,   error = (t1 − t0)/2
//! ```
//!
//! per round and the per-round maxima over all probes are reported — exactly
//! the three series plotted in Figure 1: `max(abs(offset))`, `max(error)`,
//! and `max(error + abs(offset))`.

use crate::base::{ThreadClock, TimeBase};
use crate::timestamp::Timestamp;
use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a synchronization-error measurement run.
#[derive(Clone, Debug)]
pub struct SyncMeasureConfig {
    /// Number of probe threads (the paper uses one per CPU of the partition).
    pub probes: usize,
    /// Number of measurement rounds (the paper: a 4-hour run with a round
    /// every tenth second; we default to a scaled-down run).
    pub rounds: usize,
    /// Pause between rounds.
    pub round_interval: Duration,
}

impl Default for SyncMeasureConfig {
    fn default() -> Self {
        SyncMeasureConfig {
            probes: 3,
            rounds: 40,
            round_interval: Duration::from_millis(10),
        }
    }
}

/// Per-round maxima over all probes, in the raw units of the measured time
/// base (MMTimer ticks in the paper's Figure 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundResult {
    /// Round index (0-based).
    pub round: usize,
    /// `max(abs(offset))`: largest estimated clock offset of any probe
    /// relative to the reference clock.
    pub max_abs_offset: i64,
    /// `max(error)`: largest possible deviation between estimated and true
    /// offset (half the exchange round-trip, in clock units).
    pub max_error: i64,
    /// `max(error + abs(offset))`: a conservative per-probe bound on the true
    /// offset, maximized over probes (the paper's third curve).
    pub max_err_plus_abs_offset: i64,
}

/// One probe's mailbox: a request sequence number and the reference's reply.
#[derive(Default)]
struct Mailbox {
    request: CachePadded<AtomicU64>,
    reply_seq: CachePadded<AtomicU64>,
    reply_value: CachePadded<AtomicI64>,
}

/// Run the Figure 1 measurement against `tb`.
///
/// Returns one [`RoundResult`] per round. The reference thread and all probe
/// threads are joined before returning.
pub fn measure<B: TimeBase>(tb: &B, cfg: &SyncMeasureConfig) -> Vec<RoundResult> {
    assert!(cfg.probes >= 1, "need at least one probe");
    assert!(cfg.rounds >= 1, "need at least one round");

    let mailboxes: Arc<Vec<Mailbox>> =
        Arc::new((0..cfg.probes).map(|_| Mailbox::default()).collect());
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // Reference thread: answer every request with a fresh local reading.
        let ref_boxes = Arc::clone(&mailboxes);
        let ref_stop = Arc::clone(&stop);
        let mut ref_clock = tb.register_thread();
        s.spawn(move || {
            while !ref_stop.load(Ordering::Acquire) {
                for mb in ref_boxes.iter() {
                    let req = mb.request.load(Ordering::Acquire);
                    if req > mb.reply_seq.load(Ordering::Relaxed) {
                        let r = ref_clock.get_time().raw_value() as i64;
                        mb.reply_value.store(r, Ordering::Relaxed);
                        mb.reply_seq.store(req, Ordering::Release);
                    }
                }
                std::hint::spin_loop();
            }
        });

        // Probe threads: one exchange per round.
        let handles: Vec<_> = (0..cfg.probes)
            .map(|p| {
                let boxes = Arc::clone(&mailboxes);
                let mut clock = tb.register_thread();
                let rounds = cfg.rounds;
                let interval = cfg.round_interval;
                s.spawn(move || {
                    let mb = &boxes[p];
                    let mut results = Vec::with_capacity(rounds);
                    for _ in 0..rounds {
                        let t0 = clock.get_time().raw_value() as i64;
                        let seq = mb.request.load(Ordering::Relaxed) + 1;
                        mb.request.store(seq, Ordering::Release);
                        while mb.reply_seq.load(Ordering::Acquire) < seq {
                            std::hint::spin_loop();
                        }
                        let r = mb.reply_value.load(Ordering::Relaxed);
                        let t1 = clock.get_time().raw_value() as i64;
                        // The reference read R happened (in real time) between
                        // our t0 and t1 reads. Midpoint estimate + half-RTT
                        // error bound (rounded up).
                        let offset = r - (t0 + t1) / 2;
                        let error = (t1 - t0 + 1) / 2;
                        results.push((offset, error));
                        std::thread::sleep(interval);
                    }
                    results
                })
            })
            .collect();

        let per_probe: Vec<Vec<(i64, i64)>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        stop.store(true, Ordering::Release);

        (0..cfg.rounds)
            .map(|round| {
                let mut max_abs_offset = 0i64;
                let mut max_error = 0i64;
                let mut max_sum = 0i64;
                for probe in &per_probe {
                    let (off, err) = probe[round];
                    max_abs_offset = max_abs_offset.max(off.abs());
                    max_error = max_error.max(err);
                    max_sum = max_sum.max(err + off.abs());
                }
                RoundResult {
                    round,
                    max_abs_offset,
                    max_error,
                    max_err_plus_abs_offset: max_sum,
                }
            })
            .collect()
    })
}

/// Summary statistics over a full measurement run (used by the fig1 binary
/// and EXPERIMENTS.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeasureSummary {
    /// Maximum of `max_abs_offset` over all rounds.
    pub worst_abs_offset: i64,
    /// Maximum of `max_error` over all rounds.
    pub worst_error: i64,
    /// Maximum of `max_err_plus_abs_offset` over all rounds — the paper's
    /// "90 ticks seems to be a reasonable estimate for its bound".
    pub bound_estimate: i64,
}

/// Aggregate a run into its headline numbers.
pub fn summarize(rounds: &[RoundResult]) -> MeasureSummary {
    MeasureSummary {
        worst_abs_offset: rounds.iter().map(|r| r.max_abs_offset).max().unwrap_or(0),
        worst_error: rounds.iter().map(|r| r.max_error).max().unwrap_or(0),
        bound_estimate: rounds
            .iter()
            .map(|r| r.max_err_plus_abs_offset)
            .max()
            .unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::external::{ExternalClock, OffsetPolicy};
    use crate::hardware::HardwareClock;
    use crate::perfect::PerfectClock;

    fn small_cfg() -> SyncMeasureConfig {
        SyncMeasureConfig {
            probes: 2,
            rounds: 5,
            round_interval: Duration::from_millis(1),
        }
    }

    #[test]
    fn perfect_clock_offsets_within_error() {
        // For a truly synchronized clock the estimated offset can never
        // exceed the error bound (the paper observes exactly this for the
        // MMTimer: "errors are always larger than offsets").
        let rounds = measure(&PerfectClock::new(), &small_cfg());
        assert_eq!(rounds.len(), 5);
        for r in &rounds {
            assert!(
                r.max_abs_offset <= r.max_error,
                "offset {} must be masked by error {}",
                r.max_abs_offset,
                r.max_error
            );
        }
    }

    #[test]
    fn hardware_clock_reports_in_ticks() {
        let rounds = measure(&HardwareClock::mmtimer_free(), &small_cfg());
        let s = summarize(&rounds);
        // Over a 1 ms handshake at 20 MHz the error is bounded by a few
        // thousand ticks even on a heavily loaded box; mostly this checks the
        // plumbing produces sane positive values.
        assert!(s.worst_error >= 0);
        assert!(s.bound_estimate >= s.worst_abs_offset);
    }

    #[test]
    fn injected_offsets_show_up_as_measured_offsets() {
        // Alternating ±10 ms offsets: the reference (cid 0) sits at −10 ms,
        // probes at +10/−10 ms, so the worst measured offset is ≈ 20 ms —
        // far above the µs-scale measurement error.
        let dev = 10_000_000; // 10 ms
        let tb = ExternalClock::with_policy(dev, OffsetPolicy::Alternating);
        let rounds = measure(&tb, &small_cfg());
        let s = summarize(&rounds);
        assert!(
            s.worst_abs_offset > dev as i64 / 2,
            "injected offsets must dominate: got {}",
            s.worst_abs_offset
        );
    }

    #[test]
    fn summarize_takes_maxima() {
        let rounds = vec![
            RoundResult {
                round: 0,
                max_abs_offset: 3,
                max_error: 9,
                max_err_plus_abs_offset: 12,
            },
            RoundResult {
                round: 1,
                max_abs_offset: 7,
                max_error: 2,
                max_err_plus_abs_offset: 8,
            },
        ];
        let s = summarize(&rounds);
        assert_eq!(s.worst_abs_offset, 7);
        assert_eq!(s.worst_error, 9);
        assert_eq!(s.bound_estimate, 12);
    }
}
